//! Shard-throughput measurement and the tracked performance trajectory.
//!
//! `BENCH_allocation.json` at the repository root is the committed record
//! of end-to-end allocation throughput over time: one record per PR, each
//! with a row per mediator shard count. Two consumers share this module:
//!
//! * the criterion bench `benches/allocation.rs` re-measures the current
//!   tree and appends/refreshes a record (label from `BENCH_LABEL`,
//!   default `"latest"`) while preserving the committed history;
//! * the CI binary `perf_gate` re-measures and **fails** when throughput
//!   drops more than [`REGRESSION_TOLERANCE`] below the last committed
//!   record.
//!
//! The workspace vendors no JSON library, so the file is rendered and
//! parsed here; the format is owned by this module and pinned by
//! round-trip tests.

use std::time::{Duration, Instant};

use sqlb_sim::engine::{run_simulation, Simulator};
use sqlb_sim::{Method, SimulationConfig, WorkloadPattern};

/// Shard counts the throughput comparison sweeps.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Consumers in the benchmark population.
pub const CONSUMERS: u32 = 32;
/// Providers in the benchmark population.
pub const PROVIDERS: u32 = 64;
/// Virtual duration of one benchmark run, in seconds.
pub const DURATION_SECS: f64 = 400.0;
/// Workload fraction of the benchmark runs.
pub const WORKLOAD: f64 = 0.6;
/// Seed of the benchmark runs.
pub const SEED: u64 = 7;
/// Allocation method under measurement.
pub const METHOD: Method = Method::Sqlb;
/// Allowed throughput drop relative to the committed baseline (20 %).
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// Participant counts of the committed scale record (the `scale_1m`
/// benchmark): the paper-extrapolation point and the million-participant
/// point.
pub const SCALE_POINTS: [u64; 2] = [100_000, 1_000_000];
/// Seed of the scale runs.
pub const SCALE_SEED: u64 = 11;
/// Virtual duration of one scale run, in seconds. Short on purpose: at
/// 10^6 participants the arrival rate is hundreds of thousands of queries
/// per virtual second, so two seconds already allocate a six-figure query
/// count.
pub const SCALE_DURATION_SECS: f64 = 2.0;
/// Workload fraction of the scale runs.
pub const SCALE_WORKLOAD: f64 = 0.3;
/// Target providers per mediator shard at scale — the candidate set each
/// arrival scores, kept near the paper's 64-provider system so per-query
/// work stays paper-like while the population grows.
pub const SCALE_SHARD_FANOUT: usize = 96;

/// One measured row: end-to-end allocation throughput at a shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeasurement {
    /// Number of mediator shards.
    pub mediator_shards: usize,
    /// Queries issued by the measured run (identical across repetitions —
    /// the engine is deterministic per seed).
    pub issued_queries: u64,
    /// Best-of-N wall clock for the whole run, in milliseconds.
    pub best_wall_ms: f64,
    /// `issued_queries / best_wall` in allocations per second.
    pub allocations_per_sec: f64,
}

/// One measured socket-transport wave round (the `transport_scaling`
/// bench): how long one mediation wave touching every endpoint takes
/// over loopback sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportMeasurement {
    /// Participant endpoints touched by the wave.
    pub endpoints: usize,
    /// Participant-host connections the endpoints were multiplexed over.
    pub hosts: usize,
    /// Best-of-N wall clock of one full wave round, in milliseconds.
    pub round_ms: f64,
    /// Median-of-N wall clock of the same rounds, in milliseconds — the
    /// dispersion companion to the best-of-N `round_ms`. Absent on
    /// records that predate it (pre-PR-7).
    pub median_ms: Option<f64>,
    /// Best-of-N wall clock of the *pipelined* round, in milliseconds:
    /// the same batch split into [`TRANSPORT_PIPELINE_SUBWAVES`]
    /// sub-waves driven through `begin_wave`/`collect_wave` with up to
    /// [`TRANSPORT_PIPELINE_DEPTH`] waves in flight, so encoding wave
    /// `t+1` overlaps collecting wave `t`. Absent on records that
    /// predate pipelining (pre-PR-7).
    pub pipelined_ms: Option<f64>,
}

/// One measured scale point of the `scale_1m` benchmark: a full
/// simulation run at a large participant count, plus the memory footprint
/// the participant state costs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleMeasurement {
    /// Total participants (consumers + providers).
    pub participants: u64,
    /// Consumers in the population.
    pub consumers: u32,
    /// Providers in the population.
    pub providers: u32,
    /// Mediator shards the providers were partitioned across.
    pub mediator_shards: usize,
    /// Queries issued (and allocated) by the run.
    pub issued_queries: u64,
    /// Wall clock of the measured run, in milliseconds (single run — a
    /// million-participant run is too slow for best-of-N).
    pub wall_ms: f64,
    /// `issued_queries / wall` in allocations per second.
    pub allocations_per_sec: f64,
    /// Resident-set growth of constructing the simulator (population,
    /// shards, engine state), divided by the participant count.
    pub bytes_per_participant: f64,
}

/// The observability cost comparison: the same seeded engine run timed
/// with instrumentation off (the default, a single-branch no-op path)
/// and on (counters, histograms and the flight recorder live). Recorded
/// from PR-10 on so the "zero overhead when off" claim stays a measured
/// number, not a comment.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOverheadMeasurement {
    /// Best-of-N wall clock of the uninstrumented run, in milliseconds.
    pub off_wall_ms: f64,
    /// Best-of-N wall clock of the instrumented run, in milliseconds.
    pub on_wall_ms: f64,
    /// `(on - off) / off`, in percent. Negative values are noise (the
    /// instrumented run happened to win the wall-clock lottery).
    pub overhead_pct: f64,
}

/// One labelled record of the performance trajectory (one per PR).
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRecord {
    /// Record label (e.g. `"PR-2"`).
    pub label: String,
    /// One measurement per entry of [`SHARD_COUNTS`].
    pub shards: Vec<ShardMeasurement>,
    /// The socket-transport round measurement, for records from PR-5 on.
    pub transport: Option<TransportMeasurement>,
    /// Scale-point measurements ([`SCALE_POINTS`]), for records from
    /// PR-6 on.
    pub scale: Vec<ScaleMeasurement>,
    /// The instrumented-vs-off overhead measurement, for records from
    /// PR-10 on.
    pub obs: Option<ObsOverheadMeasurement>,
}

/// The benchmark configuration for a shard count.
pub fn bench_config(shards: usize) -> SimulationConfig {
    SimulationConfig::scaled(CONSUMERS, PROVIDERS, DURATION_SECS, SEED)
        .with_workload(WorkloadPattern::Fixed(WORKLOAD))
        .with_mediator_shards(shards)
}

/// Measures allocation throughput for every entry of [`SHARD_COUNTS`],
/// best-of-`runs_per_count` wall clock per entry.
pub fn measure_shard_throughput(runs_per_count: usize) -> Vec<ShardMeasurement> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let config = bench_config(shards);
            // One untimed warmup run per shard count: the first run pays
            // for page faults and allocator growth that best-of-N timing
            // should not include.
            let _ = run_simulation(config, METHOD).expect("warmup run");
            let mut best = Duration::MAX;
            let mut issued = 0u64;
            for _ in 0..runs_per_count.max(1) {
                let start = Instant::now();
                let report = run_simulation(config, METHOD).expect("benchmark run");
                let elapsed = start.elapsed();
                issued = report.issued_queries;
                best = best.min(elapsed);
            }
            ShardMeasurement {
                mediator_shards: shards,
                issued_queries: issued,
                best_wall_ms: best.as_secs_f64() * 1e3,
                allocations_per_sec: issued as f64 / best.as_secs_f64(),
            }
        })
        .collect()
}

/// The configuration of one scale point: participants split 1:2 between
/// consumers and providers (the paper's 200:400 ratio), providers
/// partitioned into shards of roughly [`SCALE_SHARD_FANOUT`], and
/// hash-derived (procedural) consumer preferences — the dense `C × P`
/// table is the memory wall this configuration exists to avoid.
pub fn scale_config(participants: u64, seed: u64) -> SimulationConfig {
    let consumers = (participants / 3).max(1) as u32;
    let providers = participants.saturating_sub(consumers as u64).max(1) as u32;
    let shards = (providers as usize).div_ceil(SCALE_SHARD_FANOUT).max(1);
    let mut config = SimulationConfig::scaled(consumers, providers, SCALE_DURATION_SECS, seed)
        .with_workload(WorkloadPattern::Fixed(SCALE_WORKLOAD))
        .with_mediator_shards(shards)
        // No sync round inside the measured window: the all-to-all digest
        // exchange is O(shards × consumers) by design, so at hundreds of
        // shards it would swamp the per-allocation cost this row exists
        // to measure (the transport and reactor benchmark rows cover
        // synchronization scaling separately).
        .with_sync_interval(SCALE_DURATION_SECS * 8.0);
    config.population.procedural_preferences = true;
    // Keep the paper's *absolute* window sizes: the population-scaled
    // window heuristic is calibrated for small test populations and would
    // ask for million-entry windows here.
    config.population.consumer_config.memory = 200;
    config.population.provider_config.proposed_memory = 500;
    config.population.provider_config.performed_memory = 500;
    config
}

/// Consumers of a transport gate round (matches `transport_scaling`).
pub const TRANSPORT_CONSUMERS: u32 = 64;
/// Participant-host connections of a transport gate round.
pub const TRANSPORT_HOSTS: u32 = 8;
/// Candidates per query of a transport gate round.
pub const TRANSPORT_CANDIDATES_PER_QUERY: u32 = 16;
/// Sub-waves a pipelined transport round splits its batch into.
pub const TRANSPORT_PIPELINE_SUBWAVES: usize = 8;
/// Maximum waves in flight while driving a pipelined transport round.
pub const TRANSPORT_PIPELINE_DEPTH: usize = 4;

/// Re-measures one socket-transport wave round at `providers` provider
/// endpoints (plus [`TRANSPORT_CONSUMERS`] consumers) multiplexed over
/// [`TRANSPORT_HOSTS`] loopback connections — the same topology, flat
/// endpoints and full-coverage batch as the `transport_scaling` bench that
/// produced the committed `transport` row, so the gate compares like with
/// like. Records the best and median of `runs` single-wave rounds, plus
/// the best-of-`runs` *pipelined* round (the batch split into
/// [`TRANSPORT_PIPELINE_SUBWAVES`] sub-waves with up to
/// [`TRANSPORT_PIPELINE_DEPTH`] in flight).
pub fn measure_transport_round(providers: u32, runs: usize) -> TransportMeasurement {
    use sqlb_mediation::{ConsumerEndpoint, ProviderEndpoint};
    use sqlb_transport::{ParticipantHost, ServerConfig, WaveServer};
    use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

    struct FlatConsumer;
    impl ConsumerEndpoint for FlatConsumer {
        fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
            candidates
                .iter()
                .map(|&p| (p, 0.25 + 0.5 / (1.0 + p.index() as f64)))
                .collect()
        }
    }
    struct FlatProvider(f64);
    impl ProviderEndpoint for FlatProvider {
        fn intention(&mut self, _q: &Query) -> f64 {
            self.0
        }
        fn utilization(&mut self) -> f64 {
            self.0.abs() / 2.0
        }
    }

    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_secs(30),
        request_bids: false,
    });
    let addr = server.listen_tcp("127.0.0.1:0").expect("loopback bind");
    let mut handles = Vec::new();
    for h in 0..TRANSPORT_HOSTS {
        handles.push(std::thread::spawn(move || {
            let mut host = ParticipantHost::connect_tcp(addr)?;
            for c in (h..TRANSPORT_CONSUMERS).step_by(TRANSPORT_HOSTS as usize) {
                host.add_consumer(ConsumerId::new(c), FlatConsumer);
            }
            for p in (h..providers).step_by(TRANSPORT_HOSTS as usize) {
                host.add_provider(
                    ProviderId::new(p),
                    FlatProvider(1.0 - (p % 7) as f64 * 0.25),
                );
            }
            host.announce()?;
            host.serve()
        }));
    }
    server
        .accept_hosts(TRANSPORT_HOSTS as usize, Duration::from_secs(30))
        .expect("hosts connect");

    let batch: Vec<(Query, Vec<ProviderId>)> = (0..providers / TRANSPORT_CANDIDATES_PER_QUERY)
        .map(|i| {
            let query = Query::single(
                QueryId::new(i),
                ConsumerId::new(i % TRANSPORT_CONSUMERS),
                QueryClass::Light,
                SimTime::ZERO,
            );
            let first = i * TRANSPORT_CANDIDATES_PER_QUERY;
            let candidates = (first..first + TRANSPORT_CANDIDATES_PER_QUERY)
                .map(ProviderId::new)
                .collect();
            (query, candidates)
        })
        .collect();

    /// One pipelined round over the whole batch: sub-waves are encoded
    /// and sent up to the depth cap ahead of the collections.
    fn pipelined_round(server: &mut WaveServer, batch: &[(Query, Vec<ProviderId>)]) {
        let chunk = batch.len().div_ceil(TRANSPORT_PIPELINE_SUBWAVES).max(1);
        for sub in batch.chunks(chunk) {
            while server.waves_in_flight() >= TRANSPORT_PIPELINE_DEPTH {
                server.collect_wave().expect("a wave is in flight");
                assert_eq!(server.last_round().timed_out, 0);
            }
            server.begin_wave(sub);
        }
        while server.collect_wave().is_some() {
            assert_eq!(server.last_round().timed_out, 0);
        }
    }

    let _ = server.gather(&batch); // warmup
    let mut rounds = Vec::new();
    for _ in 0..runs.max(1) {
        let started = Instant::now();
        let infos = server.gather(&batch);
        let elapsed = started.elapsed();
        assert_eq!(infos.len(), batch.len());
        assert_eq!(server.last_round().timed_out, 0);
        rounds.push(elapsed);
    }
    rounds.sort();
    let best = rounds[0];
    let median = rounds[rounds.len() / 2];

    pipelined_round(&mut server, &batch); // warmup of the pipelined drive
    let mut pipelined_best = Duration::MAX;
    for _ in 0..runs.max(1) {
        let started = Instant::now();
        pipelined_round(&mut server, &batch);
        pipelined_best = pipelined_best.min(started.elapsed());
    }

    server.shutdown();
    for handle in handles {
        handle.join().expect("host thread").expect("host io");
    }
    TransportMeasurement {
        endpoints: (providers + TRANSPORT_CONSUMERS) as usize,
        hosts: TRANSPORT_HOSTS as usize,
        round_ms: best.as_secs_f64() * 1e3,
        median_ms: Some(median.as_secs_f64() * 1e3),
        pipelined_ms: Some(pipelined_best.as_secs_f64() * 1e3),
    }
}

/// Measures the observability overhead on the single-shard benchmark
/// configuration (the pure allocation hot path, no sharding to hide
/// behind): best-of-`runs` wall clock with instrumentation off and on.
/// Panics if the two runs' report digests diverge — instrumentation is
/// observation-only by contract, so a digest delta is a bug, not a
/// measurement.
pub fn measure_obs_overhead(runs: usize) -> ObsOverheadMeasurement {
    let off_config = bench_config(1);
    let on_config = off_config.with_observability(true);
    let time = |config: SimulationConfig| -> (Duration, u64) {
        let _ = run_simulation(config, METHOD).expect("warmup run");
        let mut best = Duration::MAX;
        let mut digest = 0u64;
        for _ in 0..runs.max(1) {
            let start = Instant::now();
            let report = run_simulation(config, METHOD).expect("overhead run");
            best = best.min(start.elapsed());
            digest = report.digest();
        }
        (best, digest)
    };
    let (off, off_digest) = time(off_config);
    let (on, on_digest) = time(on_config);
    assert_eq!(
        off_digest, on_digest,
        "instrumentation changed the report digest — observation-only contract broken"
    );
    let off_ms = off.as_secs_f64() * 1e3;
    let on_ms = on.as_secs_f64() * 1e3;
    ObsOverheadMeasurement {
        off_wall_ms: off_ms,
        on_wall_ms: on_ms,
        overhead_pct: (on_ms / off_ms - 1.0) * 100.0,
    }
}

/// Resident-set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Runs one scale point: constructs the simulator (measuring the
/// resident-set growth that the participant state costs) and runs it once,
/// timed.
pub fn measure_scale(participants: u64) -> ScaleMeasurement {
    let config = scale_config(participants, SCALE_SEED);
    let consumers = config.population.consumers;
    let providers = config.population.providers;
    let mediator_shards = config.mediator_shards;
    let rss_before = resident_bytes();
    let simulator = Simulator::new(config, METHOD).expect("scale configuration is valid");
    let rss_after = resident_bytes();
    let bytes_per_participant = match (rss_before, rss_after) {
        (Some(before), Some(after)) => {
            after.saturating_sub(before) as f64 / participants.max(1) as f64
        }
        _ => 0.0,
    };
    let start = Instant::now();
    let report = simulator.run();
    let elapsed = start.elapsed();
    ScaleMeasurement {
        participants,
        consumers,
        providers,
        mediator_shards,
        issued_queries: report.issued_queries,
        wall_ms: elapsed.as_secs_f64() * 1e3,
        allocations_per_sec: report.issued_queries as f64 / elapsed.as_secs_f64(),
        bytes_per_participant,
    }
}

/// Renders the full trajectory file.
pub fn render_trajectory(records: &[TrajectoryRecord]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"allocation_throughput\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"consumers\": {CONSUMERS}, \"providers\": {PROVIDERS}, \"duration_secs\": {DURATION_SECS}, \"workload\": {WORKLOAD}, \"method\": \"{}\"}},\n",
        METHOD.name(),
    ));
    out.push_str("  \"records\": [\n");
    for (r, record) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"shards\": [\n",
            record.label
        ));
        for (i, row) in record.shards.iter().enumerate() {
            let comma = if i + 1 < record.shards.len() { "," } else { "" };
            out.push_str(&format!(
                "      {{\"mediator_shards\": {}, \"issued_queries\": {}, \"best_wall_ms\": {:.3}, \"allocations_per_sec\": {:.1}}}{comma}\n",
                row.mediator_shards, row.issued_queries, row.best_wall_ms, row.allocations_per_sec,
            ));
        }
        let comma = if r + 1 < records.len() { "," } else { "" };
        out.push_str("    ]");
        if let Some(transport) = &record.transport {
            out.push_str(&format!(
                ", \"transport\": {{\"endpoints\": {}, \"hosts\": {}, \"round_ms\": {:.3}",
                transport.endpoints, transport.hosts, transport.round_ms,
            ));
            if let Some(median) = transport.median_ms {
                out.push_str(&format!(", \"median_ms\": {median:.3}"));
            }
            if let Some(pipelined) = transport.pipelined_ms {
                out.push_str(&format!(", \"pipelined_ms\": {pipelined:.3}"));
            }
            out.push('}');
        }
        if !record.scale.is_empty() {
            out.push_str(", \"scale\": [\n");
            for (i, row) in record.scale.iter().enumerate() {
                let scale_comma = if i + 1 < record.scale.len() { "," } else { "" };
                out.push_str(&format!(
                    "      {{\"participants\": {}, \"consumers\": {}, \"providers\": {}, \"mediator_shards\": {}, \"issued_queries\": {}, \"wall_ms\": {:.3}, \"allocations_per_sec\": {:.1}, \"bytes_per_participant\": {:.1}}}{scale_comma}\n",
                    row.participants, row.consumers, row.providers, row.mediator_shards,
                    row.issued_queries, row.wall_ms, row.allocations_per_sec,
                    row.bytes_per_participant,
                ));
            }
            out.push_str("    ]");
        }
        if let Some(obs) = &record.obs {
            out.push_str(&format!(
                ", \"obs\": {{\"off_wall_ms\": {:.3}, \"on_wall_ms\": {:.3}, \"overhead_pct\": {:.2}}}",
                obs.off_wall_ms, obs.on_wall_ms, obs.overhead_pct,
            ));
        }
        out.push_str(&format!("}}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start_matches([':', ' ', '"']);
    let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses a trajectory file produced by [`render_trajectory`] (the
/// pre-trajectory single-record format is accepted too: its shard rows
/// are collected under a `"PR-1"` label).
pub fn parse_trajectory(content: &str) -> Vec<TrajectoryRecord> {
    let mut records: Vec<TrajectoryRecord> = Vec::new();
    for line in content.lines() {
        if let Some(label) = field(line, "\"label\"") {
            records.push(TrajectoryRecord {
                label: label.to_string(),
                shards: Vec::new(),
                transport: None,
                scale: Vec::new(),
                obs: None,
            });
        }
        if line.contains("\"transport\"") {
            if let Some(record) = records.last_mut() {
                record.transport = Some(TransportMeasurement {
                    endpoints: field(line, "\"endpoints\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    hosts: field(line, "\"hosts\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    round_ms: field(line, "\"round_ms\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                    median_ms: field(line, "\"median_ms\"").and_then(|v| v.parse().ok()),
                    pipelined_ms: field(line, "\"pipelined_ms\"").and_then(|v| v.parse().ok()),
                });
            }
        }
        if line.contains("\"obs\"") {
            if let Some(record) = records.last_mut() {
                record.obs = Some(ObsOverheadMeasurement {
                    off_wall_ms: field(line, "\"off_wall_ms\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                    on_wall_ms: field(line, "\"on_wall_ms\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                    overhead_pct: field(line, "\"overhead_pct\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                });
            }
        }
        if line.contains("\"participants\"") {
            // A scale row also carries "mediator_shards"; it must be
            // recognized before the shard-row branch below.
            if let Some(record) = records.last_mut() {
                record.scale.push(ScaleMeasurement {
                    participants: field(line, "\"participants\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    consumers: field(line, "\"consumers\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    providers: field(line, "\"providers\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    mediator_shards: field(line, "\"mediator_shards\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    issued_queries: field(line, "\"issued_queries\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    wall_ms: field(line, "\"wall_ms\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                    allocations_per_sec: field(line, "\"allocations_per_sec\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                    bytes_per_participant: field(line, "\"bytes_per_participant\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                });
            }
            continue;
        }
        if line.contains("\"mediator_shards\"") {
            let row = ShardMeasurement {
                mediator_shards: field(line, "\"mediator_shards\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                issued_queries: field(line, "\"issued_queries\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                best_wall_ms: field(line, "\"best_wall_ms\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                allocations_per_sec: field(line, "\"allocations_per_sec\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
            };
            if records.is_empty() {
                records.push(TrajectoryRecord {
                    label: "PR-1".to_string(),
                    shards: Vec::new(),
                    transport: None,
                    scale: Vec::new(),
                    obs: None,
                });
            }
            records.last_mut().expect("record exists").shards.push(row);
        }
    }
    records
}

/// Replaces the record with `label` (or appends it) and returns the new
/// trajectory. A transport measurement already attached to the record is
/// preserved (the shard and transport benches write independently).
pub fn upsert_record(
    mut records: Vec<TrajectoryRecord>,
    label: &str,
    shards: Vec<ShardMeasurement>,
) -> Vec<TrajectoryRecord> {
    match records.iter_mut().find(|r| r.label == label) {
        Some(existing) => existing.shards = shards,
        None => records.push(TrajectoryRecord {
            label: label.to_string(),
            shards,
            transport: None,
            scale: Vec::new(),
            obs: None,
        }),
    }
    records
}

/// Attaches a transport round measurement to the record with `label`
/// (creating the record, with no shard rows yet, if needed).
pub fn upsert_transport(
    mut records: Vec<TrajectoryRecord>,
    label: &str,
    transport: TransportMeasurement,
) -> Vec<TrajectoryRecord> {
    match records.iter_mut().find(|r| r.label == label) {
        Some(existing) => existing.transport = Some(transport),
        None => records.push(TrajectoryRecord {
            label: label.to_string(),
            shards: Vec::new(),
            transport: Some(transport),
            scale: Vec::new(),
            obs: None,
        }),
    }
    records
}

/// Replaces the scale rows of the record with `label` (creating the
/// record if needed). Shard and transport rows already attached are
/// preserved — the three benches write independently.
pub fn upsert_scale(
    mut records: Vec<TrajectoryRecord>,
    label: &str,
    scale: Vec<ScaleMeasurement>,
) -> Vec<TrajectoryRecord> {
    match records.iter_mut().find(|r| r.label == label) {
        Some(existing) => existing.scale = scale,
        None => records.push(TrajectoryRecord {
            label: label.to_string(),
            shards: Vec::new(),
            transport: None,
            scale,
            obs: None,
        }),
    }
    records
}

/// Attaches an observability-overhead measurement to the record with
/// `label` (creating the record if needed). Rows the other benches wrote
/// are preserved.
pub fn upsert_obs(
    mut records: Vec<TrajectoryRecord>,
    label: &str,
    obs: ObsOverheadMeasurement,
) -> Vec<TrajectoryRecord> {
    match records.iter_mut().find(|r| r.label == label) {
        Some(existing) => existing.obs = Some(obs),
        None => records.push(TrajectoryRecord {
            label: label.to_string(),
            shards: Vec::new(),
            transport: None,
            scale: Vec::new(),
            obs: Some(obs),
        }),
    }
    records
}

/// Gates the socket-transport round against a committed baseline row:
/// one failure per gated rate (the single-wave round, and the pipelined
/// round when the baseline carries it) that moves endpoints more than
/// `tolerance` slower than the baseline did. Comparing endpoint rates
/// (endpoints per millisecond) keeps the check meaningful even if the
/// swept endpoint count changes between records.
pub fn transport_regression_failures(
    baseline: &TransportMeasurement,
    measured: &TransportMeasurement,
    tolerance: f64,
) -> Vec<String> {
    let gate = |kind: &str, base_ms: f64, measured_ms: f64| -> Option<String> {
        let base_rate = baseline.endpoints as f64 / base_ms;
        let measured_rate = measured.endpoints as f64 / measured_ms;
        let floor = base_rate * (1.0 - tolerance);
        (measured_rate < floor).then(|| {
            format!(
                "transport ({kind}): {:.1} endpoints/ms ({} endpoints in {:.3} ms) is below \
                 the regression floor {:.1} ({:.1} committed, tolerance {:.0}%)",
                measured_rate,
                measured.endpoints,
                measured_ms,
                floor,
                base_rate,
                tolerance * 100.0,
            )
        })
    };
    let mut failures = Vec::new();
    failures.extend(gate("single wave", baseline.round_ms, measured.round_ms));
    // The pipelined round is gated only when the committed record has one
    // (older records predate pipelining) and the fresh measurement ran it.
    if let (Some(base), Some(now)) = (baseline.pipelined_ms, measured.pipelined_ms) {
        failures.extend(gate("pipelined", base, now));
    }
    failures
}

/// Gates the scale rows against a committed baseline: one failure per
/// measured participant count whose throughput dropped more than
/// `tolerance` below the committed row. Baseline rows with no fresh
/// measurement are ignored (the CI gate only re-runs the cheap points).
pub fn scale_regression_failures(
    baseline: &[ScaleMeasurement],
    measured: &[ScaleMeasurement],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for now in measured {
        let Some(base) = baseline.iter().find(|b| b.participants == now.participants) else {
            continue;
        };
        let floor = base.allocations_per_sec * (1.0 - tolerance);
        if now.allocations_per_sec < floor {
            failures.push(format!(
                "scale {}: {:.1} allocations/s is below the regression floor {:.1} \
                 ({:.1} committed, tolerance {:.0}%)",
                now.participants,
                now.allocations_per_sec,
                floor,
                base.allocations_per_sec,
                tolerance * 100.0,
            ));
        }
    }
    failures
}

/// Merges two measurement passes, keeping the best (fastest) observation
/// per shard count. Used by the regression gate to absorb transient
/// contention on shared CI runners: a genuine regression stays slow on
/// every pass, noise does not.
pub fn merge_best(a: Vec<ShardMeasurement>, b: &[ShardMeasurement]) -> Vec<ShardMeasurement> {
    a.into_iter()
        .map(
            |row| match b.iter().find(|m| m.mediator_shards == row.mediator_shards) {
                Some(other) if other.allocations_per_sec > row.allocations_per_sec => other.clone(),
                _ => row,
            },
        )
        .collect()
}

/// Compares a fresh measurement against a baseline record: returns one
/// human-readable failure per shard count whose throughput dropped more
/// than `tolerance` below the baseline.
pub fn regression_failures(
    baseline: &TrajectoryRecord,
    measured: &[ShardMeasurement],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for base in &baseline.shards {
        let Some(now) = measured
            .iter()
            .find(|m| m.mediator_shards == base.mediator_shards)
        else {
            failures.push(format!(
                "K={}: baseline has a row but nothing was measured",
                base.mediator_shards
            ));
            continue;
        };
        let floor = base.allocations_per_sec * (1.0 - tolerance);
        if now.allocations_per_sec < floor {
            failures.push(format!(
                "K={}: {:.1} allocations/s is below the regression floor {:.1} \
                 ({:.1} committed in record \"{}\", tolerance {:.0}%)",
                base.mediator_shards,
                now.allocations_per_sec,
                floor,
                base.allocations_per_sec,
                baseline.label,
                tolerance * 100.0,
            ));
        }
    }
    failures
}

/// Path of the committed trajectory file (repo root).
pub fn trajectory_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_allocation.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, throughput: f64) -> TrajectoryRecord {
        TrajectoryRecord {
            label: label.to_string(),
            transport: None,
            scale: Vec::new(),
            obs: None,
            shards: vec![
                ShardMeasurement {
                    mediator_shards: 1,
                    issued_queries: 5753,
                    best_wall_ms: 40.0,
                    allocations_per_sec: throughput,
                },
                ShardMeasurement {
                    mediator_shards: 2,
                    issued_queries: 5753,
                    best_wall_ms: 20.0,
                    allocations_per_sec: throughput * 2.0,
                },
            ],
        }
    }

    #[test]
    fn trajectory_round_trips_through_render_and_parse() {
        let records = vec![record("PR-1", 99000.0), record("PR-2", 150000.0)];
        let parsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "PR-1");
        assert_eq!(parsed[1].label, "PR-2");
        assert_eq!(parsed[0].shards.len(), 2);
        assert_eq!(parsed[1].shards[0].mediator_shards, 1);
        assert_eq!(parsed[1].shards[0].issued_queries, 5753);
        assert!((parsed[1].shards[0].allocations_per_sec - 150000.0).abs() < 0.1);
        assert!((parsed[0].shards[1].best_wall_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn parse_accepts_the_legacy_single_record_format() {
        let legacy = r#"{
  "benchmark": "allocation_throughput",
  "config": {"consumers": 32, "providers": 64},
  "shards": [
    {"mediator_shards": 1, "issued_queries": 5753, "best_wall_ms": 58.086, "allocations_per_sec": 99043.6},
    {"mediator_shards": 8, "issued_queries": 5753, "best_wall_ms": 13.339, "allocations_per_sec": 431286.4}
  ]
}"#;
        let parsed = parse_trajectory(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].label, "PR-1");
        assert_eq!(parsed[0].shards.len(), 2);
        assert!((parsed[0].shards[0].allocations_per_sec - 99043.6).abs() < 0.1);
        assert_eq!(parsed[0].shards[1].mediator_shards, 8);
    }

    #[test]
    fn transport_measurements_round_trip_and_survive_shard_upserts() {
        let mut with_transport = record("PR-5", 180000.0);
        with_transport.transport = Some(TransportMeasurement {
            endpoints: 10_304,
            hosts: 8,
            round_ms: 41.5,
            median_ms: None,
            pipelined_ms: None,
        });
        let records = vec![record("PR-4", 170000.0), with_transport.clone()];
        let parsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].transport, None, "older records carry none");
        let transport = parsed[1].transport.as_ref().unwrap();
        assert_eq!(transport.endpoints, 10_304);
        assert_eq!(transport.hosts, 8);
        assert!((transport.round_ms - 41.5).abs() < 1e-9);
        assert_eq!(
            transport.median_ms, None,
            "a pre-dispersion row stays bare through a round trip"
        );
        assert_eq!(transport.pipelined_ms, None);

        // Re-measuring the shard rows must not drop the transport row.
        let records = upsert_record(parsed, "PR-5", record("PR-5", 190000.0).shards);
        assert!(records[1].transport.is_some());
        // And the transport row can be written first, creating the record.
        let records = upsert_transport(
            Vec::new(),
            "PR-6",
            TransportMeasurement {
                endpoints: 1,
                hosts: 1,
                round_ms: 0.5,
                median_ms: None,
                pipelined_ms: None,
            },
        );
        assert_eq!(records[0].label, "PR-6");
        assert!(records[0].shards.is_empty());
        let reparsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(reparsed[0].transport.as_ref().unwrap().endpoints, 1);
    }

    #[test]
    fn transport_dispersion_and_pipelined_rows_round_trip() {
        let mut with_transport = record("PR-7", 200000.0);
        with_transport.transport = Some(TransportMeasurement {
            endpoints: 10_304,
            hosts: 8,
            round_ms: 11.25,
            median_ms: Some(12.5),
            pipelined_ms: Some(7.75),
        });
        let parsed = parse_trajectory(&render_trajectory(&[with_transport.clone()]));
        assert_eq!(parsed[0].transport, with_transport.transport);
    }

    fn scale_row(participants: u64, throughput: f64) -> ScaleMeasurement {
        ScaleMeasurement {
            participants,
            consumers: (participants / 3) as u32,
            providers: (participants - participants / 3) as u32,
            mediator_shards: 1024,
            issued_queries: 140_000,
            wall_ms: 950.0,
            allocations_per_sec: throughput,
            bytes_per_participant: 412.5,
        }
    }

    #[test]
    fn scale_rows_round_trip_and_survive_other_upserts() {
        let mut with_scale = record("PR-6", 240000.0);
        with_scale.scale = vec![scale_row(100_000, 150000.0), scale_row(1_000_000, 120000.0)];
        let records = vec![record("PR-5", 180000.0), with_scale];
        let parsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].scale.is_empty(), "older records carry none");
        assert_eq!(parsed[1].scale.len(), 2);
        let row = &parsed[1].scale[1];
        assert_eq!(row.participants, 1_000_000);
        assert_eq!(row.consumers, 333_333);
        assert_eq!(row.providers, 666_667);
        assert_eq!(row.mediator_shards, 1024);
        assert_eq!(row.issued_queries, 140_000);
        assert!((row.wall_ms - 950.0).abs() < 1e-9);
        assert!((row.allocations_per_sec - 120000.0).abs() < 0.1);
        assert!((row.bytes_per_participant - 412.5).abs() < 1e-9);
        // Scale rows must not be swallowed by the shard-row parser even
        // though they also carry a "mediator_shards" key.
        assert_eq!(parsed[1].shards.len(), 2);

        // Re-upserting shard rows keeps the scale rows, and vice versa.
        let records = upsert_record(parsed, "PR-6", record("PR-6", 250000.0).shards);
        assert_eq!(records[1].scale.len(), 2);
        let records = upsert_scale(records, "PR-6", vec![scale_row(100_000, 160000.0)]);
        assert_eq!(records[1].scale.len(), 1);
        assert_eq!(records[1].shards.len(), 2);
        // And upsert_scale creates a fresh record when the label is new.
        let records = upsert_scale(Vec::new(), "PR-7", vec![scale_row(100_000, 1.0)]);
        assert_eq!(records[0].label, "PR-7");
        assert!(records[0].shards.is_empty());
    }

    #[test]
    fn obs_overhead_rows_round_trip_and_survive_other_upserts() {
        let mut with_obs = record("PR-10", 260000.0);
        with_obs.obs = Some(ObsOverheadMeasurement {
            off_wall_ms: 38.125,
            on_wall_ms: 38.5,
            overhead_pct: 0.98,
        });
        // A record carrying transport AND scale AND obs renders each row
        // on its own parseable line.
        with_obs.transport = Some(TransportMeasurement {
            endpoints: 10_304,
            hosts: 8,
            round_ms: 9.5,
            median_ms: Some(9.9),
            pipelined_ms: Some(8.8),
        });
        with_obs.scale = vec![scale_row(100_000, 150000.0)];
        let records = vec![record("PR-9", 250000.0), with_obs.clone()];
        let parsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].obs, None, "older records carry none");
        let obs = parsed[1].obs.as_ref().unwrap();
        assert!((obs.off_wall_ms - 38.125).abs() < 1e-9);
        assert!((obs.on_wall_ms - 38.5).abs() < 1e-9);
        assert!((obs.overhead_pct - 0.98).abs() < 1e-9);
        assert_eq!(parsed[1].transport, with_obs.transport);
        assert_eq!(parsed[1].scale.len(), 1);
        assert_eq!(parsed[1].shards.len(), 2);

        // The obs row survives re-upserts of the other rows, and its own
        // upsert preserves theirs (or creates a fresh record).
        let records = upsert_record(parsed, "PR-10", record("PR-10", 270000.0).shards);
        assert!(records[1].obs.is_some());
        let records = upsert_obs(
            records,
            "PR-10",
            ObsOverheadMeasurement {
                off_wall_ms: 40.0,
                on_wall_ms: 40.4,
                overhead_pct: 1.0,
            },
        );
        assert!((records[1].obs.as_ref().unwrap().off_wall_ms - 40.0).abs() < 1e-9);
        assert_eq!(records[1].shards.len(), 2);
        assert!(records[1].transport.is_some());
        let records = upsert_obs(
            Vec::new(),
            "PR-11",
            ObsOverheadMeasurement {
                off_wall_ms: 1.0,
                on_wall_ms: 1.0,
                overhead_pct: 0.0,
            },
        );
        assert_eq!(records[0].label, "PR-11");
        assert!(records[0].shards.is_empty());
    }

    #[test]
    fn transport_gate_compares_endpoint_rates() {
        let base = TransportMeasurement {
            endpoints: 10_304,
            hosts: 8,
            round_ms: 10.0,
            median_ms: None,
            pipelined_ms: None,
        };
        // Same rate: fine.
        assert!(transport_regression_failures(&base, &base, 0.2).is_empty());
        // 10% slower: within a 20% tolerance.
        let slower = TransportMeasurement {
            round_ms: 11.0,
            ..base.clone()
        };
        assert!(transport_regression_failures(&base, &slower, 0.2).is_empty());
        // 2x slower: trips.
        let slow = TransportMeasurement {
            round_ms: 20.0,
            ..base.clone()
        };
        let failures = transport_regression_failures(&base, &slow, 0.2);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("transport"));
        // A different endpoint count still compares fairly (per-ms rate):
        // half the endpoints in half the time is the same rate.
        let half = TransportMeasurement {
            endpoints: 5_152,
            hosts: 8,
            round_ms: 5.0,
            median_ms: None,
            pipelined_ms: None,
        };
        assert!(transport_regression_failures(&base, &half, 0.2).is_empty());
    }

    #[test]
    fn transport_gate_covers_the_pipelined_round_when_committed() {
        let base = TransportMeasurement {
            endpoints: 10_304,
            hosts: 8,
            round_ms: 10.0,
            median_ms: Some(11.0),
            pipelined_ms: Some(6.0),
        };
        // Healthy single wave, regressed pipelined round: one failure,
        // naming the pipelined rate.
        let slow_pipeline = TransportMeasurement {
            pipelined_ms: Some(12.0),
            ..base.clone()
        };
        let failures = transport_regression_failures(&base, &slow_pipeline, 0.2);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("pipelined"), "{}", failures[0]);
        // A measurement with no pipelined round (or a baseline without
        // one) skips that gate instead of failing vacuously.
        let bare = TransportMeasurement {
            pipelined_ms: None,
            ..base.clone()
        };
        assert!(transport_regression_failures(&base, &bare, 0.2).is_empty());
        assert!(transport_regression_failures(&bare, &base, 0.2).is_empty());
    }

    #[test]
    fn scale_gate_trips_only_on_matching_regressed_points() {
        let baseline = vec![scale_row(100_000, 100000.0), scale_row(1_000_000, 80000.0)];
        // Only the cheap point measured, within tolerance: fine.
        let ok = vec![scale_row(100_000, 85000.0)];
        assert!(scale_regression_failures(&baseline, &ok, 0.2).is_empty());
        // Regressed past tolerance: trips, naming the participant count.
        let bad = vec![scale_row(100_000, 70000.0)];
        let failures = scale_regression_failures(&baseline, &bad, 0.2);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("100000"));
        // A measured point with no committed row is not a failure.
        let unknown = vec![scale_row(50_000, 1.0)];
        assert!(scale_regression_failures(&baseline, &unknown, 0.2).is_empty());
    }

    #[test]
    fn scale_config_is_valid_and_procedural_at_both_points() {
        for &participants in &SCALE_POINTS {
            let config = scale_config(participants, SCALE_SEED);
            assert!(config.validate().is_ok());
            assert!(config.population.procedural_preferences);
            assert_eq!(
                config.population.consumers as u64 + config.population.providers as u64,
                participants
            );
            // Paper-absolute windows, not population-scaled ones.
            assert_eq!(config.population.provider_config.proposed_memory, 500);
            assert_eq!(config.population.consumer_config.memory, 200);
            // Shards keep the candidate set near the paper's size.
            let per_shard = config.population.providers as usize / config.mediator_shards;
            assert!(
                (SCALE_SHARD_FANOUT / 2..=SCALE_SHARD_FANOUT).contains(&per_shard),
                "providers per shard {per_shard} strays from the fan-out target"
            );
        }
    }

    #[test]
    fn upsert_replaces_matching_label_and_appends_new() {
        let records = vec![record("PR-1", 99000.0)];
        let records = upsert_record(records, "PR-2", record("PR-2", 150000.0).shards);
        assert_eq!(records.len(), 2);
        let records = upsert_record(records, "PR-2", record("PR-2", 160000.0).shards);
        assert_eq!(records.len(), 2);
        assert!((records[1].shards[0].allocations_per_sec - 160000.0).abs() < 0.1);
    }

    #[test]
    fn merge_best_keeps_the_faster_observation_per_shard_count() {
        let first = record("a", 90000.0).shards;
        let mut second = record("b", 100000.0).shards;
        second[1].allocations_per_sec = 100.0; // second pass slower at K=2
        let merged = merge_best(first, &second);
        assert!((merged[0].allocations_per_sec - 100000.0).abs() < 0.1);
        assert!((merged[1].allocations_per_sec - 180000.0).abs() < 0.1);
    }

    #[test]
    fn regression_gate_trips_only_past_tolerance() {
        let baseline = record("PR-2", 100000.0);
        // 15 % below: fine at 20 % tolerance.
        let ok = vec![
            ShardMeasurement {
                mediator_shards: 1,
                issued_queries: 5753,
                best_wall_ms: 47.0,
                allocations_per_sec: 85000.0,
            },
            ShardMeasurement {
                mediator_shards: 2,
                issued_queries: 5753,
                best_wall_ms: 23.0,
                allocations_per_sec: 170000.0,
            },
        ];
        assert!(regression_failures(&baseline, &ok, REGRESSION_TOLERANCE).is_empty());
        // 25 % below on one shard count: trips.
        let bad = vec![
            ShardMeasurement {
                mediator_shards: 1,
                issued_queries: 5753,
                best_wall_ms: 53.0,
                allocations_per_sec: 75000.0,
            },
            ShardMeasurement {
                mediator_shards: 2,
                issued_queries: 5753,
                best_wall_ms: 23.0,
                allocations_per_sec: 170000.0,
            },
        ];
        let failures = regression_failures(&baseline, &bad, REGRESSION_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("K=1"));
        // A missing shard count is also a failure.
        let failures = regression_failures(&baseline, &ok[..1], REGRESSION_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("K=2"));
    }
}
