//! Micro-benchmarks of the satisfaction model and the system metrics:
//! tracker updates at the paper's window sizes (k = 200 / 500) and the
//! Section 4 aggregate metrics over paper-sized participant sets.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sqlb_core::allocation::CandidateInfo;
use sqlb_core::mediator_state::MediatorState;
use sqlb_core::scoring::RankedProvider;
use sqlb_metrics::{fairness, mean, min_max_ratio, Summary};
use sqlb_satisfaction::{ConsumerTracker, ProviderTracker};
use sqlb_types::{ConsumerId, Intention, ProviderId, Query, QueryClass, QueryId, SimTime};

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("trackers");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("provider_tracker_record_and_read_k500", |b| {
        let mut tracker = ProviderTracker::new(500, 500, 0.5);
        let mut i = 0u64;
        b.iter(|| {
            let value = ((i % 200) as f64 / 100.0) - 1.0;
            tracker.record_proposal(Intention::new(value), i.is_multiple_of(3));
            i += 1;
            black_box(tracker.satisfaction() + tracker.adequation())
        })
    });
    group.bench_function("consumer_tracker_record_and_read_k200", |b| {
        let mut tracker = ConsumerTracker::new(200, 0.5);
        let mut i = 0u64;
        b.iter(|| {
            let value = (i % 100) as f64 / 100.0;
            tracker.record_values(value, 1.0 - value);
            i += 1;
            black_box(tracker.allocation_satisfaction())
        })
    });
    group.finish();
}

fn bench_mediator_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("mediator_state");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    let candidates: Vec<CandidateInfo> = (0..400)
        .map(|i| {
            CandidateInfo::new(ProviderId::new(i))
                .with_consumer_intention((i as f64 / 400.0) * 2.0 - 1.0)
                .with_provider_intention(1.0 - (i as f64 / 400.0) * 2.0)
        })
        .collect();
    group.bench_function("record_allocation_400_candidates", |b| {
        let mut state = MediatorState::paper_default();
        let mut i = 0u32;
        b.iter(|| {
            let query = Query::single(
                QueryId::new(i),
                ConsumerId::new(i % 200),
                QueryClass::Light,
                SimTime::ZERO,
            );
            let allocation = sqlb_core::allocation::Allocation {
                query: query.id,
                selected: vec![ProviderId::new(i % 400)],
                ranking: vec![RankedProvider {
                    provider: ProviderId::new(i % 400),
                    score: 1.0,
                }],
            };
            state.record_allocation(&query, &candidates, &allocation);
            i = i.wrapping_add(1);
        })
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let values: Vec<f64> = (0..400).map(|i| (i as f64 % 97.0) / 97.0).collect();
    let mut group = c.benchmark_group("metrics");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("mean_400", |b| b.iter(|| mean(black_box(&values))));
    group.bench_function("fairness_400", |b| b.iter(|| fairness(black_box(&values))));
    group.bench_function("min_max_ratio_400", |b| {
        b.iter(|| min_max_ratio(black_box(&values)))
    });
    group.bench_function("summary_400", |b| {
        b.iter(|| Summary::of(black_box(&values)))
    });
    group.finish();
}

criterion_group!(benches, bench_trackers, bench_mediator_state, bench_metrics);
criterion_main!(benches);
