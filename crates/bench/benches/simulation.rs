//! End-to-end simulation benchmarks: short captive runs of the three paper
//! methods, so regressions in the whole mediator → agents → queueing path
//! show up in `cargo bench`.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlb_sim::engine::run_simulation;
use sqlb_sim::{Method, SimulationConfig, WorkloadPattern};

fn bench_simulation_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_short_run");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for method in [Method::Sqlb, Method::CapacityBased, Method::MariposaLike] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let config = SimulationConfig::scaled(12, 24, 120.0, 7)
                        .with_workload(WorkloadPattern::Fixed(0.7));
                    let report = run_simulation(black_box(config), method).expect("run");
                    black_box(report.completed_queries)
                })
            },
        );
    }
    group.finish();
}

fn bench_population_generation(c: &mut Criterion) {
    use sqlb_agents::{Population, PopulationConfig};
    let mut group = c.benchmark_group("population");
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("generate_paper_200x400", |b| {
        b.iter(|| Population::generate(black_box(&PopulationConfig::paper(42))).expect("generate"))
    });
    group.finish();
}

criterion_group!(benches, bench_simulation_runs, bench_population_generation);
criterion_main!(benches);
