//! Micro-benchmarks of the allocation hot path: intention computation,
//! scoring, and the three paper allocation methods over candidate sets of
//! the paper's size (400 providers) and smaller — plus an end-to-end
//! allocation-throughput comparison of the mono-mediator pipeline against
//! K ∈ {2, 4, 8} mediator shards, recorded to `BENCH_allocation.json` at
//! the repository root so the performance trajectory is tracked over time.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlb_baselines::{CapacityBased, MariposaLike};
use sqlb_core::allocation::{AllocationMethod, Bid, CandidateInfo, UniformView};
use sqlb_core::intention::{consumer_intention, provider_intention, IntentionParams};
use sqlb_core::scoring::{omega, provider_score};
use sqlb_core::SqlbAllocator;
use sqlb_sim::engine::run_simulation;
use sqlb_sim::{Method, SimulationConfig, WorkloadPattern};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

fn candidates(n: u32) -> Vec<CandidateInfo> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            CandidateInfo::new(ProviderId::new(i))
                .with_consumer_intention(2.0 * x - 1.0)
                .with_provider_intention(1.0 - 2.0 * x)
                .with_utilization(x * 1.5)
                .with_bid(Bid::new(50.0 + 100.0 * x, 1.0 + 5.0 * x))
        })
        .collect()
}

fn query() -> Query {
    Query::single(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    )
}

fn bench_intentions(c: &mut Criterion) {
    let params = IntentionParams::default();
    let mut group = c.benchmark_group("intentions");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("consumer_intention", |b| {
        b.iter(|| {
            consumer_intention(
                black_box(0.6),
                black_box(0.4),
                black_box(0.7),
                black_box(params),
            )
        })
    });
    group.bench_function("provider_intention", |b| {
        b.iter(|| {
            provider_intention(
                black_box(0.6),
                black_box(0.8),
                black_box(0.5),
                black_box(params),
            )
        })
    });
    group.bench_function("provider_score", |b| {
        b.iter(|| {
            provider_score(
                black_box(0.7),
                black_box(0.3),
                black_box(omega(black_box(0.6), black_box(0.4))),
                black_box(params),
            )
        })
    });
    group.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let q = query();
    let view = UniformView(0.5);
    let mut group = c.benchmark_group("allocate");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    for n in [50u32, 400u32] {
        let cands = candidates(n);
        group.bench_with_input(BenchmarkId::new("SQLB", n), &cands, |b, cands| {
            let mut method = SqlbAllocator::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
        group.bench_with_input(BenchmarkId::new("CapacityBased", n), &cands, |b, cands| {
            let mut method = CapacityBased::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
        group.bench_with_input(BenchmarkId::new("MariposaLike", n), &cands, |b, cands| {
            let mut method = MariposaLike::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
    }
    group.finish();
}

/// End-to-end allocation throughput per shard count: short captive runs of
/// the full engine, measured wall-clock, reported as queries/second and
/// exported as JSON.
fn bench_shard_throughput(c: &mut Criterion) {
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const RUNS_PER_COUNT: usize = 3;
    // One set of constants feeds both the simulation runs and the JSON
    // record, so the recorded configuration can never drift from the one
    // that produced the numbers.
    const CONSUMERS: u32 = 32;
    const PROVIDERS: u32 = 64;
    const DURATION_SECS: f64 = 400.0;
    const WORKLOAD: f64 = 0.6;
    const SEED: u64 = 7;
    const METHOD: Method = Method::Sqlb;

    let mut rows = Vec::new();
    let mut group = c.benchmark_group("shard_throughput");
    group.measurement_time(Duration::from_millis(400));
    for &shards in &SHARD_COUNTS {
        let config = SimulationConfig::scaled(CONSUMERS, PROVIDERS, DURATION_SECS, SEED)
            .with_workload(WorkloadPattern::Fixed(WORKLOAD))
            .with_mediator_shards(shards);

        // A dedicated best-of-N wall-clock measurement for the JSON record
        // (criterion's per-iteration mean is noisier for multi-ms runs).
        let mut best = Duration::MAX;
        let mut issued = 0u64;
        for _ in 0..RUNS_PER_COUNT {
            let start = Instant::now();
            let report = run_simulation(config, METHOD).expect("run");
            let elapsed = start.elapsed();
            issued = report.issued_queries;
            best = best.min(elapsed);
        }
        let throughput = issued as f64 / best.as_secs_f64();
        rows.push((shards, issued, best, throughput));

        group.bench_with_input(
            BenchmarkId::new("sqlb_allocations", shards),
            &config,
            |b, &config| {
                b.iter(|| {
                    let report = run_simulation(black_box(config), METHOD).expect("run");
                    black_box(report.issued_queries)
                })
            },
        );
    }
    group.finish();

    // `CARGO_MANIFEST_DIR` is crates/bench; the record lives at the repo
    // root so successive runs overwrite one well-known file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_allocation.json");
    let mut json = String::from("{\n  \"benchmark\": \"allocation_throughput\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"consumers\": {CONSUMERS}, \"providers\": {PROVIDERS}, \"duration_secs\": {DURATION_SECS}, \"workload\": {WORKLOAD}, \"method\": \"{}\"}},\n",
        METHOD.name(),
    ));
    json.push_str("  \"shards\": [\n");
    for (i, (shards, issued, best, throughput)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"mediator_shards\": {shards}, \"issued_queries\": {issued}, \"best_wall_ms\": {:.3}, \"allocations_per_sec\": {throughput:.1}}}{comma}\n",
            best.as_secs_f64() * 1e3,
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write BENCH_allocation.json: {e}");
    }
}

criterion_group!(
    benches,
    bench_intentions,
    bench_allocators,
    bench_shard_throughput
);
criterion_main!(benches);
