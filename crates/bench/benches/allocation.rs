//! Micro-benchmarks of the allocation hot path: intention computation,
//! scoring, and the three paper allocation methods over candidate sets of
//! the paper's size (400 providers) and smaller.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlb_baselines::{CapacityBased, MariposaLike};
use sqlb_core::allocation::{AllocationMethod, Bid, CandidateInfo, UniformView};
use sqlb_core::intention::{consumer_intention, provider_intention, IntentionParams};
use sqlb_core::scoring::{omega, provider_score};
use sqlb_core::SqlbAllocator;
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

fn candidates(n: u32) -> Vec<CandidateInfo> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            CandidateInfo::new(ProviderId::new(i))
                .with_consumer_intention(2.0 * x - 1.0)
                .with_provider_intention(1.0 - 2.0 * x)
                .with_utilization(x * 1.5)
                .with_bid(Bid::new(50.0 + 100.0 * x, 1.0 + 5.0 * x))
        })
        .collect()
}

fn query() -> Query {
    Query::single(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    )
}

fn bench_intentions(c: &mut Criterion) {
    let params = IntentionParams::default();
    let mut group = c.benchmark_group("intentions");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("consumer_intention", |b| {
        b.iter(|| {
            consumer_intention(
                black_box(0.6),
                black_box(0.4),
                black_box(0.7),
                black_box(params),
            )
        })
    });
    group.bench_function("provider_intention", |b| {
        b.iter(|| {
            provider_intention(
                black_box(0.6),
                black_box(0.8),
                black_box(0.5),
                black_box(params),
            )
        })
    });
    group.bench_function("provider_score", |b| {
        b.iter(|| {
            provider_score(
                black_box(0.7),
                black_box(0.3),
                black_box(omega(black_box(0.6), black_box(0.4))),
                black_box(params),
            )
        })
    });
    group.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let q = query();
    let view = UniformView(0.5);
    let mut group = c.benchmark_group("allocate");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    for n in [50u32, 400u32] {
        let cands = candidates(n);
        group.bench_with_input(BenchmarkId::new("SQLB", n), &cands, |b, cands| {
            let mut method = SqlbAllocator::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
        group.bench_with_input(BenchmarkId::new("CapacityBased", n), &cands, |b, cands| {
            let mut method = CapacityBased::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
        group.bench_with_input(BenchmarkId::new("MariposaLike", n), &cands, |b, cands| {
            let mut method = MariposaLike::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intentions, bench_allocators);
criterion_main!(benches);
