//! Micro-benchmarks of the allocation hot path: intention computation,
//! scoring, and the three paper allocation methods over candidate sets of
//! the paper's size (400 providers) and smaller — plus an end-to-end
//! allocation-throughput comparison of the mono-mediator pipeline against
//! K ∈ {2, 4, 8} mediator shards, recorded to `BENCH_allocation.json` at
//! the repository root so the performance trajectory is tracked over time.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlb_agents::{Population, PopulationConfig};
use sqlb_baselines::{CapacityBased, MariposaLike};
use sqlb_bench::perf;
use sqlb_core::allocation::{AllocationMethod, Bid, CandidateInfo, UniformView};
use sqlb_core::intention::{consumer_intention, provider_intention, IntentionParams};
use sqlb_core::mediator_state::MediatorStateConfig;
use sqlb_core::scoring::{omega, provider_score};
use sqlb_core::{Mediator, SqlbAllocator};
use sqlb_reputation::ReputationStore;
use sqlb_sim::engine::run_simulation;
use sqlb_types::{ConsumerId, MediatorId, ProviderId, Query, QueryClass, QueryId, SimTime};

fn candidates(n: u32) -> Vec<CandidateInfo> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            CandidateInfo::new(ProviderId::new(i))
                .with_consumer_intention(2.0 * x - 1.0)
                .with_provider_intention(1.0 - 2.0 * x)
                .with_utilization(x * 1.5)
                .with_bid(Bid::new(50.0 + 100.0 * x, 1.0 + 5.0 * x))
        })
        .collect()
}

fn query() -> Query {
    Query::single(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    )
}

fn bench_intentions(c: &mut Criterion) {
    let params = IntentionParams::default();
    let mut group = c.benchmark_group("intentions");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("consumer_intention", |b| {
        b.iter(|| {
            consumer_intention(
                black_box(0.6),
                black_box(0.4),
                black_box(0.7),
                black_box(params),
            )
        })
    });
    group.bench_function("provider_intention", |b| {
        b.iter(|| {
            provider_intention(
                black_box(0.6),
                black_box(0.8),
                black_box(0.5),
                black_box(params),
            )
        })
    });
    group.bench_function("provider_score", |b| {
        b.iter(|| {
            provider_score(
                black_box(0.7),
                black_box(0.3),
                black_box(omega(black_box(0.6), black_box(0.4))),
                black_box(params),
            )
        })
    });
    group.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let q = query();
    let view = UniformView(0.5);
    let mut group = c.benchmark_group("allocate");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    for n in [50u32, 400u32] {
        let cands = candidates(n);
        group.bench_with_input(BenchmarkId::new("SQLB", n), &cands, |b, cands| {
            let mut method = SqlbAllocator::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
        group.bench_with_input(BenchmarkId::new("CapacityBased", n), &cands, |b, cands| {
            let mut method = CapacityBased::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
        group.bench_with_input(BenchmarkId::new("MariposaLike", n), &cands, |b, cands| {
            let mut method = MariposaLike::new();
            b.iter(|| method.allocate(black_box(&q), black_box(cands), &view))
        });
    }
    group.finish();
}

/// The isolated arrival→allocation path (Algorithm 1 without the event
/// loop): gather the consumer's and every candidate provider's intention
/// from real agents, run the allocation decision on a real mediator, and
/// record the outcome — exactly what the engine does per query arrival,
/// minus event-queue and completion bookkeeping. This is the number the
/// tentpole optimizations move; the `ranking-on` variant shows what the
/// diagnostic costs when enabled.
fn bench_isolated_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("isolated_allocate");
    group.measurement_time(Duration::from_secs(1));
    for record_ranking in [false, true] {
        let mut population = Population::generate(&PopulationConfig::scaled(
            perf::CONSUMERS,
            perf::PROVIDERS,
            7,
        ))
        .expect("population");
        let reputation = ReputationStore::neutral();
        let mut mediator = Mediator::new(
            MediatorId::new(0),
            Box::new(SqlbAllocator::new()),
            MediatorStateConfig::default(),
        );
        mediator.set_record_ranking(record_ranking);
        let candidates: Vec<ProviderId> = population.providers.keys().collect();
        let mut infos: Vec<CandidateInfo> = Vec::with_capacity(candidates.len());
        let mut next_query: u32 = 0;
        let label = if record_ranking {
            "ranking-on"
        } else {
            "hot-path"
        };
        group.bench_function(BenchmarkId::new("sqlb", label), |b| {
            b.iter(|| {
                let consumer = ConsumerId::new(next_query % perf::CONSUMERS);
                let class = if next_query.is_multiple_of(2) {
                    QueryClass::Light
                } else {
                    QueryClass::Heavy
                };
                let now = SimTime::from_secs(next_query as f64 * 0.01);
                let query = Query::single(QueryId::new(next_query), consumer, class, now);
                next_query = next_query.wrapping_add(1);
                infos.clear();
                let consumer_agent = &population.consumers[consumer];
                for &p in &candidates {
                    let ci = consumer_agent.intention_for(&query, p, &reputation);
                    let provider_agent = &mut population.providers[p];
                    let (pi, utilization) = provider_agent.intention_and_utilization(&query, now);
                    infos.push(
                        CandidateInfo::new(p)
                            .with_consumer_intention(ci)
                            .with_provider_intention(pi)
                            .with_utilization(utilization),
                    );
                }
                let allocation = mediator.allocate(&query, &infos);
                black_box(allocation.selected.len())
            })
        });
    }
    group.finish();
}

/// End-to-end allocation throughput per shard count: short captive runs of
/// the full engine, measured wall-clock, reported as queries/second and
/// recorded into the committed `BENCH_allocation.json` trajectory (the
/// record label comes from `BENCH_LABEL`, default `"latest"`; committed
/// history under other labels is preserved).
fn bench_shard_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_throughput");
    group.measurement_time(Duration::from_millis(400));
    for &shards in &perf::SHARD_COUNTS {
        let config = perf::bench_config(shards);
        group.bench_with_input(
            BenchmarkId::new("sqlb_allocations", shards),
            &config,
            |b, &config| {
                b.iter(|| {
                    let report = run_simulation(black_box(config), perf::METHOD).expect("run");
                    black_box(report.issued_queries)
                })
            },
        );
    }
    group.finish();

    // A dedicated best-of-N wall-clock measurement for the JSON record
    // (criterion's per-iteration mean is noisier for multi-ms runs).
    let measured = perf::measure_shard_throughput(3);
    // The observability cost row rides along: instrumented vs off on the
    // single-shard hot path, digest-checked (observation-only contract).
    let obs = perf::measure_obs_overhead(5);
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "latest".to_string());
    let path = perf::trajectory_path();
    let existing = std::fs::read_to_string(path)
        .map(|content| perf::parse_trajectory(&content))
        .unwrap_or_default();
    let records = perf::upsert_record(existing, &label, measured);
    let records = perf::upsert_obs(records, &label, obs);
    if let Err(e) = std::fs::write(path, perf::render_trajectory(&records)) {
        eprintln!("warning: could not write BENCH_allocation.json: {e}");
    }
}

criterion_group!(
    benches,
    bench_intentions,
    bench_allocators,
    bench_isolated_allocate,
    bench_shard_throughput
);
criterion_main!(benches);
