//! Endpoint-count scaling of the mediation layer.
//!
//! The question this bench answers: how much does one host pay per
//! mediation round as the number of participant endpoints grows into the
//! tens of thousands? The asynchronous reactor tracks an endpoint as a
//! slab entry polled by one event loop, so it is measured at 10 000 and
//! 50 000 endpoints; the legacy thread-per-participant wave — one OS
//! thread spawned per participant request — is measured at 1 000
//! endpoints for contrast (spawning 10 000+ threads per round is exactly
//! the cost the reactor exists to avoid).
//!
//! Each measured round is one `gather_batch` wave in which *every*
//! provider endpoint is the candidate of exactly one query (batches of
//! `endpoints / CANDIDATES_PER_QUERY` queries, 16 candidates each), so a
//! "round" touches the full endpoint population once. A `frame` group
//! additionally measures the wire framing of the wave's reply messages.
//!
//! Run with: `cargo bench -p sqlb-bench --bench reactor_scaling`

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlb_mediation::{
    decode_participant_reply, encode_participant_reply, run_wave_threaded, AsyncMediator,
    ConsumerEndpoint, IntentionWave, ParticipantReply, ProviderAnswer, ProviderEndpoint,
    RuntimeConfig,
};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

/// Candidates per query; 16 keeps candidate sets realistic while letting
/// a batch cover every endpoint exactly once.
const CANDIDATES_PER_QUERY: usize = 16;
/// Consumers issuing the batch (queries are spread over them).
const CONSUMERS: usize = 64;

struct FlatConsumer;

impl ConsumerEndpoint for FlatConsumer {
    fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, 0.25 + 0.5 / (1.0 + p.index() as f64)))
            .collect()
    }
}

struct FlatProvider(f64);

impl ProviderEndpoint for FlatProvider {
    fn intention(&mut self, _q: &Query) -> f64 {
        self.0
    }
}

/// One query per `CANDIDATES_PER_QUERY` providers: the batch that touches
/// every provider endpoint exactly once.
fn full_coverage_batch(providers: usize) -> Vec<(Query, Vec<ProviderId>)> {
    (0..providers / CANDIDATES_PER_QUERY)
        .map(|i| {
            let mut query = Query::single(
                QueryId::new(i as u32),
                ConsumerId::new((i % CONSUMERS) as u32),
                QueryClass::Light,
                SimTime::ZERO,
            );
            query.n = 1;
            let first = i * CANDIDATES_PER_QUERY;
            let candidates = (first..first + CANDIDATES_PER_QUERY)
                .map(|p| ProviderId::new(p as u32))
                .collect();
            (query, candidates)
        })
        .collect()
}

fn mediator_with_endpoints(providers: usize) -> AsyncMediator {
    let mut mediator = AsyncMediator::new(RuntimeConfig {
        timeout: Duration::from_millis(200),
        request_bids: false,
    });
    for c in 0..CONSUMERS {
        mediator.register_consumer(ConsumerId::new(c as u32), FlatConsumer);
    }
    for p in 0..providers {
        mediator.register_provider(
            ProviderId::new(p as u32),
            FlatProvider(1.0 - (p % 7) as f64 * 0.25),
        );
    }
    mediator
}

fn bench_reactor(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("reactor_round");
    group.measurement_time(Duration::from_secs(4));
    for &endpoints in &[10_000usize, 50_000] {
        let mut mediator = mediator_with_endpoints(endpoints);
        let batch = full_coverage_batch(endpoints);
        group.bench_function(BenchmarkId::from_parameter(endpoints), |b| {
            b.iter(|| {
                let infos = mediator.gather_batch(&batch);
                assert_eq!(infos.len(), batch.len());
                infos
            })
        });
        // The acceptance check behind the bench: a full round over the
        // endpoint population answers every request, with zero timeouts.
        let round = mediator.reactor().last_round();
        assert_eq!(round.delivered, CONSUMERS + endpoints);
        assert_eq!(round.timed_out, 0);
    }
    group.finish();
}

fn bench_threaded(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("threaded_round");
    group.measurement_time(Duration::from_secs(4));
    // 1 000 endpoints is already ~1 000 thread spawns per round; the
    // reactor groups above run 10–50× more endpoints per round.
    let endpoints = 1_000usize;
    let batch = full_coverage_batch(endpoints);
    group.bench_function(BenchmarkId::from_parameter(endpoints), |b| {
        b.iter(|| {
            let mut wave = IntentionWave::new();
            for (query, candidates) in &batch {
                let q = query.id;
                wave.consumer(query.consumer, None, move || {
                    vec![(q, candidates.iter().map(|&p| (p, 0.5)).collect())]
                });
                for &p in candidates {
                    wave.provider(p, None, move || {
                        vec![ProviderAnswer {
                            query: q,
                            intention: 0.75,
                            utilization: 0.0,
                            bid: None,
                        }]
                    });
                }
            }
            run_wave_threaded(wave, Duration::from_secs(5))
        })
    });
    group.finish();
}

fn bench_framing(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("frame_wave_replies");
    group.measurement_time(Duration::from_secs(2));
    // The wire cost of a 10k-endpoint round: every provider's wave reply
    // encoded to its frame and decoded back.
    let replies: Vec<ParticipantReply> = (0..10_000u32)
        .map(|p| ParticipantReply::ProviderWaveReply {
            wave: 1,
            provider: ProviderId::new(p),
            utilization: (p % 10) as f64 / 10.0,
            intentions: vec![(QueryId::new(p / 16), 0.5, None)],
        })
        .collect();
    group.bench_function(BenchmarkId::from_parameter(10_000), |b| {
        b.iter(|| {
            let mut decoded = 0usize;
            for reply in &replies {
                let frame = encode_participant_reply(reply);
                let (_, consumed) = decode_participant_reply(&frame).unwrap();
                decoded += consumed;
            }
            decoded
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reactor, bench_threaded, bench_framing);
criterion_main!(benches);
