//! Endpoint-count scaling of the *socket* mediation transport.
//!
//! The reactor bench (`reactor_scaling`) answers "what does an
//! in-process wave cost at tens of thousands of endpoints?"; this bench
//! answers the networked version: one mediation wave in which every
//! provider endpoint is the candidate of exactly one query, fanned out
//! as framed bytes over loopback TCP to a handful of participant-host
//! processes-worth of endpoints (one socket per host, not per
//! endpoint), replies decoded and reassembled on the way back.
//!
//! The 10k-endpoint round is the PR's acceptance measurement: its
//! best-of-N wall clock is recorded into `BENCH_allocation.json` as the
//! record's `transport` row (label from `BENCH_LABEL`, default
//! `"latest"`).
//!
//! Run with: `cargo bench -p sqlb-bench --bench transport_scaling`

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlb_bench::perf;
use sqlb_mediation::{ConsumerEndpoint, ProviderEndpoint};
use sqlb_transport::{ParticipantHost, ServerConfig, WaveServer};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

/// Candidates per query; 16 keeps candidate sets realistic while letting
/// a batch cover every provider endpoint exactly once.
const CANDIDATES_PER_QUERY: u32 = 16;
/// Consumers issuing the batch (queries are spread over them).
const CONSUMERS: u32 = 64;
/// Participant-host connections the endpoints are multiplexed over.
const HOSTS: u32 = 8;
/// The acceptance-scale endpoint count (providers; consumers ride along).
const ACCEPTANCE_PROVIDERS: u32 = 10_240;

struct FlatConsumer;

impl ConsumerEndpoint for FlatConsumer {
    fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, 0.25 + 0.5 / (1.0 + p.index() as f64)))
            .collect()
    }
}

struct FlatProvider(f64);

impl ProviderEndpoint for FlatProvider {
    fn intention(&mut self, _q: &Query) -> f64 {
        self.0
    }
    fn utilization(&mut self) -> f64 {
        self.0.abs() / 2.0
    }
}

/// One query per `CANDIDATES_PER_QUERY` providers: the batch that
/// touches every provider endpoint exactly once.
fn full_coverage_batch(providers: u32) -> Vec<(Query, Vec<ProviderId>)> {
    (0..providers / CANDIDATES_PER_QUERY)
        .map(|i| {
            let query = Query::single(
                QueryId::new(i),
                ConsumerId::new(i % CONSUMERS),
                QueryClass::Light,
                SimTime::ZERO,
            );
            let first = i * CANDIDATES_PER_QUERY;
            let candidates = (first..first + CANDIDATES_PER_QUERY)
                .map(ProviderId::new)
                .collect();
            (query, candidates)
        })
        .collect()
}

/// A server with `providers` + [`CONSUMERS`] endpoints multiplexed over
/// [`HOSTS`] participant-host threads, plus the join handles.
fn topology(
    providers: u32,
) -> (
    WaveServer,
    Vec<std::thread::JoinHandle<std::io::Result<sqlb_transport::HostReport>>>,
) {
    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_secs(30),
        request_bids: false,
    });
    let addr = server.listen_tcp("127.0.0.1:0").expect("loopback bind");
    let mut handles = Vec::new();
    for h in 0..HOSTS {
        handles.push(std::thread::spawn(move || {
            let mut host = ParticipantHost::connect_tcp(addr)?;
            for c in (h..CONSUMERS).step_by(HOSTS as usize) {
                host.add_consumer(ConsumerId::new(c), FlatConsumer);
            }
            for p in (h..providers).step_by(HOSTS as usize) {
                host.add_provider(
                    ProviderId::new(p),
                    FlatProvider(1.0 - (p % 7) as f64 * 0.25),
                );
            }
            host.announce()?;
            host.serve()
        }));
    }
    server
        .accept_hosts(HOSTS as usize, Duration::from_secs(30))
        .expect("hosts connect");
    assert_eq!(server.provider_count(), providers as usize);
    assert_eq!(server.consumer_count(), CONSUMERS as usize);
    (server, handles)
}

fn bench_socket_wave(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("socket_wave");
    group.measurement_time(Duration::from_secs(4));
    for &providers in &[1_024u32, ACCEPTANCE_PROVIDERS] {
        let (mut server, handles) = topology(providers);
        let batch = full_coverage_batch(providers);
        group.bench_function(BenchmarkId::from_parameter(providers), |b| {
            b.iter(|| {
                let infos = server.gather(&batch);
                assert_eq!(infos.len(), batch.len());
                infos
            })
        });
        // The acceptance check behind the bench: the wave multiplexes
        // the full endpoint population over HOSTS connections, answers
        // everything, and times nothing out.
        let round = server.last_round();
        assert_eq!(round.delivered, (CONSUMERS + providers) as usize);
        assert_eq!(round.timed_out, 0);
        assert_eq!(server.connection_count(), HOSTS as usize);
        // The same full-coverage round driven as overlapped sub-waves:
        // wave t+1 is encoded and sent while wave t's replies are still
        // being collected.
        let chunk = batch
            .len()
            .div_ceil(perf::TRANSPORT_PIPELINE_SUBWAVES)
            .max(1);
        group.bench_function(BenchmarkId::new("pipelined", providers), |b| {
            b.iter(|| {
                for sub in batch.chunks(chunk) {
                    while server.waves_in_flight() >= perf::TRANSPORT_PIPELINE_DEPTH {
                        server.collect_wave().expect("a wave is in flight");
                    }
                    server.begin_wave(sub);
                }
                while server.collect_wave().is_some() {}
                assert_eq!(server.last_round().timed_out, 0);
            })
        });
        server.shutdown();
        for handle in handles {
            assert!(handle.join().unwrap().expect("host io").clean_shutdown);
        }
    }
    group.finish();

    // The dedicated measurement of the acceptance-scale round for the
    // committed record (criterion's per-iteration mean is noisier for
    // multi-ms rounds): best-of-5 with its median as the dispersion
    // companion, plus the best-of-5 pipelined round — the same batch
    // split into sub-waves with several in flight. Shares the exact
    // topology and drive of the CI gate (`perf::measure_transport_round`)
    // so gate and record compare like with like.
    let measurement = perf::measure_transport_round(ACCEPTANCE_PROVIDERS, 5);
    println!(
        "socket_wave: {} endpoints over {} hosts: best round {:.3} ms (median {:.3} ms), \
         pipelined {:.3} ms",
        measurement.endpoints,
        measurement.hosts,
        measurement.round_ms,
        measurement.median_ms.unwrap_or(f64::NAN),
        measurement.pipelined_ms.unwrap_or(f64::NAN),
    );

    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "latest".to_string());
    let path = perf::trajectory_path();
    let existing = std::fs::read_to_string(path)
        .map(|content| perf::parse_trajectory(&content))
        .unwrap_or_default();
    let records = perf::upsert_transport(existing, &label, measurement);
    if let Err(e) = std::fs::write(path, perf::render_trajectory(&records)) {
        eprintln!("warning: could not write BENCH_allocation.json: {e}");
    }
}

criterion_group!(benches, bench_socket_wave);
criterion_main!(benches);
