//! The exhaustive two-chunk split sweep.
//!
//! The DFS scenarios explore split nondeterminism at a few
//! representative chunk sizes; this module covers the orthogonal axis
//! *completely*: for every frame shape the wave path produces, and for
//! **every** possible two-chunk split of its encoding, a fresh
//! [`FrameAssembler`] must reassemble exactly the message that was
//! encoded — no error, no spurious frame, no partial-frame leak. The
//! sweep also re-splits a concatenated multi-frame burst at every byte
//! boundary, which is the shape a real TCP read actually delivers.

use sqlb_mediation::{
    decode_participant_reply, encode_mediator_message, encode_participant_reply, FrameAssembler,
    MediatorMessage, ParticipantReply,
};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

/// What the sweep covered.
#[derive(Debug, Clone, Default)]
pub struct SplitReport {
    /// Distinct frames swept.
    pub frames: usize,
    /// Two-chunk split points exercised (every interior byte boundary
    /// of every frame, plus every boundary of the mixed burst).
    pub splits: usize,
    /// First inconsistency observed, if any.
    pub failure: Option<String>,
}

impl SplitReport {
    /// Whether every split reassembled consistently.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

fn sample_query(id: u32) -> Query {
    Query::single(
        QueryId::new(id),
        ConsumerId::new(3),
        QueryClass::Heavy,
        SimTime::from_secs(1.5),
    )
}

/// Every mediator-message shape the wave path sends.
fn mediator_samples() -> Vec<MediatorMessage> {
    vec![
        MediatorMessage::ConsumerWaveRequest {
            wave: 9,
            consumer: ConsumerId::new(3),
            requests: vec![(
                sample_query(41),
                vec![ProviderId::new(1), ProviderId::new(2)],
            )],
        },
        MediatorMessage::ProviderWaveRequest {
            wave: 9,
            provider: ProviderId::new(2),
            queries: vec![sample_query(41), sample_query(42)],
            request_bids: true,
        },
        MediatorMessage::WaveEnd { wave: 9 },
        MediatorMessage::AllocationNotice {
            query: QueryId::new(41),
            provider: ProviderId::new(2),
            selected: true,
        },
        MediatorMessage::Shutdown,
    ]
}

/// Every participant-reply shape the wave path sends.
fn reply_samples() -> Vec<ParticipantReply> {
    vec![
        ParticipantReply::ConsumerWaveReply {
            wave: 9,
            consumer: ConsumerId::new(3),
            intentions: vec![(
                QueryId::new(41),
                vec![(ProviderId::new(1), 0.25), (ProviderId::new(2), 0.75)],
            )],
        },
        ParticipantReply::ProviderWaveReply {
            wave: 9,
            provider: ProviderId::new(2),
            utilization: 0.5,
            intentions: vec![(QueryId::new(41), 0.9, None)],
        },
        ParticipantReply::Hello {
            consumers: vec![ConsumerId::new(3)],
            providers: vec![ProviderId::new(1), ProviderId::new(2)],
        },
        ParticipantReply::Goodbye,
    ]
}

/// Feeds `bytes` as two chunks split at `at` and pops every complete
/// frame as owned byte vectors (the assembler's zero-copy slices are
/// copied out so the next feed can proceed).
fn reassemble_split(bytes: &[u8], at: usize) -> Result<Vec<Vec<u8>>, String> {
    let mut assembler = FrameAssembler::new();
    let mut frames = Vec::new();
    for chunk in [&bytes[..at], &bytes[at..]] {
        assembler.extend(chunk);
        loop {
            match assembler.next_frame() {
                Err(e) => return Err(format!("split at {at}: {e}")),
                Ok(None) => break,
                Ok(Some(frame)) => frames.push(frame.to_vec()),
            }
        }
    }
    if assembler.pending_bytes() != 0 {
        return Err(format!(
            "split at {at}: {} bytes left unconsumed",
            assembler.pending_bytes()
        ));
    }
    Ok(frames)
}

/// Sweeps every two-chunk split of `bytes` (one encoded burst) and
/// checks the reassembled frame sequence equals `whole`. Returns the
/// number of split points on success.
fn sweep_burst(bytes: &[u8], whole: &[Vec<u8>]) -> Result<usize, String> {
    for at in 0..=bytes.len() {
        let frames = reassemble_split(bytes, at)?;
        if frames != whole {
            return Err(format!(
                "split at {at}: reassembled {} frames, expected {}",
                frames.len(),
                whole.len()
            ));
        }
    }
    Ok(bytes.len() + 1)
}

/// Runs the full sweep: every frame shape alone, then the concatenated
/// mixed burst, each at every two-chunk split point. Frames are also
/// decode-checked against their original message.
pub fn sweep_two_chunk_splits() -> SplitReport {
    let mut report = SplitReport::default();
    let mut burst = Vec::new();
    let mut burst_frames = Vec::new();

    let mut encoded: Vec<Vec<u8>> = Vec::new();
    for message in mediator_samples() {
        encoded.push(encode_mediator_message(&message));
    }
    for reply in reply_samples() {
        let bytes = encode_participant_reply(&reply);
        // The reply must survive its own round-trip before splitting.
        match decode_participant_reply(&bytes) {
            Ok((decoded, _)) if decoded == reply => {}
            Ok(_) => {
                report.failure = Some(format!("reply {reply:?} decoded to a different value"));
                return report;
            }
            Err(e) => {
                report.failure = Some(format!("reply {reply:?} failed to decode: {e}"));
                return report;
            }
        }
        encoded.push(bytes);
    }

    for bytes in &encoded {
        report.frames += 1;
        match sweep_burst(bytes, std::slice::from_ref(bytes)) {
            Ok(splits) => report.splits += splits,
            Err(failure) => {
                report.failure = Some(failure);
                return report;
            }
        }
        burst.extend_from_slice(bytes);
        burst_frames.push(bytes.clone());
    }

    match sweep_burst(&burst, &burst_frames) {
        Ok(splits) => report.splits += splits,
        Err(failure) => report.failure = Some(failure),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_two_chunk_split_reassembles() {
        let report = sweep_two_chunk_splits();
        assert!(report.ok(), "{:?}", report.failure);
        assert_eq!(report.frames, 9);
        // Every frame alone contributes len+1 split points, the mixed
        // burst contributes its own full sweep on top.
        assert!(report.splits > 500, "covered {} splits", report.splits);
    }
}
