//! The systematic explorer: clone-based depth-first enumeration of
//! every nondeterministic choice a [`Model`] exposes.
//!
//! The shape follows the classic stateless-model-checking loop: a state
//! is an opaque cloneable value, nondeterminism is an indexed menu of
//! enabled actions, and a *schedule* — the sequence of action indices
//! picked at each step — identifies one execution completely. DFS over
//! the choice tree therefore enumerates every interleaving, and any
//! failing trace is reported as a [`Schedule`] string that
//! [`replay`] re-executes deterministically, step-described, for
//! debugging and for regression tests.
//!
//! The explorer itself knows nothing about waves or frames; the wave
//! protocol world lives in [`crate::model`]. Exploration is bounded by
//! a [`Budget`] so CI can run a fixed slice of the space; a run that
//! hits the budget is reported as [`Report::truncated`] rather than
//! silently passed off as exhaustive.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::str::FromStr;

/// A safety property observed to fail on one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short name of the invariant that failed.
    pub invariant: &'static str,
    /// What exactly was observed.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

/// The sequence of action indices that reproduces one execution.
///
/// Displays as a dot-separated index string (`"0.2.1.4"`) and parses
/// back from it, so a failing trace can be pasted into
/// `sqlb_check --replay`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<usize>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, action) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{action}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.trim().is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        s.trim()
            .split('.')
            .map(|part| {
                part.parse::<usize>()
                    .map_err(|_| format!("bad schedule element {part:?}"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

/// A checkable protocol world: cloneable state plus an indexed menu of
/// enabled nondeterministic actions.
///
/// The action menu must be a deterministic function of the state:
/// `enabled`, `describe` and `step` all index the *same* menu, and the
/// explorer relies on a cloned state reproducing it exactly — that is
/// what makes a [`Schedule`] replayable.
pub trait Model: Clone {
    /// Number of actions enabled in this state; `0` ends the trace.
    fn enabled(&self) -> usize;

    /// Human-readable label of enabled action `action` (used in replay
    /// transcripts and the explorer's coverage accounting).
    fn describe(&self, action: usize) -> String;

    /// Applies enabled action `action`, checking step invariants.
    fn step(&mut self, action: usize) -> Result<(), Violation>;

    /// Outstanding protocol obligations. A state with no enabled action
    /// but non-zero obligations is a **deadlock** and fails the trace —
    /// this is how the write-timeout/drain liveness argument becomes a
    /// checked property.
    fn obligations(&self) -> usize;

    /// Final-state invariants, checked on every completed trace.
    fn finish(&self) -> Result<(), Violation>;

    /// 64-bit digest of the state, for distinct-state counting.
    fn state_hash(&self) -> u64;
}

/// Bounds one exploration.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Stop after this many completed executions.
    pub max_executions: usize,
    /// Stop after this many transitions (guards against pathologically
    /// deep traces before the execution bound is reached).
    pub max_transitions: usize,
}

impl Budget {
    /// An effectively unbounded budget (full exploration).
    pub const UNBOUNDED: Budget = Budget {
        max_executions: usize::MAX,
        max_transitions: usize::MAX,
    };

    /// A budget capped at `executions` completed traces.
    pub fn executions(executions: usize) -> Budget {
        Budget {
            max_executions: executions,
            max_transitions: usize::MAX,
        }
    }
}

/// A failing trace: the violation plus the schedule that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The invariant that failed.
    pub violation: Violation,
    /// The replayable choice sequence leading to the failure.
    pub schedule: Schedule,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [replay: {}]", self.violation, self.schedule)
    }
}

/// What one exploration covered.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Completed executions (maximal traces).
    pub executions: usize,
    /// Transitions taken across all traces.
    pub transitions: usize,
    /// Distinct state hashes visited.
    pub distinct_states: usize,
    /// Depth of the deepest completed trace.
    pub max_depth: usize,
    /// Whether the budget cut the exploration short.
    pub truncated: bool,
    /// Times each action label was taken, across the whole exploration.
    /// Labels carry enough state context (e.g. bytes already delivered
    /// at a crash) that distinct labels are distinct *points* in the
    /// protocol, which is how crash-point coverage is counted.
    pub coverage: BTreeMap<String, usize>,
    /// The first failing trace, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Number of distinct action labels matching `prefix` that were
    /// exercised at least once.
    pub fn distinct_actions_with_prefix(&self, prefix: &str) -> usize {
        self.coverage
            .keys()
            .filter(|label| label.starts_with(prefix))
            .count()
    }
}

/// Depth-first enumeration of every schedule of `initial`, bounded by
/// `budget`. Stops at the first invariant violation (including
/// deadlock: no enabled action while obligations remain) and reports
/// its replayable schedule.
pub fn explore<M: Model>(initial: &M, budget: &Budget) -> Report {
    let mut report = Report::default();
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(initial.state_hash());
    // Each frame is (state, next action index to try).
    let mut stack: Vec<(M, usize)> = vec![(initial.clone(), 0)];
    // path[i] is the action taken to reach stack[i + 1].
    let mut path: Vec<usize> = Vec::new();

    while let Some(frame) = stack.last_mut() {
        let n = frame.0.enabled();
        if n == 0 {
            // A maximal trace.
            report.executions += 1;
            report.max_depth = report.max_depth.max(path.len());
            let fail = if frame.0.obligations() > 0 {
                Some(Violation {
                    invariant: "no-deadlock",
                    detail: format!(
                        "no action enabled with {} obligations outstanding",
                        frame.0.obligations()
                    ),
                })
            } else {
                frame.0.finish().err()
            };
            if let Some(violation) = fail {
                report.failure = Some(Failure {
                    violation,
                    schedule: Schedule(path.clone()),
                });
                break;
            }
            if report.executions >= budget.max_executions {
                report.truncated = true;
                break;
            }
            stack.pop();
            path.pop();
            continue;
        }
        if frame.1 >= n {
            // All choices under this state explored.
            stack.pop();
            path.pop();
            continue;
        }
        let action = frame.1;
        frame.1 += 1;
        let label = frame.0.describe(action);
        let mut child = frame.0.clone();
        path.push(action);
        report.transitions += 1;
        *report.coverage.entry(label).or_insert(0) += 1;
        if let Err(violation) = child.step(action) {
            report.failure = Some(Failure {
                violation,
                schedule: Schedule(path.clone()),
            });
            break;
        }
        if report.transitions >= budget.max_transitions {
            report.truncated = true;
            break;
        }
        seen.insert(child.state_hash());
        stack.push((child, 0));
    }

    report.distinct_states = seen.len();
    report
}

/// Re-executes one schedule against a fresh copy of `initial`,
/// returning the step-by-step transcript and the trace's verdict. A
/// schedule element out of range for its state (a schedule from a
/// different scenario or a stale build) is itself reported as an error
/// rather than a panic.
pub fn replay<M: Model>(initial: &M, schedule: &Schedule) -> (Vec<String>, Result<(), Violation>) {
    let mut state = initial.clone();
    let mut transcript = Vec::with_capacity(schedule.0.len());
    for (i, &action) in schedule.0.iter().enumerate() {
        let n = state.enabled();
        if action >= n {
            return (
                transcript,
                Err(Violation {
                    invariant: "replay",
                    detail: format!("step {i}: action index {action} out of range ({n} enabled)"),
                }),
            );
        }
        transcript.push(format!("{i:4}  {}", state.describe(action)));
        if let Err(violation) = state.step(action) {
            return (transcript, Err(violation));
        }
    }
    if state.enabled() == 0 {
        if state.obligations() > 0 {
            return (
                transcript,
                Err(Violation {
                    invariant: "no-deadlock",
                    detail: format!(
                        "{} obligations outstanding at end of trace",
                        state.obligations()
                    ),
                }),
            );
        }
        if let Err(violation) = state.finish() {
            return (transcript, Err(violation));
        }
    }
    (transcript, Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: `k` tokens, each consumed by one action; finishing
    /// with a token left (never happens) would deadlock. The choice
    /// tree is the set of permutations of the tokens.
    #[derive(Clone)]
    struct Tokens {
        left: Vec<u8>,
    }

    impl Model for Tokens {
        fn enabled(&self) -> usize {
            self.left.len()
        }
        fn describe(&self, action: usize) -> String {
            format!("take({})", self.left[action])
        }
        fn step(&mut self, action: usize) -> Result<(), Violation> {
            self.left.remove(action);
            Ok(())
        }
        fn obligations(&self) -> usize {
            self.left.len()
        }
        fn finish(&self) -> Result<(), Violation> {
            Ok(())
        }
        fn state_hash(&self) -> u64 {
            self.left
                .iter()
                .fold(0x9e37u64, |h, &t| h.wrapping_mul(31).wrapping_add(t as u64))
        }
    }

    #[test]
    fn explores_all_permutations() {
        let report = explore(
            &Tokens {
                left: vec![1, 2, 3, 4],
            },
            &Budget::UNBOUNDED,
        );
        assert_eq!(report.executions, 24, "4! maximal traces");
        assert!(!report.truncated);
        assert!(report.failure.is_none());
        assert_eq!(report.max_depth, 4);
        // 4 distinct take() labels, each seen in many traces.
        assert_eq!(report.distinct_actions_with_prefix("take("), 4);
    }

    #[test]
    fn budget_truncates_and_is_reported() {
        let report = explore(
            &Tokens {
                left: vec![1, 2, 3, 4, 5, 6],
            },
            &Budget::executions(10),
        );
        assert_eq!(report.executions, 10);
        assert!(report.truncated);
    }

    #[test]
    fn schedules_round_trip_and_replay() {
        let schedule: Schedule = "2.0.1.0".parse().unwrap();
        assert_eq!(schedule.to_string(), "2.0.1.0");
        let initial = Tokens {
            left: vec![7, 8, 9, 10],
        };
        let (transcript, verdict) = replay(&initial, &schedule);
        assert!(verdict.is_ok());
        assert_eq!(transcript.len(), 4);
        assert!(transcript[0].contains("take(9)"));
        // Out-of-range schedules error instead of panicking.
        let bad: Schedule = "9".parse().unwrap();
        let (_, verdict) = replay(&initial, &bad);
        assert!(verdict.is_err());
    }
}
