//! # sqlb-check
//!
//! A home-grown systematic-exploration harness for the SQLB wave
//! protocol: the model checker that runs the **production** protocol
//! state machines — [`sqlb_transport::WaveLedger`] and
//! [`sqlb_transport::route_reply_frame`] (the mediator's
//! wave-collection seam), [`sqlb_transport::WaveRequestBuffer`] (the
//! participant host's buffering discipline) and
//! [`sqlb_mediation::FrameAssembler`] with the wave codec — under a
//! deterministic virtual scheduler that enumerates *every*
//! interleaving of a miniature deployment.
//!
//! The harness has three parts:
//!
//! * [`mod@explore`] — a generic clone-based DFS over a [`explore::Model`]:
//!   nondeterminism is an indexed action menu, a schedule (the index
//!   sequence) identifies an execution, failing traces print a
//!   replayable schedule string, and a [`explore::Budget`] bounds CI
//!   runs honestly (truncation is reported, never silent);
//! * [`model`] — the wave-protocol world: one mediator, two hosts,
//!   three endpoints, pipeline depth 2, with bounded-capacity byte
//!   wires, chunked delivery, deadline racing, host crashes and
//!   adversarial (duplicate / foreign-slot / stale-wave) replies as
//!   explicit actions, and the protocol invariants checked on every
//!   step of every trace;
//! * [`splits`] — the exhaustive two-chunk split sweep: every frame
//!   shape of the wave path, split at every byte boundary, must
//!   reassemble to exactly the encoded message.
//!
//! The `sqlb_check` binary drives all of it:
//!
//! ```text
//! sqlb_check                         # bounded sweep of every scenario
//! sqlb_check --scenario mini         # one scenario
//! sqlb_check --budget 200000         # explicit execution budget
//! SQLB_CHECK_FULL=1 sqlb_check      # full (unbounded) exploration
//! sqlb_check --replay mini:0.2.1.4   # re-run one schedule, verbose
//! sqlb_check --inject-miscount       # prove the harness can fail
//! ```

#![deny(missing_docs)]

pub mod explore;
pub mod model;
pub mod splits;

pub use explore::{explore, replay, Budget, Failure, Model, Report, Schedule, Violation};
pub use model::{Scenario, WaveOutcome, WaveWorld};
pub use splits::{sweep_two_chunk_splits, SplitReport};
