//! The `sqlb_check` binary: run the wave-protocol model checker.
//!
//! With no arguments, explores every scenario under the default CI
//! budget and runs the exhaustive two-chunk split sweep; exits
//! non-zero if any invariant fails. See the crate docs for flags.

use std::process::ExitCode;

use sqlb_check::{explore, replay, Budget, Scenario, Schedule, WaveWorld};

/// Default per-scenario execution budget for bounded (CI) runs.
const DEFAULT_BUDGET: usize = 60_000;

struct Options {
    scenario: Option<String>,
    budget: Option<usize>,
    replay: Option<String>,
    inject_miscount: bool,
    splits_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        scenario: None,
        budget: None,
        replay: None,
        inject_miscount: false,
        splits_only: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                options.scenario = Some(args.next().ok_or("--scenario needs a name")?);
            }
            "--budget" => {
                let value = args.next().ok_or("--budget needs a number")?;
                options.budget = Some(value.parse().map_err(|_| format!("bad budget {value:?}"))?);
            }
            "--replay" => {
                options.replay = Some(args.next().ok_or("--replay needs scenario:schedule")?);
            }
            "--inject-miscount" => options.inject_miscount = true,
            "--splits-only" => options.splits_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: sqlb_check [--scenario NAME] [--budget N] \
                     [--replay NAME:SCHEDULE] [--inject-miscount] [--splits-only]\n\
                     scenarios: {}\n\
                     SQLB_CHECK_FULL=1 removes the execution budget",
                    Scenario::all()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn run_replay(spec: &str) -> Result<(), String> {
    let (name, schedule) = spec
        .split_once(':')
        .ok_or("--replay expects scenario:schedule")?;
    let scenario = Scenario::by_name(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
    let schedule: Schedule = schedule.parse()?;
    let world = WaveWorld::new(scenario);
    let (transcript, verdict) = replay(&world, &schedule);
    for line in &transcript {
        println!("{line}");
    }
    match verdict {
        Ok(()) => {
            println!("replay of {spec}: all invariants hold");
            Ok(())
        }
        Err(violation) => Err(format!("replay of {spec}: {violation}")),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(error) => {
            eprintln!("sqlb_check: {error}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(spec) = &options.replay {
        return match run_replay(spec) {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("sqlb_check: {error}");
                ExitCode::FAILURE
            }
        };
    }

    if options.inject_miscount {
        eprintln!("sqlb_check: test-only sign-flipped ledger credit INJECTED");
        sqlb_transport::ledger::inject_miscount_for_tests(true);
    }

    let full = std::env::var("SQLB_CHECK_FULL").is_ok_and(|v| v == "1");

    let mut failed = false;

    if !options.splits_only {
        let scenarios = match &options.scenario {
            Some(name) => match Scenario::by_name(name) {
                Some(scenario) => vec![scenario],
                None => {
                    eprintln!("sqlb_check: unknown scenario {name:?}");
                    return ExitCode::FAILURE;
                }
            },
            None => Scenario::all(),
        };
        for scenario in scenarios {
            let name = scenario.name;
            // Exhaustive-tier scenarios close out in seconds and run
            // unbounded even in the default CI sweep; an explicit
            // --budget overrides that for quick smoke runs.
            let budget = if full || (scenario.exhaustive && options.budget.is_none()) {
                Budget::UNBOUNDED
            } else {
                Budget::executions(options.budget.unwrap_or(DEFAULT_BUDGET))
            };
            let world = WaveWorld::new(scenario);
            let report = explore(&world, &budget);
            let coverage = format!(
                "crash points h0/h1 {}/{}",
                report.distinct_actions_with_prefix("crash(h0"),
                report.distinct_actions_with_prefix("crash(h1"),
            );
            println!(
                "{name:10} {:>9} executions  {:>9} transitions  {:>8} states  depth {:>3}  {}{}",
                report.executions,
                report.transitions,
                report.distinct_states,
                report.max_depth,
                coverage,
                if report.truncated {
                    "  [budget hit: partial]"
                } else {
                    "  [exhaustive]"
                },
            );
            if let Some(failure) = &report.failure {
                failed = true;
                println!("  FAILURE: {}", failure.violation);
                println!(
                    "  replay with: sqlb_check --replay {name}:{}",
                    failure.schedule
                );
            }
        }
    }

    let splits = sqlb_check::sweep_two_chunk_splits();
    println!(
        "splits     {:>9} frame shapes {:>9} two-chunk splits  {}",
        splits.frames,
        splits.splits,
        if splits.ok() {
            "[all consistent]"
        } else {
            "[FAILED]"
        }
    );
    if let Some(failure) = &splits.failure {
        failed = true;
        println!("  FAILURE: {failure}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
