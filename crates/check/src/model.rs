//! The wave-protocol world the explorer enumerates.
//!
//! [`WaveWorld`] wires the *production* protocol state machines — the
//! mediator-side [`WaveLedger`]/[`route_reply_frame`] seam, the
//! participant-side [`WaveRequestBuffer`], and the
//! [`FrameAssembler`]/codec from `sqlb-mediation` — into a miniature
//! deployment (one mediator, two hosts, three endpoints, pipeline
//! depth 2) whose only scheduler is the explorer: every message
//! delivery, chunk split, deadline firing, host crash and adversarial
//! injection is an explicit [`Model`] action. Nothing protocol-level is
//! re-implemented here; the model supplies sockets-and-clock
//! *plumbing* (byte wires with bounded capacity, a virtual deadline)
//! around the exact code the real [`sqlb_transport::WaveServer`] runs.
//!
//! Checked invariants:
//!
//! * **termination** — every planned wave ends as either complete or
//!   timeout-to-indifference ([`WaveWorld::finish`]);
//! * **credit accounting** — on every step, each in-flight ledger's
//!   stored replies equal `delivered - pending` (over- or
//!   under-crediting, including the test-only sign-flipped credit,
//!   trips this immediately);
//! * **cross-wave correlation** — every stored reply value matches the
//!   deterministic per-wave oracle formula, so a wave-*t* reply
//!   credited to wave *t+1* is caught by value, not just by count;
//! * **no deadlock** — the explorer fails any state with obligations
//!   outstanding and no enabled action (the write-stall/drain
//!   liveness argument, made checkable by bounding wire capacity);
//! * **frame consistency** — assemblers and the codec never error on
//!   any split of the honestly-produced byte streams.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};

use sqlb_mediation::{
    encode_participant_reply_into, FrameAssembler, MediatorMessage, ParticipantReply,
};
use sqlb_transport::{route_reply_frame, Applied, WaveLedger, WaveRequestBuffer};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

use crate::explore::{Model, Violation};

/// The consumer endpoint (homed on host 0).
const CONSUMER: u32 = 0;
/// The provider homed on host 0.
const PROVIDER_H0: u32 = 1;
/// The provider homed on host 1.
const PROVIDER_H1: u32 = 2;
/// Number of hosts (= connection slots) in the miniature deployment.
const HOSTS: usize = 2;

/// One bounded configuration of the miniature deployment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (prefixes replayable schedules).
    pub name: &'static str,
    /// Waves the mediator runs.
    pub waves: u64,
    /// Pipeline depth: waves in flight at once.
    pub depth: usize,
    /// Crashes each host may suffer per trace (0 disables crash
    /// nondeterminism).
    pub crashes_per_host: usize,
    /// Enables the adversarial injections (duplicate, foreign-slot and
    /// stale-wave replies).
    pub byzantine: bool,
    /// When set, the host-1 provider never answers: every wave must
    /// terminate through the deadline.
    pub silent_provider: bool,
    /// Early deadline firings allowed per trace: each lets the front
    /// wave's deadline race ahead of replies still in transit. The
    /// deadline additionally *always* fires for a wave that can no
    /// longer complete (pending requests charged to a dead connection),
    /// so exhausting this budget can never wedge a trace. Bounding the
    /// budget keeps the exhaustive tiers tractable — unbounded early
    /// deadlines compound exponentially.
    pub timeouts: usize,
    /// Bytes a wire holds in flight per direction; writers stall when
    /// it is full, which is what makes deadlock-freedom a real
    /// question.
    pub wire_capacity: usize,
    /// Receive chunk choices, in bytes (`0` = everything available):
    /// each distinct effective size is one nondeterministic delivery
    /// action, so listing e.g. `&[0, 7]` explores frames arriving both
    /// whole and split at awkward boundaries.
    pub splits: &'static [usize],
    /// Whether the default CI run explores this scenario to exhaustion
    /// (its full space closes out in seconds) instead of under the
    /// bounded per-scenario budget.
    pub exhaustive: bool,
}

impl Scenario {
    /// The exhaustively-explored core configuration: three waves under
    /// depth-2 pipelining, whole-chunk delivery, no faults — the full
    /// interleaving space of fan-out, replies, completion and deadline
    /// racing (over half a million distinct executions, closed out in
    /// seconds in release builds).
    pub fn mini() -> Scenario {
        Scenario {
            name: "mini",
            waves: 3,
            depth: 2,
            crashes_per_host: 0,
            byzantine: false,
            silent_provider: false,
            wire_capacity: 4096,
            splits: &[0],
            timeouts: 1,
            exhaustive: true,
        }
    }

    /// One wave delivered under split choices, so partial frames sit in
    /// both directions' assemblers across interleavings.
    pub fn chunky() -> Scenario {
        Scenario {
            name: "chunky",
            waves: 1,
            depth: 1,
            crashes_per_host: 0,
            byzantine: false,
            silent_provider: false,
            wire_capacity: 4096,
            splits: &[0, 7],
            timeouts: 1,
            exhaustive: false,
        }
    }

    /// Each host may crash once, at any send/receive point.
    pub fn crashy() -> Scenario {
        Scenario {
            name: "crashy",
            waves: 2,
            depth: 2,
            crashes_per_host: 1,
            byzantine: false,
            silent_provider: false,
            wire_capacity: 4096,
            splits: &[0],
            timeouts: 1,
            exhaustive: true,
        }
    }

    /// Hosts may send duplicate, foreign-slot and stale-wave replies.
    pub fn byzantine() -> Scenario {
        Scenario {
            name: "byzantine",
            waves: 2,
            depth: 2,
            crashes_per_host: 0,
            byzantine: true,
            silent_provider: false,
            wire_capacity: 4096,
            splits: &[0],
            timeouts: 1,
            exhaustive: false,
        }
    }

    /// Tiny wire capacity: the fan-out of a wave cannot be written in
    /// one burst, so progress depends on the server draining replies
    /// while its own writes are stalled — the drain-path liveness
    /// scenario.
    pub fn stall() -> Scenario {
        Scenario {
            name: "stall",
            waves: 2,
            depth: 2,
            crashes_per_host: 0,
            byzantine: false,
            silent_provider: false,
            wire_capacity: 24,
            splits: &[0],
            timeouts: 1,
            exhaustive: false,
        }
    }

    /// The host-1 provider never answers: timeout-to-indifference is
    /// the only way a wave terminates.
    pub fn silent() -> Scenario {
        Scenario {
            name: "silent",
            waves: 2,
            depth: 2,
            crashes_per_host: 0,
            byzantine: false,
            silent_provider: true,
            wire_capacity: 4096,
            splits: &[0],
            timeouts: 1,
            exhaustive: true,
        }
    }

    /// Every named scenario, in documentation order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::mini(),
            Scenario::chunky(),
            Scenario::crashy(),
            Scenario::byzantine(),
            Scenario::stall(),
            Scenario::silent(),
        ]
    }

    /// Looks a scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }
}

/// How one wave ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveOutcome {
    /// The wave's id.
    pub wave: u64,
    /// Endpoint requests the plan delivered.
    pub delivered: usize,
    /// Replies stored when the wave was collected.
    pub answered: usize,
    /// `true` when every request was answered before the deadline.
    pub complete: bool,
}

/// One host's connection: both wire directions, the host process, and
/// the server's receive state for the slot.
#[derive(Debug, Clone)]
struct SlotState {
    /// Server-side: the connection is usable.
    live: bool,
    /// The host process is running.
    host_alive: bool,
    /// Request bytes queued at the server, not yet on the wire.
    send_queue: Vec<u8>,
    /// Request bytes in flight towards the host.
    down_wire: Vec<u8>,
    /// The host's stream reassembler (production code).
    host_assembler: FrameAssembler,
    /// The host's wave-request buffer (production code).
    buffer: WaveRequestBuffer,
    /// Reply bytes computed by the host, not yet on the wire.
    reply_queue: Vec<u8>,
    /// Reply bytes in flight towards the server.
    up_wire: Vec<u8>,
    /// The server's per-slot reassembler (production code).
    server_assembler: FrameAssembler,
    /// The last reply frame this host produced (duplicate injection).
    last_reply_frame: Vec<u8>,
    /// Crashes this host may still suffer.
    crashes_left: usize,
    /// Bytes the host has taken off its wire (labels crash points).
    fed_down: usize,
    /// Bytes the server has taken off this slot's wire.
    fed_up: usize,
}

impl SlotState {
    fn new(crashes: usize) -> SlotState {
        SlotState {
            live: true,
            host_alive: true,
            send_queue: Vec::new(),
            down_wire: Vec::new(),
            host_assembler: FrameAssembler::new(),
            buffer: WaveRequestBuffer::new(),
            reply_queue: Vec::new(),
            up_wire: Vec::new(),
            server_assembler: FrameAssembler::new(),
            last_reply_frame: Vec::new(),
            crashes_left: crashes,
            fed_down: 0,
            fed_up: 0,
        }
    }

    /// Bytes anywhere on this connection, in either direction.
    fn bytes_outstanding(&self) -> usize {
        self.send_queue.len() + self.down_wire.len() + self.reply_queue.len() + self.up_wire.len()
    }

    /// Moves queued request bytes onto the wire, up to its free
    /// capacity. Called whenever bytes are enqueued or wire space
    /// frees up — the model's analogue of the server's write loop
    /// (writes proceed exactly as far as the pipe allows).
    fn flush_down(&mut self, capacity: usize) {
        let free = capacity.saturating_sub(self.down_wire.len());
        let n = free.min(self.send_queue.len());
        self.down_wire.extend(self.send_queue.drain(..n));
    }

    /// Moves computed reply bytes onto the upstream wire, up to its
    /// free capacity — the host's write loop.
    fn flush_up(&mut self, capacity: usize) {
        let free = capacity.saturating_sub(self.up_wire.len());
        let n = free.min(self.reply_queue.len());
        self.up_wire.extend(self.reply_queue.drain(..n));
    }
}

/// One nondeterministic action of the world.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    /// The mediator plans and queues the next wave's fan-out.
    BeginWave,
    /// The mediator collects the (complete) front wave.
    FinishWave,
    /// The front wave's deadline fires; missing replies degrade to
    /// indifference.
    TimeoutWave,
    /// The host takes a chunk of `1` bytes off its wire and processes
    /// every complete message (answering at wave-end markers).
    DeliverDown(usize, usize),
    /// The server takes a chunk off slot `0`'s upstream wire and routes
    /// every complete reply frame through the shared ledger seam.
    DeliverUp(usize, usize),
    /// Host `0` crashes: both wire directions are lost and the server
    /// marks the slot dead.
    Crash(usize),
    /// Host `0` re-sends its last reply frame verbatim.
    InjectDup(usize),
    /// Host `0` fabricates a reply for an endpoint homed on the *other*
    /// host, for the front in-flight wave.
    InjectForeign(usize),
    /// Host `0` fabricates a reply for an already-collected wave.
    InjectStale(usize),
}

/// The model-checked world: the miniature deployment's entire state.
#[derive(Debug, Clone)]
pub struct WaveWorld {
    scenario: Scenario,
    /// Next wave id to plan (ids start at 1).
    next_wave: u64,
    /// Waves begun so far.
    waves_begun: u64,
    /// In-flight ledgers, oldest first — exactly the server's queue.
    in_flight: VecDeque<WaveLedger>,
    /// Terminated waves, in collection order.
    outcomes: Vec<WaveOutcome>,
    slots: Vec<SlotState>,
    /// Remaining early deadline firings (see [`Scenario::timeouts`]).
    timeouts_left: usize,
    /// Remaining adversarial injections (bounded per trace).
    dups_left: usize,
    foreigns_left: usize,
    stales_left: usize,
}

/// The oracle value consumer `CONSUMER` reports for `(wave, query,
/// provider)`: exactly representable, unique per triple, so a reply
/// credited to the wrong wave is caught by value.
fn consumer_oracle(wave: u64, query: QueryId, provider: ProviderId) -> f64 {
    (wave * 1_000_000 + query.raw() as u64 * 100 + provider.raw() as u64) as f64
}

/// The oracle intention a provider reports for `(wave, provider,
/// query)`.
fn provider_oracle(wave: u64, provider: ProviderId, query: QueryId) -> f64 {
    (wave * 1_000_000 + provider.raw() as u64 * 10_000 + query.raw() as u64) as f64
}

/// The oracle utilization a provider reports in `wave`.
fn utilization_oracle(wave: u64, provider: ProviderId) -> f64 {
    (wave * 100 + provider.raw() as u64) as f64 / 4.0
}

/// The single query of `wave`: issued by the consumer, candidates on
/// both hosts — so every wave involves every connection.
fn wave_requests(wave: u64) -> Vec<(Query, Vec<ProviderId>)> {
    let query = Query::single(
        QueryId::new(100 + wave as u32),
        ConsumerId::new(CONSUMER),
        QueryClass::Light,
        SimTime::ZERO,
    );
    vec![(
        query,
        vec![ProviderId::new(PROVIDER_H0), ProviderId::new(PROVIDER_H1)],
    )]
}

/// The static endpoint→slot routing of the miniature deployment.
fn homes() -> (BTreeMap<ConsumerId, usize>, BTreeMap<ProviderId, usize>) {
    let consumers = BTreeMap::from([(ConsumerId::new(CONSUMER), 0)]);
    let providers = BTreeMap::from([
        (ProviderId::new(PROVIDER_H0), 0),
        (ProviderId::new(PROVIDER_H1), 1),
    ]);
    (consumers, providers)
}

/// The provider homed on host `slot`.
fn own_provider(slot: usize) -> ProviderId {
    ProviderId::new(if slot == 0 { PROVIDER_H0 } else { PROVIDER_H1 })
}

impl WaveWorld {
    /// A fresh world for `scenario`.
    pub fn new(scenario: Scenario) -> WaveWorld {
        let crashes = scenario.crashes_per_host;
        let byz = scenario.byzantine;
        let timeouts = scenario.timeouts;
        WaveWorld {
            scenario,
            next_wave: 1,
            waves_begun: 0,
            in_flight: VecDeque::new(),
            outcomes: Vec::new(),
            slots: (0..HOSTS).map(|_| SlotState::new(crashes)).collect(),
            timeouts_left: timeouts,
            dups_left: usize::from(byz),
            foreigns_left: usize::from(byz),
            stales_left: usize::from(byz),
        }
    }

    /// Scenario this world runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Terminated waves so far (exposed for tests).
    pub fn outcomes(&self) -> &[WaveOutcome] {
        &self.outcomes
    }

    /// The deterministic action menu of the current state.
    fn actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.waves_begun < self.scenario.waves && self.in_flight.len() < self.scenario.depth {
            actions.push(Action::BeginWave);
        }
        if let Some(front) = self.in_flight.front() {
            if front.is_complete() {
                actions.push(Action::FinishWave);
            } else if self.timeouts_left > 0 || self.front_stuck() {
                actions.push(Action::TimeoutWave);
            }
        }
        for (s, slot) in self.slots.iter().enumerate() {
            if slot.host_alive && !slot.down_wire.is_empty() {
                for size in self.chunk_sizes(slot.down_wire.len()) {
                    actions.push(Action::DeliverDown(s, size));
                }
            }
            if slot.live && !slot.up_wire.is_empty() {
                for size in self.chunk_sizes(slot.up_wire.len()) {
                    actions.push(Action::DeliverUp(s, size));
                }
            }
            if slot.host_alive && slot.crashes_left > 0 {
                actions.push(Action::Crash(s));
            }
            if self.scenario.byzantine && slot.host_alive {
                if self.dups_left > 0 && !slot.last_reply_frame.is_empty() {
                    actions.push(Action::InjectDup(s));
                }
                if self.foreigns_left > 0 && !self.in_flight.is_empty() {
                    actions.push(Action::InjectForeign(s));
                }
                if self.stales_left > 0 && !self.outcomes.is_empty() {
                    actions.push(Action::InjectStale(s));
                }
            }
        }
        actions
    }

    /// Whether the front wave can no longer complete on its own: some
    /// of its requests are charged to a connection that is gone, or to
    /// an endpoint configured to stay silent, so only the deadline can
    /// terminate it. The deadline action stays enabled for stuck waves
    /// even after the early-timeout budget is spent.
    fn front_stuck(&self) -> bool {
        let Some(front) = self.in_flight.front() else {
            return false;
        };
        (0..HOSTS).any(|s| front.pending_on(s) > 0 && !self.slots[s].live)
            || (self.scenario.silent_provider && front.pending_on(1) > 0)
    }

    /// The distinct effective receive chunk sizes for a wire holding
    /// `available` bytes, per the scenario's split choices.
    fn chunk_sizes(&self, available: usize) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .scenario
            .splits
            .iter()
            .map(|&choice| {
                if choice == 0 {
                    available
                } else {
                    choice.min(available)
                }
            })
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }

    /// Asserts the shared ledger seam's accounting identity on every
    /// in-flight wave: stored replies must equal delivered minus
    /// pending. The test-only sign-flipped credit breaks this identity
    /// on its first application.
    fn check_ledger_accounting(&self) -> Result<(), Violation> {
        for ledger in &self.in_flight {
            let delivered = ledger.delivered() as i64;
            let pending = ledger.pending_total() as i64;
            let stored = ledger.stored_replies() as i64;
            if delivered - pending != stored {
                return Err(Violation {
                    invariant: "credit-accounting",
                    detail: format!(
                        "wave {}: delivered {delivered} - pending {pending} != stored {stored}",
                        ledger.wave()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Verifies every stored reply of a terminated wave against the
    /// per-wave oracle formulas: a reply computed for wave *t* but
    /// credited to wave *t'* ≠ *t* carries wave-*t* values and fails
    /// here.
    fn check_wave_values(wave: u64, ledger: WaveLedger) -> Result<(), Violation> {
        let replies = ledger.into_replies();
        for (consumer, answer) in &replies.consumers {
            let Some(batch) = answer else { continue };
            for (query, per_provider) in batch {
                for &(provider, value) in per_provider {
                    let expected = consumer_oracle(wave, *query, provider);
                    if value != expected {
                        return Err(Violation {
                            invariant: "cross-wave-correlation",
                            detail: format!(
                                "wave {wave}: consumer {consumer} reported {value} for \
                                 ({query}, {provider}), oracle says {expected}"
                            ),
                        });
                    }
                }
            }
        }
        for (provider, answer) in &replies.providers {
            let Some(batch) = answer else { continue };
            for entry in batch {
                let expected = provider_oracle(wave, *provider, entry.query);
                let expected_util = utilization_oracle(wave, *provider);
                if entry.intention != expected || entry.utilization != expected_util {
                    return Err(Violation {
                        invariant: "cross-wave-correlation",
                        detail: format!(
                            "wave {wave}: provider {provider} reported ({}, {}) for {}, \
                             oracle says ({expected}, {expected_util})",
                            entry.intention, entry.utilization, entry.query
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn begin_wave(&mut self) {
        let wave = self.next_wave;
        let requests = wave_requests(wave);
        let (consumer_home, provider_home) = homes();
        let live: Vec<bool> = self.slots.iter().map(|s| s.live).collect();
        let mut outbox = Vec::new();
        let ledger = WaveLedger::plan(
            wave,
            &requests,
            &consumer_home,
            &provider_home,
            HOSTS,
            |slot| live[slot],
            false,
            &mut outbox,
        );
        let capacity = self.scenario.wire_capacity;
        for (slot, bytes) in self.slots.iter_mut().zip(outbox) {
            slot.send_queue.extend_from_slice(&bytes);
            slot.flush_down(capacity);
        }
        self.in_flight.push_back(ledger);
        self.next_wave += 1;
        self.waves_begun += 1;
    }

    /// Collects the front wave (complete or timed out) and records its
    /// outcome, verifying accounting and oracle values.
    fn collect_front(&mut self, complete: bool) -> Result<(), Violation> {
        let ledger = self
            .in_flight
            .pop_front()
            .expect("collect_front requires an in-flight wave");
        let wave = ledger.wave();
        let delivered = ledger.delivered();
        let pending = ledger.pending_total();
        let answered = ledger.stored_replies();
        if delivered as i64 - pending as i64 != answered as i64 {
            return Err(Violation {
                invariant: "credit-accounting",
                detail: format!(
                    "wave {wave} at collection: delivered {delivered} - pending {pending} \
                     != stored {answered}"
                ),
            });
        }
        if complete && answered != delivered {
            return Err(Violation {
                invariant: "termination",
                detail: format!(
                    "wave {wave} collected as complete with {answered}/{delivered} replies"
                ),
            });
        }
        self.outcomes.push(WaveOutcome {
            wave,
            delivered,
            answered,
            complete,
        });
        Self::check_wave_values(wave, ledger)
    }

    /// Host `s` consumes every complete message its assembler holds,
    /// buffering requests and answering at wave-end markers — the
    /// model-host analogue of `ParticipantHost::serve`'s inner loop,
    /// running the production buffer type.
    fn host_consume(&mut self, s: usize) -> Result<(), Violation> {
        let silent = self.scenario.silent_provider;
        let slot = &mut self.slots[s];
        loop {
            let message = slot
                .host_assembler
                .next_mediator_message()
                .map_err(|e| Violation {
                    invariant: "frame-consistency",
                    detail: format!("host {s} failed to decode a request frame: {e}"),
                })?;
            let Some(message) = message else { break };
            match message {
                MediatorMessage::ConsumerWaveRequest {
                    wave,
                    consumer,
                    requests,
                } => slot.buffer.push_consumer(wave, consumer, requests),
                MediatorMessage::ProviderWaveRequest {
                    wave,
                    provider,
                    queries,
                    request_bids,
                } => slot
                    .buffer
                    .push_provider(wave, provider, queries, request_bids),
                MediatorMessage::WaveEnd { wave } => {
                    let taken = slot.buffer.take_wave(wave);
                    for (consumer, requests) in taken.consumers {
                        let intentions = requests
                            .iter()
                            .map(|(query, candidates)| {
                                (
                                    query.id,
                                    candidates
                                        .iter()
                                        .map(|&p| (p, consumer_oracle(wave, query.id, p)))
                                        .collect(),
                                )
                            })
                            .collect();
                        let mut frame = Vec::new();
                        encode_participant_reply_into(
                            &ParticipantReply::ConsumerWaveReply {
                                wave,
                                consumer,
                                intentions,
                            },
                            &mut frame,
                        );
                        slot.reply_queue.extend_from_slice(&frame);
                        slot.last_reply_frame = frame;
                    }
                    for (provider, queries, _bids) in taken.providers {
                        if silent && provider == ProviderId::new(PROVIDER_H1) {
                            continue;
                        }
                        let intentions = queries
                            .iter()
                            .map(|query| {
                                (query.id, provider_oracle(wave, provider, query.id), None)
                            })
                            .collect();
                        let mut frame = Vec::new();
                        encode_participant_reply_into(
                            &ParticipantReply::ProviderWaveReply {
                                wave,
                                provider,
                                utilization: utilization_oracle(wave, provider),
                                intentions,
                            },
                            &mut frame,
                        );
                        slot.reply_queue.extend_from_slice(&frame);
                        slot.last_reply_frame = frame;
                    }
                }
                other => {
                    return Err(Violation {
                        invariant: "frame-consistency",
                        detail: format!("host {s} received an unexpected message: {other:?}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// The server consumes every complete reply frame buffered for slot
    /// `s`, routing each through the shared ledger seam and checking
    /// the accounting identity after every frame.
    fn server_consume(&mut self, s: usize) -> Result<(), Violation> {
        loop {
            let slot = &mut self.slots[s];
            let frame = match slot.server_assembler.next_frame() {
                Err(e) => {
                    return Err(Violation {
                        invariant: "frame-consistency",
                        detail: format!("server failed to decode a reply frame from slot {s}: {e}"),
                    })
                }
                Ok(None) => break,
                Ok(Some(frame)) => frame,
            };
            let applied =
                route_reply_frame(frame, self.in_flight.iter_mut(), s).map_err(|e| Violation {
                    invariant: "frame-consistency",
                    detail: format!("reply frame from slot {s} failed to route: {e}"),
                })?;
            if applied == Applied::Goodbye {
                return Err(Violation {
                    invariant: "frame-consistency",
                    detail: format!("unexpected goodbye from slot {s}"),
                });
            }
            self.check_ledger_accounting()?;
        }
        Ok(())
    }

    /// Fabricates a reply frame from host `s` claiming to answer
    /// `wave` for `provider`, with off-oracle values (zero): if the
    /// seam ever credits it, the value oracle catches the corruption
    /// too.
    fn inject_reply(&mut self, s: usize, wave: u64, provider: ProviderId) {
        let capacity = self.scenario.wire_capacity;
        let slot = &mut self.slots[s];
        encode_participant_reply_into(
            &ParticipantReply::ProviderWaveReply {
                wave,
                provider,
                utilization: 0.0,
                intentions: vec![(QueryId::new(100 + wave as u32), 0.0, None)],
            },
            &mut slot.reply_queue,
        );
        slot.flush_up(capacity);
    }

    fn apply(&mut self, action: Action) -> Result<(), Violation> {
        match action {
            Action::BeginWave => {
                self.begin_wave();
                Ok(())
            }
            Action::FinishWave => self.collect_front(true),
            Action::TimeoutWave => {
                // A stuck wave's deadline is forced, not an early race:
                // it does not spend the early-timeout budget.
                if !self.front_stuck() {
                    self.timeouts_left = self.timeouts_left.saturating_sub(1);
                }
                self.collect_front(false)
            }
            Action::DeliverDown(s, n) => {
                let capacity = self.scenario.wire_capacity;
                let slot = &mut self.slots[s];
                let chunk: Vec<u8> = slot.down_wire.drain(..n).collect();
                slot.host_assembler.extend(&chunk);
                slot.fed_down += n;
                self.host_consume(s)?;
                // The drain freed wire space and may have produced
                // replies: both write loops advance as far as the
                // pipes allow.
                let slot = &mut self.slots[s];
                slot.flush_down(capacity);
                slot.flush_up(capacity);
                Ok(())
            }
            Action::DeliverUp(s, n) => {
                let capacity = self.scenario.wire_capacity;
                let slot = &mut self.slots[s];
                let chunk: Vec<u8> = slot.up_wire.drain(..n).collect();
                slot.server_assembler.extend(&chunk);
                slot.fed_up += n;
                self.server_consume(s)?;
                self.slots[s].flush_up(capacity);
                Ok(())
            }
            Action::Crash(s) => {
                let slot = &mut self.slots[s];
                slot.host_alive = false;
                slot.live = false;
                slot.crashes_left -= 1;
                slot.send_queue.clear();
                slot.down_wire.clear();
                slot.reply_queue.clear();
                slot.up_wire.clear();
                slot.host_assembler = FrameAssembler::new();
                slot.server_assembler = FrameAssembler::new();
                slot.buffer = WaveRequestBuffer::new();
                Ok(())
            }
            Action::InjectDup(s) => {
                self.dups_left -= 1;
                let capacity = self.scenario.wire_capacity;
                let slot = &mut self.slots[s];
                let frame = slot.last_reply_frame.clone();
                slot.reply_queue.extend_from_slice(&frame);
                slot.flush_up(capacity);
                Ok(())
            }
            Action::InjectForeign(s) => {
                self.foreigns_left -= 1;
                let wave = self.in_flight.front().expect("enabled checked").wave();
                // A reply for the *other* host's provider: charged to
                // the other slot, so it must be rejected as foreign.
                self.inject_reply(s, wave, own_provider(1 - s));
                Ok(())
            }
            Action::InjectStale(s) => {
                self.stales_left -= 1;
                let wave = self.outcomes.last().expect("enabled checked").wave;
                self.inject_reply(s, wave, own_provider(s));
                Ok(())
            }
        }
    }
}

impl Model for WaveWorld {
    fn enabled(&self) -> usize {
        self.actions().len()
    }

    fn describe(&self, action: usize) -> String {
        match self.actions()[action] {
            Action::BeginWave => format!("begin(w{})", self.next_wave),
            Action::FinishWave => {
                format!("finish(w{})", self.in_flight.front().unwrap().wave())
            }
            Action::TimeoutWave => {
                let front = self.in_flight.front().unwrap();
                format!(
                    "timeout(w{},pending={})",
                    front.wave(),
                    front.pending_total()
                )
            }
            Action::DeliverDown(s, n) => {
                format!("recv_host(h{s},{n}B@{})", self.slots[s].fed_down)
            }
            Action::DeliverUp(s, n) => format!("recv_server(h{s},{n}B@{})", self.slots[s].fed_up),
            Action::Crash(s) => {
                let slot = &self.slots[s];
                format!("crash(h{s}@d{},u{})", slot.fed_down, slot.fed_up)
            }
            Action::InjectDup(s) => format!("dup(h{s})"),
            Action::InjectForeign(s) => {
                format!("foreign(h{s},w{})", self.in_flight.front().unwrap().wave())
            }
            Action::InjectStale(s) => {
                format!("stale(h{s},w{})", self.outcomes.last().unwrap().wave)
            }
        }
    }

    fn step(&mut self, action: usize) -> Result<(), Violation> {
        let action = self.actions()[action].clone();
        self.apply(action)
    }

    fn obligations(&self) -> usize {
        (self.scenario.waves - self.waves_begun) as usize
            + self.in_flight.len()
            + self
                .slots
                .iter()
                .map(SlotState::bytes_outstanding)
                .sum::<usize>()
    }

    fn finish(&self) -> Result<(), Violation> {
        if self.outcomes.len() as u64 != self.scenario.waves {
            return Err(Violation {
                invariant: "termination",
                detail: format!(
                    "{} of {} waves terminated",
                    self.outcomes.len(),
                    self.scenario.waves
                ),
            });
        }
        for outcome in &self.outcomes {
            if outcome.answered > outcome.delivered {
                return Err(Violation {
                    invariant: "credit-accounting",
                    detail: format!(
                        "wave {} over-credited: {} answered of {} delivered",
                        outcome.wave, outcome.answered, outcome.delivered
                    ),
                });
            }
            if outcome.complete && outcome.answered != outcome.delivered {
                return Err(Violation {
                    invariant: "termination",
                    detail: format!(
                        "wave {} complete with {}/{} replies",
                        outcome.wave, outcome.answered, outcome.delivered
                    ),
                });
            }
        }
        Ok(())
    }

    fn state_hash(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.next_wave.hash(&mut hasher);
        self.waves_begun.hash(&mut hasher);
        self.timeouts_left.hash(&mut hasher);
        (self.dups_left, self.foreigns_left, self.stales_left).hash(&mut hasher);
        for outcome in &self.outcomes {
            (
                outcome.wave,
                outcome.delivered,
                outcome.answered,
                outcome.complete,
            )
                .hash(&mut hasher);
        }
        for ledger in &self.in_flight {
            (ledger.wave(), ledger.delivered(), ledger.stored_replies()).hash(&mut hasher);
            for s in 0..HOSTS {
                ledger.pending_on(s).hash(&mut hasher);
            }
        }
        for slot in &self.slots {
            (slot.live, slot.host_alive, slot.crashes_left).hash(&mut hasher);
            slot.send_queue.hash(&mut hasher);
            slot.down_wire.hash(&mut hasher);
            slot.reply_queue.hash(&mut hasher);
            slot.up_wire.hash(&mut hasher);
            (slot.fed_down, slot.fed_up).hash(&mut hasher);
            slot.host_assembler.pending_bytes().hash(&mut hasher);
            slot.server_assembler.pending_bytes().hash(&mut hasher);
            slot.buffer.len().hash(&mut hasher);
        }
        hasher.finish()
    }
}
