//! Bounded systematic exploration of every scenario — the same sweep CI
//! runs via the `sqlb_check` binary, sized so the debug-build test suite
//! stays fast. The full (unbounded) exploration of the fault scenarios
//! runs in CI as a release binary under `SQLB_CHECK_FULL=1`.

use sqlb_check::{explore, replay, Budget, Model, Scenario, Schedule, WaveWorld};

/// Per-scenario execution budget for the debug-build test sweep.
const TEST_BUDGET: usize = 3_000;

#[test]
fn every_scenario_holds_under_bounded_exploration() {
    for scenario in Scenario::all() {
        let name = scenario.name;
        let report = explore(&WaveWorld::new(scenario), &Budget::executions(TEST_BUDGET));
        assert!(
            report.failure.is_none(),
            "{name}: {}",
            report.failure.unwrap()
        );
        assert!(report.executions > 0, "{name}: explored nothing");
        assert!(
            report.transitions > report.executions,
            "{name}: trivial traces"
        );
    }
}

#[test]
fn mini_space_exceeds_ten_thousand_interleavings() {
    // The acceptance bar: the miniature configuration must expose at
    // least 10^4 distinct interleavings, all invariant-clean. The
    // budget sits above the bar, so reaching it proves the space is at
    // least that large; the full count (575k+, exhaustive) is verified
    // by the CI release run.
    let report = explore(
        &WaveWorld::new(Scenario::mini()),
        &Budget::executions(12_000),
    );
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(
        report.executions >= 10_000,
        "mini exposed only {} interleavings",
        report.executions
    );
}

#[test]
fn crashy_exercises_multiple_crash_points_per_host() {
    let report = explore(
        &WaveWorld::new(Scenario::crashy()),
        &Budget::executions(TEST_BUDGET),
    );
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    for host in ["crash(h0", "crash(h1"] {
        let points = report.distinct_actions_with_prefix(host);
        assert!(
            points >= 2,
            "{host}...) hit only {points} distinct crash points"
        );
    }
}

#[test]
fn byzantine_exercises_duplicate_foreign_and_stale_replies() {
    // Regression coverage for the pre-seam routing bugs: duplicate,
    // foreign-slot and stale-wave replies must all be reached by the
    // exploration and survive the accounting invariants.
    let report = explore(
        &WaveWorld::new(Scenario::byzantine()),
        &Budget::executions(TEST_BUDGET),
    );
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    for adversary in ["dup", "foreign", "stale"] {
        assert!(
            report.distinct_actions_with_prefix(adversary) >= 1,
            "no {adversary} action explored"
        );
    }
}

#[test]
fn silent_scenario_is_exhaustively_clean() {
    // The silent-provider space is small enough to close out even in
    // debug builds: every interleaving ends in timeout-to-indifference,
    // never a hang.
    let report = explore(&WaveWorld::new(Scenario::silent()), &Budget::UNBOUNDED);
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(!report.truncated, "silent should be fully explorable");
    assert!(report.executions > 0);
}

#[test]
fn schedules_replay_deterministically_across_fresh_worlds() {
    // Walk one concrete schedule out of the explorer's own tree by
    // always taking action 0, then replay its string form against a
    // fresh world: same transcript, same verdict. This is the property
    // that makes every reported failure reproducible.
    let mut probe = WaveWorld::new(Scenario::mini());
    let mut picks = Vec::new();
    while probe.enabled() > 0 && picks.len() < 32 {
        picks.push(0);
        probe.step(0).expect("invariants hold on this trace");
    }
    let schedule: Schedule = picks
        .iter()
        .map(|p: &usize| p.to_string())
        .collect::<Vec<_>>()
        .join(".")
        .parse()
        .expect("schedule string round-trips");
    let (transcript, verdict) = replay(&WaveWorld::new(Scenario::mini()), &schedule);
    assert!(
        verdict.is_ok(),
        "replayed trace must stay clean: {verdict:?}"
    );
    assert_eq!(transcript.len(), picks.len());
}

#[test]
fn split_sweep_covers_every_frame_shape() {
    let report = sqlb_check::sweep_two_chunk_splits();
    assert!(report.ok(), "{:?}", report.failure);
    assert!(report.frames >= 9, "only {} frame shapes", report.frames);
    assert!(report.splits > 500, "only {} splits", report.splits);
}
