//! Proof that the harness can actually fail: with the test-only
//! sign-flipped ledger credit injected, exploration must catch the
//! accounting violation and hand back a schedule that reproduces it on
//! a fresh world.
//!
//! This lives in its own integration-test binary on purpose: the
//! injection flag is process-global, and cargo runs each test binary in
//! its own process, so flipping it here can never poison the clean
//! explorations in `invariants.rs`.

use sqlb_check::{explore, replay, Budget, Scenario, Schedule, WaveWorld};

#[test]
fn injected_miscount_is_caught_with_a_replayable_schedule() {
    sqlb_transport::ledger::inject_miscount_for_tests(true);

    let report = explore(
        &WaveWorld::new(Scenario::mini()),
        &Budget::executions(12_000),
    );
    let failure = report
        .failure
        .expect("a sign-flipped ledger credit must be caught");
    assert!(
        !failure.schedule.0.is_empty(),
        "the failing trace must carry a non-empty schedule"
    );

    // The schedule survives its own string round-trip — the exact form
    // `sqlb_check --replay` accepts.
    let printed = failure.schedule.to_string();
    let reparsed: Schedule = printed.parse().expect("schedule string parses back");
    assert_eq!(reparsed, failure.schedule);

    // Replaying it against a fresh world reproduces the same violation
    // (the flag is still on), step-described for debugging.
    let (transcript, verdict) = replay(&WaveWorld::new(Scenario::mini()), &reparsed);
    let replayed = verdict.expect_err("replay must reproduce the violation");
    assert_eq!(replayed.invariant, failure.violation.invariant);
    assert!(!transcript.is_empty());

    // And with the bug healed, the very same schedule runs clean —
    // the violation was the injection, not the schedule machinery.
    sqlb_transport::ledger::inject_miscount_for_tests(false);
    let (_, verdict) = replay(&WaveWorld::new(Scenario::mini()), &reparsed);
    assert!(
        verdict.is_ok(),
        "schedule must be clean without the injection: {verdict:?}"
    );
}
