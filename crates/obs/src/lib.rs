//! Runtime observability for the SQLB runtime: named counters, gauges
//! and log-bucketed latency histograms, plus a fixed-capacity flight
//! recorder of structured wave/allocation events — all behind one
//! cloneable [`Obs`] handle that is a **literal no-op when disabled**.
//!
//! The paper's whole argument rests on *observed* statistics (Section 3:
//! adequation, satisfaction, allocation satisfaction), yet a live
//! mediator is useless if it cannot be inspected while serving waves.
//! This crate is the inspection layer: the engine, the mediation
//! runtimes and the socket transport all hold an [`Obs`] handle and
//! record what they do; a snapshot can be rendered as Prometheus-style
//! text or JSON at any moment (see [`ObsSnapshot`]), and the flight
//! recorder's recent events can be dumped for post-mortems.
//!
//! Two hard rules shape the design:
//!
//! * **Observation only.** Nothing here feeds back into allocation:
//!   recording a value never touches an rng stream, a satisfaction
//!   table or a floating-point accumulator the engine reads. Same-seed
//!   reports are bit-identical with observability on or off (pinned by
//!   the `observability` integration tests).
//! * **Disabled means free.** A disabled handle holds no storage at
//!   all ([`Obs::disabled`] is `None` inside); every recording method
//!   is one branch on that option and returns. Individual instrument
//!   handles ([`Counter`], [`Gauge`], [`Histogram`]) work the same
//!   way, so hot paths keep pre-resolved handles and pay a single
//!   predictable branch when observability is off.
//!
//! ```
//! use sqlb_obs::{EventKind, Obs};
//!
//! let obs = Obs::enabled();
//! let waves = obs.counter("waves_begun");
//! let latency = obs.histogram("wave_gather_seconds");
//! waves.inc();
//! latency.record(0.000_250);
//! obs.record(1.5, EventKind::WaveBegun { wave: 1, delivered: 64 });
//!
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counters, vec![("waves_begun".to_string(), 1)]);
//! assert!(snapshot.to_prometheus_text().contains("sqlb_waves_begun 1"));
//!
//! // A disabled handle accepts the same calls and stores nothing.
//! let off = Obs::disabled();
//! off.counter("waves_begun").inc();
//! assert!(off.snapshot().counters.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod recorder;
pub mod registry;
pub mod snapshot;

use std::sync::{Arc, Mutex};

pub use recorder::{EventKind, FlightRecorder, ObsEvent};
pub use registry::{Counter, Gauge, Histogram, LogHistogram, Registry};
pub use snapshot::{HistogramSummary, ObsSnapshot};

/// Default flight-recorder capacity (events kept before the ring wraps).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// The storage behind an enabled [`Obs`] handle.
#[derive(Debug)]
struct ObsInner {
    registry: Registry,
    recorder: Mutex<FlightRecorder>,
}

/// A cloneable observability handle: either a live registry + flight
/// recorder shared by every clone, or a no-op shell.
///
/// Cloning is cheap (an `Arc` bump or a `None` copy); every subsystem of
/// a run holds its own clone and all of them feed the same snapshot.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// An enabled handle with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Obs::with_recorder_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// An enabled handle whose flight recorder keeps the last
    /// `capacity` events.
    pub fn with_recorder_capacity(capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                recorder: Mutex::new(FlightRecorder::new(capacity)),
            })),
        }
    }

    /// The no-op handle: no storage, every call a single branch.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled or disabled handle, from a configuration flag.
    pub fn when(enabled: bool) -> Self {
        if enabled {
            Obs::enabled()
        } else {
            Obs::disabled()
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the named counter. On a
    /// disabled handle the returned [`Counter`] is itself a no-op.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// Resolves (registering on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Resolves (registering on first use) the named log-bucketed
    /// latency histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::noop(),
        }
    }

    /// Appends one structured event to the flight recorder, stamped
    /// `at` (the recording subsystem's clock: the engine and the
    /// reactor pass virtual seconds, the socket transport seconds since
    /// server start).
    pub fn record(&self, at: f64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            if let Ok(mut recorder) = inner.recorder.lock() {
                recorder.record(at, kind);
            }
        }
    }

    /// A point-in-time snapshot of every registered instrument, in
    /// deterministic (lexicographic) name order. Empty on a disabled
    /// handle.
    pub fn snapshot(&self) -> ObsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => ObsSnapshot::default(),
        }
    }

    /// Dumps the flight recorder's retained events as JSON, oldest
    /// first. `"{}"`-empty on a disabled handle.
    pub fn dump_events_json(&self) -> String {
        match &self.inner {
            Some(inner) => match inner.recorder.lock() {
                Ok(recorder) => recorder.dump_json(),
                Err(_) => String::from("{\"dropped\": 0, \"events\": []}"),
            },
            None => String::from("{\"dropped\": 0, \"events\": []}"),
        }
    }

    /// Installs a panic hook that dumps this handle's flight recorder
    /// (as JSON, to stderr) before delegating to the previous hook, so
    /// a crashing run leaves a post-mortem trace. No-op on a disabled
    /// handle. Intended for binaries; tests should prefer
    /// [`Obs::dump_events_json`].
    pub fn install_panic_dump(&self) {
        let Some(inner) = self.inner.clone() else {
            return;
        };
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Ok(recorder) = inner.recorder.lock() {
                eprintln!("sqlb-obs flight recorder dump:\n{}", recorder.dump_json());
            }
            previous(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.counter("c").add(5);
        obs.gauge("g").set(3);
        obs.histogram("h").record(1.0);
        obs.record(
            0.0,
            EventKind::WaveBegun {
                wave: 1,
                delivered: 2,
            },
        );
        let snapshot = obs.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert_eq!(obs.dump_events_json(), "{\"dropped\": 0, \"events\": []}");
    }

    #[test]
    fn clones_share_the_same_storage() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.counter("shared").add(2);
        obs.counter("shared").inc();
        assert_eq!(obs.snapshot().counters, vec![("shared".to_string(), 3)]);
    }

    #[test]
    fn when_maps_the_flag() {
        assert!(Obs::when(true).is_enabled());
        assert!(!Obs::when(false).is_enabled());
    }

    #[test]
    fn handles_resolved_before_disabling_still_noop() {
        // A Counter resolved from a disabled handle must never panic or
        // allocate, whatever is called on it.
        let counter = Obs::disabled().counter("x");
        counter.inc();
        counter.add(10);
        assert_eq!(counter.value(), 0);
    }
}
