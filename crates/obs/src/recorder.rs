//! The flight recorder: a fixed-capacity ring buffer of structured
//! wave/allocation events for post-mortems.
//!
//! Every event carries the recording subsystem's clock reading (`at`)
//! and a global sequence number (`seq`), so a dump is totally ordered
//! even after the ring has wrapped many times. The JSON dump reports how
//! many older events the ring has already dropped — a truncated trace
//! never silently poses as a complete one.

/// What happened: one structured runtime event.
///
/// The variants mirror the lifecycle the wave protocol and the engine
/// actually go through; ids are carried as plain integers so the
/// recorder stays independent of every other crate's types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A mediation wave was planned and its requests written out.
    WaveBegun {
        /// Wave id.
        wave: u64,
        /// Endpoint requests delivered.
        delivered: u64,
    },
    /// A reply was credited to an in-flight wave's ledger.
    ReplyCredited {
        /// Wave id the reply answered.
        wave: u64,
    },
    /// A stale, duplicate or foreign reply was parsed and discarded.
    StaleDiscard {
        /// Wave id the discarded reply claimed to answer.
        wave: u64,
    },
    /// A wave deadline passed with unanswered requests; the missing
    /// replies degraded to indifference.
    TimeoutIndifference {
        /// Wave id.
        wave: u64,
        /// Requests that went unanswered.
        count: u64,
    },
    /// A provider was migrated between mediator shards by a
    /// rebalancing round.
    Rebalance {
        /// Raw provider id.
        provider: u64,
        /// Source shard.
        from: u64,
        /// Destination shard.
        to: u64,
    },
    /// A participant departed (left the system or was taken down by a
    /// churn scenario).
    ChurnDepart {
        /// Raw participant id.
        participant: u64,
        /// `true` for a provider, `false` for a consumer.
        provider: bool,
    },
    /// A previously departed participant rejoined.
    ChurnRejoin {
        /// Raw participant id.
        participant: u64,
        /// `true` for a provider, `false` for a consumer.
        provider: bool,
    },
}

impl EventKind {
    /// The snake_case tag the JSON dump labels this event with.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::WaveBegun { .. } => "wave_begun",
            EventKind::ReplyCredited { .. } => "reply_credited",
            EventKind::StaleDiscard { .. } => "stale_discard",
            EventKind::TimeoutIndifference { .. } => "timeout_indifference",
            EventKind::Rebalance { .. } => "rebalance",
            EventKind::ChurnDepart { .. } => "churn_depart",
            EventKind::ChurnRejoin { .. } => "churn_rejoin",
        }
    }

    /// Renders the variant's payload as JSON fields (leading comma
    /// included), matching the hand-rolled JSON style of the rest of
    /// the workspace.
    fn json_fields(&self) -> String {
        match self {
            EventKind::WaveBegun { wave, delivered } => {
                format!(", \"wave\": {wave}, \"delivered\": {delivered}")
            }
            EventKind::ReplyCredited { wave } => format!(", \"wave\": {wave}"),
            EventKind::StaleDiscard { wave } => format!(", \"wave\": {wave}"),
            EventKind::TimeoutIndifference { wave, count } => {
                format!(", \"wave\": {wave}, \"count\": {count}")
            }
            EventKind::Rebalance { provider, from, to } => {
                format!(", \"provider\": {provider}, \"from\": {from}, \"to\": {to}")
            }
            EventKind::ChurnDepart {
                participant,
                provider,
            }
            | EventKind::ChurnRejoin {
                participant,
                provider,
            } => format!(", \"participant\": {participant}, \"provider\": {provider}"),
        }
    }
}

/// One recorded event: clock stamp, global sequence number, payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// The recording subsystem's clock when the event happened (virtual
    /// seconds for the engine and reactor, seconds since server start
    /// for the socket transport).
    pub at: f64,
    /// Global 0-based sequence number across the recorder's lifetime —
    /// total order survives ring wraparound.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl ObsEvent {
    /// Renders this event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"at\": {:.6}, \"kind\": \"{}\"{}}}",
            self.seq,
            self.at,
            self.kind.name(),
            self.kind.json_fields()
        )
    }
}

/// The fixed-capacity event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    /// Ring storage; grows to `capacity` and then wraps.
    events: Vec<ObsEvent>,
    /// Next write position inside `events` once full.
    head: usize,
    /// Events recorded over the recorder's lifetime.
    total: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            events: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// Appends one event, dropping the oldest once the ring is full.
    pub fn record(&mut self, at: f64, kind: EventKind) {
        let event = ObsEvent {
            at,
            seq: self.total,
            kind,
        };
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Events recorded over the recorder's lifetime (retained or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events already dropped by wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        let mut ordered = Vec::with_capacity(self.events.len());
        ordered.extend_from_slice(&self.events[self.head..]);
        ordered.extend_from_slice(&self.events[..self.head]);
        ordered
    }

    /// Dumps the retained events as JSON, oldest first, with the count
    /// of events already dropped by wraparound.
    pub fn dump_json(&self) -> String {
        let mut out = format!("{{\"dropped\": {}, \"events\": [", self.dropped());
        for (i, event) in self.events().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_until_capacity() {
        let mut recorder = FlightRecorder::new(8);
        for wave in 0..5 {
            recorder.record(wave as f64, EventKind::WaveBegun { wave, delivered: 1 });
        }
        let events = recorder.events();
        assert_eq!(events.len(), 5);
        assert_eq!(recorder.dropped(), 0);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn wraparound_keeps_the_newest_events_in_order() {
        let mut recorder = FlightRecorder::new(4);
        for wave in 0..10u64 {
            recorder.record(wave as f64, EventKind::ReplyCredited { wave });
        }
        assert_eq!(recorder.total(), 10);
        assert_eq!(recorder.dropped(), 6);
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first after wraparound");
        for event in &events {
            match event.kind {
                EventKind::ReplyCredited { wave } => assert_eq!(wave, event.seq),
                _ => panic!("unexpected kind"),
            }
        }
    }

    #[test]
    fn wraparound_is_stable_over_many_turns() {
        let mut recorder = FlightRecorder::new(3);
        for wave in 0..1000u64 {
            recorder.record(0.0, EventKind::StaleDiscard { wave });
        }
        let seqs: Vec<u64> = recorder.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![997, 998, 999]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut recorder = FlightRecorder::new(0);
        recorder.record(
            0.0,
            EventKind::WaveBegun {
                wave: 1,
                delivered: 1,
            },
        );
        recorder.record(
            0.0,
            EventKind::WaveBegun {
                wave: 2,
                delivered: 1,
            },
        );
        assert_eq!(recorder.events().len(), 1);
        assert_eq!(recorder.dropped(), 1);
    }

    #[test]
    fn dump_json_is_well_formed() {
        let mut recorder = FlightRecorder::new(2);
        recorder.record(1.25, EventKind::TimeoutIndifference { wave: 7, count: 3 });
        recorder.record(
            2.5,
            EventKind::Rebalance {
                provider: 42,
                from: 0,
                to: 1,
            },
        );
        let dump = recorder.dump_json();
        assert_eq!(
            dump,
            "{\"dropped\": 0, \"events\": [\
             {\"seq\": 0, \"at\": 1.250000, \"kind\": \"timeout_indifference\", \"wave\": 7, \"count\": 3}, \
             {\"seq\": 1, \"at\": 2.500000, \"kind\": \"rebalance\", \"provider\": 42, \"from\": 0, \"to\": 1}\
             ]}"
        );
    }

    #[test]
    fn churn_events_render_both_roles() {
        let mut recorder = FlightRecorder::new(4);
        recorder.record(
            0.0,
            EventKind::ChurnDepart {
                participant: 3,
                provider: true,
            },
        );
        recorder.record(
            1.0,
            EventKind::ChurnRejoin {
                participant: 3,
                provider: false,
            },
        );
        let dump = recorder.dump_json();
        assert!(dump.contains("\"kind\": \"churn_depart\", \"participant\": 3, \"provider\": true"));
        assert!(
            dump.contains("\"kind\": \"churn_rejoin\", \"participant\": 3, \"provider\": false")
        );
    }
}
