//! Point-in-time snapshots of an observability registry, rendered as
//! Prometheus-style text or JSON.
//!
//! Both renderers are deterministic: names come out in the registry's
//! lexicographic order and floats use fixed-precision formatting, so
//! golden-file tests can pin the exact output and the wire protocol's
//! `StatsReply` can carry a snapshot bit-stably.

/// Quantile summary of one log-bucketed latency histogram, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Exact observed maximum.
    pub max: f64,
}

/// A point-in-time snapshot of every registered instrument.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsSnapshot {
    /// `(name, value)` per counter, lexicographic by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, lexicographic by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` per histogram, lexicographic by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Fixed-precision second formatting shared by both renderers: nine
/// decimals (nanosecond resolution), enough to round-trip the
/// histogram's nanosecond-backed values.
fn seconds(v: f64) -> String {
    format!("{v:.9}")
}

impl ObsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the snapshot in Prometheus' text exposition style:
    /// counters and gauges as `sqlb_<name> <value>`, histograms as
    /// quantile-labelled summaries plus a `_count` row.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE sqlb_{name} counter\n"));
            out.push_str(&format!("sqlb_{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE sqlb_{name} gauge\n"));
            out.push_str(&format!("sqlb_{name} {value}\n"));
        }
        for (name, summary) in &self.histograms {
            out.push_str(&format!("# TYPE sqlb_{name} summary\n"));
            out.push_str(&format!(
                "sqlb_{name}{{quantile=\"0.5\"}} {}\n",
                seconds(summary.p50)
            ));
            out.push_str(&format!(
                "sqlb_{name}{{quantile=\"0.95\"}} {}\n",
                seconds(summary.p95)
            ));
            out.push_str(&format!(
                "sqlb_{name}{{quantile=\"0.99\"}} {}\n",
                seconds(summary.p99)
            ));
            out.push_str(&format!(
                "sqlb_{name}{{quantile=\"1\"}} {}\n",
                seconds(summary.max)
            ));
            out.push_str(&format!("sqlb_{name}_count {}\n", summary.count));
        }
        out
    }

    /// Renders the snapshot as one JSON object with `counters`,
    /// `gauges` and `histograms` maps.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, summary)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                summary.count,
                seconds(summary.p50),
                seconds(summary.p95),
                seconds(summary.p99),
                seconds(summary.max)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsSnapshot {
        ObsSnapshot {
            counters: vec![
                ("replies_credited".to_string(), 128),
                ("waves_begun".to_string(), 16),
            ],
            gauges: vec![("pipeline_depth".to_string(), 2)],
            histograms: vec![(
                "wave_gather_seconds".to_string(),
                HistogramSummary {
                    count: 16,
                    p50: 0.000_25,
                    p95: 0.001,
                    p99: 0.002,
                    max: 0.002_5,
                },
            )],
        }
    }

    #[test]
    fn prometheus_text_golden() {
        assert_eq!(
            sample().to_prometheus_text(),
            "# TYPE sqlb_replies_credited counter\n\
             sqlb_replies_credited 128\n\
             # TYPE sqlb_waves_begun counter\n\
             sqlb_waves_begun 16\n\
             # TYPE sqlb_pipeline_depth gauge\n\
             sqlb_pipeline_depth 2\n\
             # TYPE sqlb_wave_gather_seconds summary\n\
             sqlb_wave_gather_seconds{quantile=\"0.5\"} 0.000250000\n\
             sqlb_wave_gather_seconds{quantile=\"0.95\"} 0.001000000\n\
             sqlb_wave_gather_seconds{quantile=\"0.99\"} 0.002000000\n\
             sqlb_wave_gather_seconds{quantile=\"1\"} 0.002500000\n\
             sqlb_wave_gather_seconds_count 16\n"
        );
    }

    #[test]
    fn json_golden() {
        assert_eq!(
            sample().to_json(),
            "{\"counters\": {\"replies_credited\": 128, \"waves_begun\": 16}, \
             \"gauges\": {\"pipeline_depth\": 2}, \
             \"histograms\": {\"wave_gather_seconds\": \
             {\"count\": 16, \"p50\": 0.000250000, \"p95\": 0.001000000, \
             \"p99\": 0.002000000, \"max\": 0.002500000}}}"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty_structures() {
        let empty = ObsSnapshot::default();
        assert_eq!(empty.to_prometheus_text(), "");
        assert_eq!(
            empty.to_json(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}"
        );
    }

    #[test]
    fn lookups_find_rows() {
        let snapshot = sample();
        assert_eq!(snapshot.counter("waves_begun"), Some(16));
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.gauge("pipeline_depth"), Some(2));
        assert_eq!(
            snapshot.histogram("wave_gather_seconds").map(|h| h.count),
            Some(16)
        );
    }
}
