//! The instrument registry: named counters, gauges and log-bucketed
//! latency histograms behind cheap, cloneable handles.
//!
//! Handles are resolved once (registering the name on first use) and
//! then held by the instrumented code; recording through a handle is an
//! atomic update with no lock and no lookup. A handle resolved from a
//! disabled [`crate::Obs`] carries no storage and records nothing — the
//! hot path pays exactly one predictable branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramSummary, ObsSnapshot};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// The no-op handle a disabled registry hands out.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (`0` on a no-op handle).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a signed instantaneous value (pipeline depth, live
/// connections, in-flight waves).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// The no-op handle a disabled registry hands out.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (`0` on a no-op handle).
    pub fn value(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution of [`LogHistogram`]: 2³ = 8 sub-buckets per
/// power of two, bounding the relative quantile error at 1/16 ≈ 6.25%.
const SUB_BITS: u32 = 3;
/// Values below `2^(SUB_BITS + 1)` nanoseconds get one bucket each
/// (exact), everything above is log-bucketed.
const LINEAR_LIMIT: u64 = 1 << (SUB_BITS + 1);
/// Total bucket count: 16 exact buckets + 8 per octave for exponents
/// 4..=63.
const BUCKETS: usize = LINEAR_LIMIT as usize + (64 - (SUB_BITS + 1) as usize) * (1 << SUB_BITS);

/// A lock-free log-bucketed latency histogram over nanosecond-resolution
/// durations, with p50/p95/p99/max readout.
///
/// Values are recorded in seconds and stored as bucketed nanosecond
/// counts: exact below 16 ns, then 8 sub-buckets per power of two, so a
/// quantile estimate is within ~6.25% of the true value while the whole
/// histogram is a fixed 496-slot array of relaxed atomics — cheap enough
/// to live on the per-wave hot path.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Exact observed extrema (nanoseconds), so `quantile(1.0)` and the
    /// reported max are not bucket-rounded.
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

/// Maps a nanosecond value to its bucket index.
fn bucket_index(nanos: u64) -> usize {
    if nanos < LINEAR_LIMIT {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros();
    let sub = ((nanos >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    LINEAR_LIMIT as usize + ((exp - (SUB_BITS + 1)) as usize) * (1 << SUB_BITS) + sub
}

/// The midpoint (nanoseconds) of the bucket at `index`, used as the
/// quantile representative.
fn bucket_midpoint(index: usize) -> f64 {
    if index < LINEAR_LIMIT as usize {
        return index as f64;
    }
    let over = index - LINEAR_LIMIT as usize;
    let exp = (over / (1 << SUB_BITS)) as u32 + SUB_BITS + 1;
    let sub = (over % (1 << SUB_BITS)) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (1u64 << exp) + sub * width;
    lower as f64 + width as f64 / 2.0
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one duration, in seconds. Negative and non-finite values
    /// clamp to zero.
    pub fn record_seconds(&self, seconds: f64) {
        let nanos = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9).round().min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The exact maximum recorded value, in seconds (`0.0` when empty).
    pub fn max_seconds(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        self.max_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded values, in
    /// seconds: the midpoint of the bucket holding the rank-`⌈q·n⌉`
    /// value, clamped to the exact observed extrema. `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let min = self.min_nanos.load(Ordering::Relaxed) as f64;
                let max = self.max_nanos.load(Ordering::Relaxed) as f64;
                return bucket_midpoint(index).clamp(min, max) / 1e9;
            }
        }
        self.max_seconds()
    }

    /// The snapshot row of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max_seconds(),
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// A histogram handle resolved from a registry (or a no-op shell).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<LogHistogram>>);

impl Histogram {
    /// The no-op handle a disabled registry hands out.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one duration, in seconds.
    #[inline]
    pub fn record(&self, seconds: f64) {
        if let Some(histogram) = &self.0 {
            histogram.record_seconds(seconds);
        }
    }

    /// Number of recorded values (`0` on a no-op handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |histogram| histogram.count())
    }
}

/// One registered instrument.
#[derive(Debug)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<LogHistogram>),
}

/// The name → instrument table. `BTreeMap` keeps snapshots in a
/// deterministic lexicographic order, which the golden renderer tests
/// rely on.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves the named counter, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind — two call sites disagreeing about a name is a programming
    /// error worth failing loudly on.
    pub fn counter(&self, name: &str) -> Counter {
        let mut instruments = self.instruments.lock().expect("registry poisoned");
        let entry = instruments
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))));
        match entry {
            Instrument::Counter(cell) => Counter(Some(cell.clone())),
            _ => panic!("obs instrument {name:?} already registered as a non-counter"),
        }
    }

    /// Resolves the named gauge, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut instruments = self.instruments.lock().expect("registry poisoned");
        let entry = instruments
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicI64::new(0))));
        match entry {
            Instrument::Gauge(cell) => Gauge(Some(cell.clone())),
            _ => panic!("obs instrument {name:?} already registered as a non-gauge"),
        }
    }

    /// Resolves the named histogram, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut instruments = self.instruments.lock().expect("registry poisoned");
        let entry = instruments
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(LogHistogram::new())));
        match entry {
            Instrument::Histogram(histogram) => Histogram(Some(histogram.clone())),
            _ => panic!("obs instrument {name:?} already registered as a non-histogram"),
        }
    }

    /// A point-in-time snapshot of every instrument, names sorted.
    pub fn snapshot(&self) -> ObsSnapshot {
        let instruments = self.instruments.lock().expect("registry poisoned");
        let mut snapshot = ObsSnapshot::default();
        for (name, instrument) in instruments.iter() {
            match instrument {
                Instrument::Counter(cell) => snapshot
                    .counters
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Instrument::Gauge(cell) => snapshot
                    .gauges
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Instrument::Histogram(histogram) => snapshot
                    .histograms
                    .push((name.clone(), histogram.summary())),
            }
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut samples: Vec<u64> = (0..200).collect();
        for shift in 4..64 {
            for offset in [0u64, 1, 3, 7] {
                samples.push((1u64 << shift).saturating_add(offset << (shift - 3)));
            }
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        let mut last = 0usize;
        for v in samples {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "index {index} out of range for {v}");
            assert!(index >= last, "bucket index must be monotone in the value");
            last = index;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(
            bucket_index(16),
            16,
            "first log bucket follows the linear ones"
        );
    }

    #[test]
    fn midpoint_lies_inside_its_bucket() {
        for v in [1u64, 15, 16, 17, 100, 1_000, 123_456, 10_000_000_000] {
            let index = bucket_index(v);
            let mid = bucket_midpoint(index);
            // The midpoint must map back into the same bucket.
            assert_eq!(
                bucket_index(mid as u64),
                index,
                "midpoint {mid} escaped bucket {index} of value {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let h = LogHistogram::new();
        for i in 1..=100u64 {
            h.record_seconds(i as f64 * 1e-6); // 1..100 µs
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        assert!(
            (p50 - 50e-6).abs() / 50e-6 < 0.07,
            "p50 {p50} too far from 50µs"
        );
        let p99 = h.quantile(0.99);
        assert!(
            (p99 - 99e-6).abs() / 99e-6 < 0.07,
            "p99 {p99} too far from 99µs"
        );
        assert_eq!(h.max_seconds(), 100e-6);
        assert_eq!(h.quantile(1.0), 100e-6, "q=1 reports the exact max");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
    }

    #[test]
    fn non_finite_and_negative_values_clamp_to_zero() {
        let h = LogHistogram::new();
        h.record_seconds(-1.0);
        h.record_seconds(f64::NAN);
        h.record_seconds(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn snapshot_orders_names_lexicographically() {
        let registry = Registry::new();
        registry.counter("zeta");
        registry.counter("alpha");
        let names: Vec<String> = registry
            .snapshot()
            .counters
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        assert_eq!(names, vec!["alpha".to_string(), "zeta".to_string()]);
    }

    /// Exact quantile of a sorted slice at the same rank definition the
    /// histogram uses (`rank = ⌈q·n⌉`, 1-based).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #[test]
        fn prop_quantiles_track_exact_sorted_quantiles(
            values in proptest::collection::vec(1e-9f64..10.0, 1..300),
            q in 0.0f64..1.0,
        ) {
            let h = LogHistogram::new();
            for &v in &values {
                h.record_seconds(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let exact = exact_quantile(&sorted, q);
            let estimate = h.quantile(q);
            // Log-bucketed estimate: within one bucket width (1/8
            // relative) of the exact value — half a width for the
            // midpoint, plus slack for nanosecond rounding landing a
            // value in the neighbouring bucket.
            let tolerance = exact * (1.0 / 8.0) + 2e-9;
            prop_assert!(
                (estimate - exact).abs() <= tolerance,
                "quantile {} estimate {} vs exact {} (tolerance {})",
                q, estimate, exact, tolerance
            );
        }

        #[test]
        fn prop_count_and_extrema_are_exact(
            values in proptest::collection::vec(1e-9f64..1.0, 1..200),
        ) {
            let h = LogHistogram::new();
            for &v in &values {
                h.record_seconds(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            let max = values.iter().cloned().fold(0.0f64, f64::max);
            // The max is stored in nanoseconds, so it is exact to 1 ns.
            prop_assert!((h.max_seconds() - max).abs() < 1e-9);
        }
    }
}
