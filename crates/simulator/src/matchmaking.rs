//! Capability matchmaking for the engine's candidate set `P_q`.
//!
//! The paper's evaluation makes every provider of the mediator a
//! candidate for every query (its matchmaking step is the identity);
//! that remains the engine's default. This module wires
//! `sqlb-matchmaking` in as the opt-in alternative
//! ([`crate::SimulationConfig::capability_matchmaking`]): providers
//! declare class-topic capabilities derived from their private class
//! preferences, arriving queries are tagged with their class topic, and
//! the candidate set becomes *the shard's providers whose capabilities
//! cover the query* — Section 2's "providers able to treat the query",
//! made literal.
//!
//! The derivation rule: a provider declares a capability for every query
//! class it has a non-negative preference for; a provider that dislikes
//! every class still declares its least-disliked one (a provider with no
//! capability at all could never be allocated anything and would starve
//! by construction, which is a departure-rule concern, not a matchmaking
//! one). Every input is fixed at population generation, so the declared
//! capabilities — and with them the candidate sets — are a deterministic
//! function of the seed.

use sqlb_agents::Population;
use sqlb_matchmaking::{Capability, CapabilityRegistry};
use sqlb_types::{ProviderId, QueryClass, QueryDescription};

/// The classes the workload generator draws from (the paper's two).
const WORKLOAD_CLASSES: [QueryClass; 2] = [QueryClass::Light, QueryClass::Heavy];

/// The capability/description topic of a query class (`class/light`,
/// `class/heavy`, ...).
pub fn class_topic(class: QueryClass) -> String {
    format!("class/{class}")
}

/// Builds the mediator-side capability registry from a population:
/// every provider declares the class topics it prefers (see the module
/// docs for the derivation rule).
pub fn registry_for(population: &Population) -> CapabilityRegistry {
    let mut registry = CapabilityRegistry::new();
    for provider in population.providers.values() {
        let mut declared_any = false;
        let mut best = (WORKLOAD_CLASSES[0], f64::NEG_INFINITY);
        for class in WORKLOAD_CLASSES {
            let preference = provider.preference_for(class).value();
            if preference > best.1 {
                best = (class, preference);
            }
            if preference >= 0.0 {
                registry.register(provider.id(), Capability::new(class_topic(class)));
                declared_any = true;
            }
        }
        if !declared_any {
            registry.register(provider.id(), Capability::new(class_topic(best.0)));
        }
    }
    registry
}

/// The engine's matchmaking cache: the capability registry plus the
/// precomputed matching provider list per workload class.
///
/// `matching_providers` walks the whole registry with topic prefix
/// matching — fine once, wrong per arrival. The matching set is a pure
/// function of the query class (there are two) and only shrinks on
/// provider departure, so the engine resolves each arrival's matching
/// list from this cache in O(1) with no allocation, and departures
/// update it incrementally.
#[derive(Debug)]
pub struct ClassMatchmaker {
    registry: CapabilityRegistry,
    /// Matching providers (ascending) per entry of [`WORKLOAD_CLASSES`].
    by_class: [Vec<ProviderId>; 2],
}

impl ClassMatchmaker {
    /// Derives the registry from the population (see [`registry_for`])
    /// and precomputes the per-class matching lists.
    pub fn new(population: &Population) -> Self {
        let registry = registry_for(population);
        let by_class = WORKLOAD_CLASSES.map(|class| {
            registry.matching_providers(&QueryDescription::with_topic(class_topic(class), class))
        });
        ClassMatchmaker { registry, by_class }
    }

    /// The providers whose capabilities cover queries of `class`, in
    /// ascending id order. Classes outside the workload's two return an
    /// empty list (the engine then falls back to the whole shard).
    pub fn matching(&self, class: QueryClass) -> &[ProviderId] {
        match class {
            QueryClass::Light => &self.by_class[0],
            QueryClass::Heavy => &self.by_class[1],
            QueryClass::Custom(_) => &[],
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &CapabilityRegistry {
        &self.registry
    }

    /// Removes a departed provider from the registry and from every
    /// per-class matching list.
    pub fn deregister(&mut self, provider: ProviderId) {
        if self.registry.deregister(provider) {
            for list in self.by_class.iter_mut() {
                if let Ok(at) = list.binary_search(&provider) {
                    list.remove(at);
                }
            }
        }
    }

    /// Re-registers a re-joining provider (scenario churn), re-deriving
    /// its declared capabilities with exactly the [`registry_for`] rule:
    /// every non-negatively-preferred class, or the least-disliked one
    /// when it dislikes them all. Idempotent — a provider already in the
    /// matching lists is left untouched.
    pub fn register(&mut self, provider: &sqlb_agents::ProviderAgent) {
        let mut best = (WORKLOAD_CLASSES[0], f64::NEG_INFINITY);
        let mut declared_any = false;
        for (index, class) in WORKLOAD_CLASSES.into_iter().enumerate() {
            let preference = provider.preference_for(class).value();
            if preference > best.1 {
                best = (class, preference);
            }
            if preference >= 0.0 {
                self.declare(provider.id(), class, index);
                declared_any = true;
            }
        }
        if !declared_any {
            let index = WORKLOAD_CLASSES
                .iter()
                .position(|&c| c == best.0)
                .expect("best class comes from WORKLOAD_CLASSES");
            self.declare(provider.id(), best.0, index);
        }
    }

    /// Adds one capability and its cached matching-list entry.
    fn declare(&mut self, provider: ProviderId, class: QueryClass, index: usize) {
        if let Err(at) = self.by_class[index].binary_search(&provider) {
            self.registry
                .register(provider, Capability::new(class_topic(class)));
            self.by_class[index].insert(at, provider);
        }
    }
}

/// Intersects the shard's (ascending) provider list with the
/// (ascending) matchmaking result into `out`. Both inputs are sorted by
/// construction, so this is a linear merge — no per-arrival set
/// allocation beyond the reused buffer.
pub fn intersect_sorted(shard: &[ProviderId], matching: &[ProviderId], out: &mut Vec<ProviderId>) {
    out.clear();
    let mut m = matching.iter().peekable();
    for &p in shard {
        while let Some(&&candidate) = m.peek() {
            if candidate < p {
                m.next();
            } else {
                break;
            }
        }
        if m.peek() == Some(&&p) {
            out.push(p);
            m.next();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_agents::PopulationConfig;
    use sqlb_types::QueryDescription;

    #[test]
    fn class_topics_are_distinct_per_class() {
        assert_eq!(class_topic(QueryClass::Light), "class/light");
        assert_eq!(class_topic(QueryClass::Heavy), "class/heavy");
        assert_ne!(
            class_topic(QueryClass::Custom(3)),
            class_topic(QueryClass::Custom(4))
        );
    }

    #[test]
    fn every_provider_declares_at_least_one_capability() {
        let population = Population::generate(&PopulationConfig::scaled(16, 64, 11)).unwrap();
        let registry = registry_for(&population);
        assert_eq!(registry.len(), 64);
        for provider in population.providers.values() {
            assert!(
                !registry.capabilities_of(provider.id()).is_empty(),
                "{} declared nothing",
                provider.id()
            );
        }
    }

    #[test]
    fn declared_capabilities_follow_the_preference_sign() {
        let population = Population::generate(&PopulationConfig::scaled(16, 64, 11)).unwrap();
        let registry = registry_for(&population);
        let mut excluded_somewhere = 0;
        for class in WORKLOAD_CLASSES {
            let description = QueryDescription::with_topic(class_topic(class), class);
            let matching = registry.matching_providers(&description);
            for provider in population.providers.values() {
                let covered = matching.binary_search(&provider.id()).is_ok();
                let preference = provider.preference_for(class).value();
                if preference >= 0.0 {
                    assert!(
                        covered,
                        "{} likes {class} but is not matched",
                        provider.id()
                    );
                }
                if !covered {
                    assert!(preference < 0.0);
                    excluded_somewhere += 1;
                }
            }
        }
        assert!(
            excluded_somewhere > 0,
            "a 64-provider population should contain at least one class-averse provider"
        );
    }

    #[test]
    fn registry_derivation_is_deterministic_per_seed() {
        let build = || {
            let population = Population::generate(&PopulationConfig::scaled(8, 32, 7)).unwrap();
            let registry = registry_for(&population);
            WORKLOAD_CLASSES.map(|class| {
                registry
                    .matching_providers(&QueryDescription::with_topic(class_topic(class), class))
            })
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn class_matchmaker_caches_exactly_the_registry_answers() {
        let population = Population::generate(&PopulationConfig::scaled(8, 32, 7)).unwrap();
        let mut matchmaker = ClassMatchmaker::new(&population);
        for class in WORKLOAD_CLASSES {
            let direct = matchmaker
                .registry()
                .matching_providers(&QueryDescription::with_topic(class_topic(class), class));
            assert_eq!(matchmaker.matching(class), direct.as_slice());
        }
        assert!(matchmaker.matching(QueryClass::Custom(0)).is_empty());

        // Departure shrinks both the registry and the cached lists.
        let departed = matchmaker.matching(QueryClass::Light)[0];
        matchmaker.deregister(departed);
        for class in WORKLOAD_CLASSES {
            assert!(matchmaker.matching(class).binary_search(&departed).is_err());
            let direct = matchmaker
                .registry()
                .matching_providers(&QueryDescription::with_topic(class_topic(class), class));
            assert_eq!(matchmaker.matching(class), direct.as_slice());
        }
        // Deregistering again is a no-op.
        matchmaker.deregister(departed);

        // Re-registration (churn re-join) restores exactly the original
        // derivation: the matching lists match a from-scratch build.
        let agent = population
            .providers
            .values()
            .find(|p| p.id() == departed)
            .unwrap();
        matchmaker.register(agent);
        let fresh = ClassMatchmaker::new(&population);
        for class in WORKLOAD_CLASSES {
            assert_eq!(matchmaker.matching(class), fresh.matching(class));
        }
        // Idempotent.
        matchmaker.register(agent);
        for class in WORKLOAD_CLASSES {
            assert_eq!(matchmaker.matching(class), fresh.matching(class));
        }
    }

    #[test]
    fn sorted_intersection_matches_naive_filtering() {
        let shard: Vec<ProviderId> = [1u32, 4, 5, 9, 12].map(ProviderId::new).into();
        let matching: Vec<ProviderId> = [0u32, 4, 6, 9, 10, 12, 20].map(ProviderId::new).into();
        let mut out = Vec::new();
        intersect_sorted(&shard, &matching, &mut out);
        assert_eq!(out, [4u32, 9, 12].map(ProviderId::new).to_vec());

        intersect_sorted(&shard, &[], &mut out);
        assert!(out.is_empty());
        intersect_sorted(&[], &matching, &mut out);
        assert!(out.is_empty());
        intersect_sorted(&shard, &shard, &mut out);
        assert_eq!(out, shard);
    }
}
