//! The named scenario-campaign matrix behind `BENCH_campaign.json`.
//!
//! A campaign runs every named [`Scenario`] of [`scenarios`] against the
//! paper's three allocation methods ([`Method::PAPER_METHODS`]) on one
//! fixed, seeded configuration with autonomous departures enabled — the
//! Table 3 setup, extended from "how many participants leave under a
//! steady load" to "what does retention, satisfaction and load balance
//! look like under flash crowds, diurnal cycles, correlated churn and
//! hostile transport". Every entry carries the run's bit-exact report
//! digest; `BENCH_campaign.json` at the repository root is the committed
//! record, and the `campaign` binary re-runs the matrix and fails on any
//! digest drift (the same regression discipline `perf_gate` applies to
//! throughput).
//!
//! The workspace vendors no JSON library, so the file is rendered and
//! parsed here; the format is owned by this module and pinned by
//! round-trip tests.

use sqlb_agents::{EnabledReasons, ProviderDepartureRule};
use sqlb_types::SqlbError;

use crate::config::{Method, SimulationConfig};
use crate::engine::Simulator;
use crate::scenario::{ArrivalModifier, ChurnGroup, RejoinPolicy, Scenario, TransportFault};
use crate::stats::SimulationReport;
use crate::workload::WorkloadPattern;

/// Consumers in the campaign population.
pub const CONSUMERS: u32 = 32;
/// Providers in the campaign population.
pub const PROVIDERS: u32 = 64;
/// Virtual duration of one campaign run, in seconds.
pub const DURATION_SECS: f64 = 600.0;
/// Workload fraction of the campaign runs.
pub const WORKLOAD: f64 = 0.5;
/// Seed of every campaign run.
pub const SEED: u64 = 11;
/// Host partition the campaign's transport faults are expressed in.
pub const SOCKET_HOSTS: usize = 4;

/// The fixed configuration every campaign entry runs under (only the
/// scenario and the allocation method vary across the matrix).
pub fn base_config() -> SimulationConfig {
    SimulationConfig::scaled(CONSUMERS, PROVIDERS, DURATION_SECS, SEED)
        .with_workload(WorkloadPattern::Fixed(WORKLOAD))
        .with_socket_hosts(SOCKET_HOSTS)
        .with_provider_departures(ProviderDepartureRule::with_enabled(
            EnabledReasons::DISSATISFACTION_AND_STARVATION,
        ))
        .with_consumer_departures(Default::default())
}

/// The named scenarios of the campaign, in matrix order: a steady
/// baseline, two arrival reshapings (flash crowd, diurnal cycle), the
/// two re-join semantics of correlated churn, and two transport faults
/// (a temporary stall, a permanent drop).
pub fn scenarios() -> Vec<Scenario> {
    let mut flash_crowd = Scenario::steady("flash-crowd");
    flash_crowd.arrival.push(ArrivalModifier::Burst {
        at_secs: 120.0,
        duration_secs: 60.0,
        multiplier: 6.0,
    });

    let mut diurnal = Scenario::steady("diurnal");
    diurnal.arrival.push(ArrivalModifier::Diurnal {
        period_secs: 300.0,
        amplitude: 0.6,
    });

    let churn = |name: &str, rejoin: RejoinPolicy| {
        let mut scenario = Scenario::steady(name);
        scenario.churn.push(ChurnGroup {
            fraction: 0.25,
            depart_at_secs: 150.0,
            rejoin_at_secs: Some(300.0),
            rejoin,
        });
        scenario
    };

    let mut stalled_host = Scenario::steady("stalled-host");
    stalled_host.faults.push(TransportFault::StallHost {
        host: 1,
        from_secs: 100.0,
        until_secs: 200.0,
    });

    let mut dropped_host = Scenario::steady("dropped-host");
    dropped_host.faults.push(TransportFault::DropHost {
        host: 2,
        at_secs: 200.0,
    });

    vec![
        Scenario::steady("steady"),
        flash_crowd,
        diurnal,
        churn("churn-rejoin-resume", RejoinPolicy::Resume),
        churn("churn-rejoin-reset", RejoinPolicy::Reset),
        stalled_host,
        dropped_host,
    ]
}

/// One cell of the campaign matrix: the scenario × method pair, the
/// run's bit-exact digest and its headline readings.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignEntry {
    /// Scenario name.
    pub scenario: String,
    /// Allocation method name ([`Method::name`]).
    pub method: String,
    /// [`SimulationReport::digest`] of the run — the reproducibility
    /// pin.
    pub digest: u64,
    /// Queries issued by the run.
    pub issued_queries: u64,
    /// Queries completed by the run.
    pub completed_queries: u64,
    /// [`SimulationReport::provider_retention`]: the fraction of the
    /// initial providers still active at the end (reflects behavioral
    /// departures *and* scenario churn).
    pub retention: f64,
    /// Mean smoothed provider satisfaction of the survivors.
    pub satisfaction: f64,
    /// Min–max balance ratio of the survivors' final utilization
    /// (1.0 = perfectly balanced) — the imbalance reading.
    pub utilization_balance: f64,
    /// Providers taken down by scenario churn.
    pub churn_departures: u64,
    /// Providers brought back by scenario churn.
    pub churn_rejoins: u64,
    /// Replies degraded to indifference by the run's transport or the
    /// in-process fault hooks ([`SimulationReport::indifferent_replies`]).
    pub indifferent_replies: u64,
    /// Waves that completed with at least one degraded reply
    /// ([`SimulationReport::degraded_waves`]).
    pub degraded_waves: u64,
}

impl CampaignEntry {
    /// Builds the entry recording `report` for one matrix cell.
    pub fn from_report(report: &SimulationReport) -> Self {
        CampaignEntry {
            scenario: report.scenario.clone(),
            method: report.method.clone(),
            digest: report.digest(),
            issued_queries: report.issued_queries,
            completed_queries: report.completed_queries,
            retention: report.provider_retention(),
            satisfaction: report.final_provider_satisfaction.mean,
            utilization_balance: report.final_utilization.balance,
            churn_departures: report.churn_departures,
            churn_rejoins: report.churn_rejoins,
            indifferent_replies: report.indifferent_replies,
            degraded_waves: report.degraded_waves,
        }
    }
}

/// Runs one cell of the matrix.
pub fn run_entry(scenario: &Scenario, method: Method) -> Result<CampaignEntry, SqlbError> {
    let report = Simulator::with_scenario(base_config(), method, scenario)?.run();
    Ok(CampaignEntry::from_report(&report))
}

/// Runs the full matrix: every scenario × every paper method, in matrix
/// order.
pub fn run_campaign() -> Result<Vec<CampaignEntry>, SqlbError> {
    let mut entries = Vec::new();
    for scenario in scenarios() {
        for method in Method::PAPER_METHODS {
            entries.push(run_entry(&scenario, method)?);
        }
    }
    Ok(entries)
}

/// Runs the bounded smoke subset: every scenario under the SQLB method
/// only. The configurations are identical to the full matrix, so every
/// smoke digest must equal its committed counterpart — this is the CI
/// drift gate.
pub fn run_smoke() -> Result<Vec<CampaignEntry>, SqlbError> {
    let mut entries = Vec::new();
    for scenario in scenarios() {
        entries.push(run_entry(&scenario, Method::Sqlb)?);
    }
    Ok(entries)
}

/// 64-bit FNV-1a over the entry digests (in matrix order, keyed by
/// scenario and method names too): one number summarizing the whole
/// campaign, printed by the runner and recorded in the file header.
pub fn campaign_digest(entries: &[CampaignEntry]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for entry in entries {
        eat(entry.scenario.as_bytes());
        eat(entry.method.as_bytes());
        eat(&entry.digest.to_le_bytes());
    }
    hash
}

/// Renders the committed campaign file.
pub fn render_campaign(entries: &[CampaignEntry]) -> String {
    let mut out = String::from("{\n  \"campaign\": \"scenario_matrix\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"consumers\": {CONSUMERS}, \"providers\": {PROVIDERS}, \"duration_secs\": {DURATION_SECS}, \"workload\": {WORKLOAD}, \"seed\": {SEED}, \"socket_hosts\": {SOCKET_HOSTS}}},\n",
    ));
    out.push_str(&format!(
        "  \"campaign_digest\": \"{:#018x}\",\n",
        campaign_digest(entries)
    ));
    out.push_str("  \"entries\": [\n");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"method\": \"{}\", \"digest\": \"{:#018x}\", \
             \"issued_queries\": {}, \"completed_queries\": {}, \"retention\": {:.6}, \
             \"satisfaction\": {:.6}, \"utilization_balance\": {:.6}, \
             \"churn_departures\": {}, \"churn_rejoins\": {}, \
             \"indifferent_replies\": {}, \"degraded_waves\": {}}}{comma}\n",
            entry.scenario,
            entry.method,
            entry.digest,
            entry.issued_queries,
            entry.completed_queries,
            entry.retention,
            entry.satisfaction,
            entry.utilization_balance,
            entry.churn_departures,
            entry.churn_rejoins,
            entry.indifferent_replies,
            entry.degraded_waves,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One `"key": value` field of a rendered line (the same line-oriented
/// scanner the perf trajectory uses — the format is machine-written, one
/// entry per line).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start_matches([':', ' ', '"']);
    let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses a digest rendered as `"0x…"` hex.
fn parse_digest(value: &str) -> Option<u64> {
    u64::from_str_radix(value.trim_start_matches("0x"), 16).ok()
}

/// Parses a campaign file produced by [`render_campaign`]. Unparsable
/// lines are skipped (a missing or malformed file parses to an empty
/// matrix, which the checker reports as "everything missing").
pub fn parse_campaign(content: &str) -> Vec<CampaignEntry> {
    let mut entries = Vec::new();
    for line in content.lines() {
        if !line.contains("\"scenario\"") || !line.contains("\"digest\"") {
            continue;
        }
        let (Some(scenario), Some(method), Some(digest)) = (
            field(line, "\"scenario\""),
            field(line, "\"method\""),
            field(line, "\"digest\"").and_then(parse_digest),
        ) else {
            continue;
        };
        fn num<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
            field(line, key).and_then(|v| v.parse().ok())
        }
        entries.push(CampaignEntry {
            scenario: scenario.to_string(),
            method: method.to_string(),
            digest,
            issued_queries: num(line, "\"issued_queries\"").unwrap_or(0),
            completed_queries: num(line, "\"completed_queries\"").unwrap_or(0),
            retention: num(line, "\"retention\"").unwrap_or(0.0),
            satisfaction: num(line, "\"satisfaction\"").unwrap_or(0.0),
            utilization_balance: num(line, "\"utilization_balance\"").unwrap_or(0.0),
            churn_departures: num(line, "\"churn_departures\"").unwrap_or(0),
            churn_rejoins: num(line, "\"churn_rejoins\"").unwrap_or(0),
            indifferent_replies: num(line, "\"indifferent_replies\"").unwrap_or(0),
            degraded_waves: num(line, "\"degraded_waves\"").unwrap_or(0),
        });
    }
    entries
}

/// Compares freshly measured entries against the committed matrix and
/// returns the drift report (empty: no drift). Every measured cell must
/// exist in the committed file with the identical digest — the engine is
/// deterministic per seed, so *any* digest change is a behavioral change
/// that must be re-committed deliberately, never silently.
pub fn drift(current: &[CampaignEntry], committed: &[CampaignEntry]) -> Vec<String> {
    let mut failures = Vec::new();
    for entry in current {
        let Some(baseline) = committed
            .iter()
            .find(|c| c.scenario == entry.scenario && c.method == entry.method)
        else {
            failures.push(format!(
                "{} × {}: no committed baseline (run `campaign --write` to record it)",
                entry.scenario, entry.method
            ));
            continue;
        };
        if baseline.digest != entry.digest {
            failures.push(format!(
                "{} × {}: digest {:#018x} drifted from committed {:#018x} \
                 (issued {} vs {}, retention {:.4} vs {:.4})",
                entry.scenario,
                entry.method,
                entry.digest,
                baseline.digest,
                entry.issued_queries,
                baseline.issued_queries,
                entry.retention,
                baseline.retention,
            ));
        }
    }
    failures
}

/// Path of the committed campaign file (repo root).
pub fn campaign_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scenario: &str, method: &str, digest: u64) -> CampaignEntry {
        CampaignEntry {
            scenario: scenario.to_string(),
            method: method.to_string(),
            digest,
            issued_queries: 4242,
            completed_queries: 4200,
            retention: 0.953125,
            satisfaction: 0.512345,
            utilization_balance: 0.87,
            churn_departures: 16,
            churn_rejoins: 16,
            indifferent_replies: 24,
            degraded_waves: 7,
        }
    }

    #[test]
    fn the_matrix_scenarios_are_named_valid_and_cover_the_campaign_axes() {
        let config = base_config();
        let all = scenarios();
        assert!(all.len() >= 5, "a campaign needs at least five scenarios");
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        for scenario in &all {
            scenario.validate(&config).expect("campaign scenario");
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "scenario names must be unique");
        assert!(all.iter().any(|s| !s.arrival.is_empty()));
        assert!(all
            .iter()
            .any(|s| s.churn.iter().any(|g| g.rejoin_at_secs.is_some())));
        assert!(all.iter().any(|s| !s.faults.is_empty()));
    }

    #[test]
    fn campaign_file_round_trips_through_render_and_parse() {
        let entries = vec![
            entry("steady", "SQLB", 0xDEAD_BEEF_0BAD_F00D),
            entry("flash-crowd", "Mariposa-like", 1),
        ];
        let rendered = render_campaign(&entries);
        let parsed = parse_campaign(&rendered);
        assert_eq!(parsed, entries);
        // The recorded campaign digest matches the entries it covers.
        assert!(rendered.contains(&format!("{:#018x}", campaign_digest(&parsed))));
    }

    #[test]
    fn campaign_digest_tracks_entry_digests_and_order() {
        let a = vec![entry("steady", "SQLB", 1), entry("diurnal", "SQLB", 2)];
        let mut b = a.clone();
        assert_eq!(campaign_digest(&a), campaign_digest(&b));
        b[1].digest = 3;
        assert_ne!(campaign_digest(&a), campaign_digest(&b));
        let swapped = vec![a[1].clone(), a[0].clone()];
        assert_ne!(campaign_digest(&a), campaign_digest(&swapped));
    }

    #[test]
    fn drift_reports_missing_baselines_and_digest_changes_only() {
        let committed = vec![entry("steady", "SQLB", 10), entry("diurnal", "SQLB", 20)];
        assert!(drift(&committed, &committed).is_empty());

        let mut current = committed.clone();
        current[0].retention = 0.5; // readings may drift; the digest pins
        assert!(drift(&current, &committed).is_empty());

        current[1].digest = 21;
        current.push(entry("new-one", "SQLB", 30));
        let failures = drift(&current, &committed);
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("diurnal"));
        assert!(failures[1].contains("no committed baseline"));
    }
}
