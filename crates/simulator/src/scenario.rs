//! Declarative scenario descriptions: arrival-rate schedules, correlated
//! provider churn and transport faults as seeded, reproducible data.
//!
//! The paper evaluates the allocation methods under a steady Poisson ramp
//! (Figures 4–6); an open system instead faces diurnal cycles, flash
//! crowds, correlated churn with re-joins and degraded transport. A
//! [`Scenario`] names one such regime declaratively:
//!
//! * **arrival modifiers** reshape the base arrival rate over virtual
//!   time (diurnal sine, flash-crowd burst, linear ramp) without
//!   consuming extra randomness — the factor multiplies the Poisson rate
//!   inside the engine's inter-arrival draw;
//! * **churn groups** take a correlated fraction of the providers down
//!   at a scheduled instant and optionally bring them back, with an
//!   explicit [`RejoinPolicy`] answering "does a re-joining provider's
//!   satisfaction history resume or reset?" (see the policy docs for the
//!   committed answer);
//! * **transport faults** stall, drop or delay one participant host,
//!   keyed by the same host partition the socket backend uses
//!   (`raw id % socket_hosts`), so the in-process backends can model the
//!   identical fault and stay digest-comparable.
//!
//! Everything is driven from the deterministic seed and the virtual
//! clock — never from wall time — so a same-seed scenario run is
//! bit-identical, which is what lets `BENCH_campaign.json` pin campaign
//! digests the way `BENCH_allocation.json` pins perf.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlb_types::{ProviderId, SimTime, SqlbError};

use crate::config::SimulationConfig;

/// A multiplicative reshaping of the base arrival rate over virtual
/// time. Modifiers compose by multiplication ([`Scenario::rate_factor_at`]),
/// so a diurnal cycle and a flash crowd can overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModifier {
    /// A diurnal sine: factor `1 + amplitude · sin(2π · now / period)`.
    Diurnal {
        /// Period of one cycle in virtual seconds.
        period_secs: f64,
        /// Peak deviation from the base rate (`0.6` swings between 0.4×
        /// and 1.6×). Must stay within `[0, 1]` so the rate never goes
        /// negative.
        amplitude: f64,
    },
    /// A flash crowd: the rate jumps to `multiplier`× inside
    /// `[at_secs, at_secs + duration_secs)` and is untouched outside.
    Burst {
        /// Burst onset in virtual seconds.
        at_secs: f64,
        /// Burst length in virtual seconds.
        duration_secs: f64,
        /// Rate multiplier during the burst (e.g. `10.0` for a 10×
        /// crowd).
        multiplier: f64,
    },
    /// A linear ramp of the factor from `from` to `to` across the whole
    /// run.
    Ramp {
        /// Factor at `t = 0`.
        from: f64,
        /// Factor at `t = duration`.
        to: f64,
    },
}

impl ArrivalModifier {
    /// The modifier's rate factor at virtual time `now_secs` of a run
    /// lasting `duration_secs`.
    pub fn factor_at(&self, now_secs: f64, duration_secs: f64) -> f64 {
        match *self {
            ArrivalModifier::Diurnal {
                period_secs,
                amplitude,
            } => 1.0 + amplitude * (std::f64::consts::TAU * now_secs / period_secs).sin(),
            ArrivalModifier::Burst {
                at_secs,
                duration_secs: len,
                multiplier,
            } => {
                if now_secs >= at_secs && now_secs < at_secs + len {
                    multiplier
                } else {
                    1.0
                }
            }
            ArrivalModifier::Ramp { from, to } => {
                let progress = (now_secs / duration_secs).clamp(0.0, 1.0);
                from + (to - from) * progress
            }
        }
    }

    /// An upper bound of [`ArrivalModifier::factor_at`] over any run.
    pub fn max_factor(&self) -> f64 {
        match *self {
            ArrivalModifier::Diurnal { amplitude, .. } => 1.0 + amplitude,
            ArrivalModifier::Burst { multiplier, .. } => multiplier.max(1.0),
            ArrivalModifier::Ramp { from, to } => from.max(to),
        }
    }
}

/// What happens to a re-joining provider's satisfaction history.
///
/// This is the committed answer to the open semantic question: **by
/// default, history resumes.** The provider agent keeps its own
/// satisfaction trackers while away (departure only flags it inactive),
/// and the mediator's intention-based tracker is parked at churn-out and
/// absorbed back at re-join
/// ([`crate::shard::ShardRouter::churn_depart`] /
/// [`crate::shard::ShardRouter::readmit_provider`]) — a provider that
/// left dissatisfied comes back dissatisfied, which is what the paper's
/// departure model implies for a *temporary* disconnection. `Reset`
/// models a re-join as a fresh identity instead: both agent-side
/// trackers rebuild at the configured initial satisfaction and the
/// mediator registers the provider fresh. Under both policies the
/// utilization window and outstanding backlog are kept — work already
/// accepted is physical state and does not vanish with the bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejoinPolicy {
    /// Satisfaction history continues where it left off (the default).
    Resume,
    /// Satisfaction history restarts at the initial satisfaction.
    Reset,
}

/// A correlated churn group: a fraction of the providers that leaves
/// together and optionally re-joins together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnGroup {
    /// Fraction of the initial provider population in the group,
    /// `(0, 1]`. Membership is drawn from the scenario's seeded RNG at
    /// start-up (a partial Fisher–Yates over the provider ids), so it is
    /// reproducible and disjoint across groups.
    pub fraction: f64,
    /// When the group leaves, in virtual seconds.
    pub depart_at_secs: f64,
    /// When the group returns (`None`: it never does). Must be after
    /// `depart_at_secs`.
    pub rejoin_at_secs: Option<f64>,
    /// Re-join semantics for the group's satisfaction history.
    pub rejoin: RejoinPolicy,
}

/// A transport fault on one participant host, in the socket backend's
/// host partition (`raw id % socket_hosts`). On the in-process backends
/// the same fault is modeled at the mediation seam (skipped agent calls
/// / `Never` endpoint latencies), which is observably identical — both
/// degrade the host's replies to indifference — so Inline and Reactor
/// runs of a fault scenario stay digest-identical while the Socket run
/// exercises the genuine wire-level misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportFault {
    /// The host answers nothing in waves issued within
    /// `[from_secs, until_secs)`: each such wave pays the deadline and
    /// degrades the host's replies to indifference.
    StallHost {
        /// Faulted host index, `< socket_hosts`.
        host: usize,
        /// Fault onset in virtual seconds.
        from_secs: f64,
        /// Fault end in virtual seconds.
        until_secs: f64,
    },
    /// The host's connection drops mid-wave in the first wave issued at
    /// or after `at_secs` and stays down for the rest of the run: that
    /// wave's replies time out, and every later wave skips the host's
    /// endpoints at fan-out (instant indifference).
    DropHost {
        /// Faulted host index, `< socket_hosts`.
        host: usize,
        /// Drop instant in virtual seconds.
        at_secs: f64,
    },
    /// The host's replies lag by `delay_ms` in waves issued within
    /// `[from_secs, until_secs)`. A delay at or beyond the wave timeout
    /// behaves exactly like [`TransportFault::StallHost`]; a shorter one
    /// still makes the deadline and is absorbed by the wave semantics
    /// (no observable change to the report — pinned by tests).
    DelayHost {
        /// Faulted host index, `< socket_hosts`.
        host: usize,
        /// Fault onset in virtual seconds.
        from_secs: f64,
        /// Fault end in virtual seconds.
        until_secs: f64,
        /// Reply lag in milliseconds.
        delay_ms: u64,
    },
}

impl TransportFault {
    /// The faulted host index.
    pub fn host(&self) -> usize {
        match *self {
            TransportFault::StallHost { host, .. }
            | TransportFault::DropHost { host, .. }
            | TransportFault::DelayHost { host, .. } => host,
        }
    }
}

/// A named, declarative scenario: arrival reshaping, correlated churn
/// and transport faults, compiled into the engine's event queue at
/// start-up so same-seed runs stay bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The scenario's name (campaign entries are keyed by it).
    pub name: String,
    /// Arrival-rate modifiers, composed multiplicatively.
    pub arrival: Vec<ArrivalModifier>,
    /// Correlated churn groups.
    pub churn: Vec<ChurnGroup>,
    /// Transport faults.
    pub faults: Vec<TransportFault>,
}

impl Scenario {
    /// A scenario that changes nothing — the baseline row of a campaign
    /// matrix.
    pub fn steady(name: &str) -> Self {
        Scenario {
            name: name.to_string(),
            arrival: Vec::new(),
            churn: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// The product of all arrival modifiers at `now_secs`, clamped to be
    /// non-negative (a rate factor of zero silences arrivals; the
    /// engine's inter-arrival sampler returns infinity there and the
    /// next modifier window revives them).
    pub fn rate_factor_at(&self, now_secs: f64, duration_secs: f64) -> f64 {
        self.arrival
            .iter()
            .map(|m| m.factor_at(now_secs, duration_secs))
            .product::<f64>()
            .max(0.0)
    }

    /// An upper bound of [`Scenario::rate_factor_at`] over any instant
    /// of any run — the thinning envelope the engine samples candidate
    /// arrivals at. The bound is the product of the per-modifier maxima
    /// (each factor is non-negative, so the product of bounds bounds the
    /// product).
    pub fn max_rate_factor(&self) -> f64 {
        self.arrival.iter().map(|m| m.max_factor()).product()
    }

    /// Checks the scenario against a simulation configuration.
    pub fn validate(&self, config: &SimulationConfig) -> Result<(), SqlbError> {
        let invalid = |reason: String| SqlbError::InvalidConfig { reason };
        for modifier in &self.arrival {
            match *modifier {
                ArrivalModifier::Diurnal {
                    period_secs,
                    amplitude,
                } => {
                    if period_secs <= 0.0 {
                        return Err(invalid(format!(
                            "diurnal period must be positive, got {period_secs}"
                        )));
                    }
                    if !(0.0..=1.0).contains(&amplitude) {
                        return Err(invalid(format!(
                            "diurnal amplitude must be in [0, 1], got {amplitude}"
                        )));
                    }
                }
                ArrivalModifier::Burst {
                    duration_secs,
                    multiplier,
                    ..
                } => {
                    if duration_secs <= 0.0 || multiplier < 0.0 {
                        return Err(invalid(
                            "burst needs a positive duration and a non-negative multiplier"
                                .to_string(),
                        ));
                    }
                }
                ArrivalModifier::Ramp { from, to } => {
                    if from < 0.0 || to < 0.0 {
                        return Err(invalid("ramp factors must be non-negative".to_string()));
                    }
                }
            }
        }
        for group in &self.churn {
            if !(group.fraction > 0.0 && group.fraction <= 1.0) {
                return Err(invalid(format!(
                    "churn fraction must be in (0, 1], got {}",
                    group.fraction
                )));
            }
            if let Some(rejoin_at) = group.rejoin_at_secs {
                if rejoin_at <= group.depart_at_secs {
                    return Err(invalid(format!(
                        "churn re-join at {rejoin_at}s must come after departure at {}s",
                        group.depart_at_secs
                    )));
                }
            }
        }
        for fault in &self.faults {
            if fault.host() >= config.socket_hosts {
                return Err(invalid(format!(
                    "fault host {} out of range (socket_hosts = {})",
                    fault.host(),
                    config.socket_hosts
                )));
            }
            match *fault {
                TransportFault::StallHost {
                    from_secs,
                    until_secs,
                    ..
                }
                | TransportFault::DelayHost {
                    from_secs,
                    until_secs,
                    ..
                } => {
                    if until_secs <= from_secs {
                        return Err(invalid(format!(
                            "fault window [{from_secs}, {until_secs}) is empty"
                        )));
                    }
                }
                TransportFault::DropHost { .. } => {}
            }
        }
        Ok(())
    }

    /// Compiles the scenario for a run: draws the churn-group membership
    /// from a seeded RNG (salted so the base run's random streams are
    /// untouched) and freezes depart/re-join instants as virtual times.
    pub fn compile(&self, seed: u64, providers: &[ProviderId]) -> CompiledScenario {
        // splitmix64 over a scenario-only salt: the scenario draws must
        // not perturb (or correlate with) the engine's arrival RNG or
        // any shard method seed derived from the same run seed.
        let mut z = seed ^ 0x5CEA_A210_57A6_E5ED;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = StdRng::seed_from_u64(z ^ (z >> 31));

        // One partial Fisher–Yates pass over the provider ids; groups
        // take consecutive chunks of the shuffled prefix, so they are
        // disjoint by construction.
        let mut pool: Vec<ProviderId> = providers.to_vec();
        let takes: Vec<usize> = self
            .churn
            .iter()
            .map(|g| ((g.fraction * providers.len() as f64).round() as usize).max(1))
            .collect();
        let total: usize = takes.iter().sum::<usize>().min(pool.len());
        for i in 0..total {
            let j = i + rng.random_range(0..pool.len() - i);
            pool.swap(i, j);
        }
        let mut offset = 0;
        let groups = self
            .churn
            .iter()
            .zip(takes)
            .map(|(group, take)| {
                let take = take.min(pool.len().saturating_sub(offset));
                let mut members = pool[offset..offset + take].to_vec();
                offset += take;
                members.sort_unstable();
                CompiledChurnGroup {
                    members,
                    depart_at: SimTime::from_secs(group.depart_at_secs),
                    rejoin_at: group.rejoin_at_secs.map(SimTime::from_secs),
                    policy: group.rejoin,
                }
            })
            .collect();
        CompiledScenario {
            groups,
            faults: self.faults.clone(),
        }
    }
}

/// A churn group with its membership drawn and its schedule frozen
/// ([`Scenario::compile`]).
#[derive(Debug, Clone)]
pub struct CompiledChurnGroup {
    /// The group's providers, ascending by id.
    pub members: Vec<ProviderId>,
    /// Departure instant.
    pub depart_at: SimTime,
    /// Re-join instant, if the group returns.
    pub rejoin_at: Option<SimTime>,
    /// Re-join semantics.
    pub policy: RejoinPolicy,
}

/// The run-ready part of a scenario: churn groups with drawn membership
/// plus the fault list. Arrival modifiers need no compilation — the
/// engine evaluates [`Scenario::rate_factor_at`] directly.
#[derive(Debug, Clone, Default)]
pub struct CompiledScenario {
    /// Compiled churn groups, in scenario order.
    pub groups: Vec<CompiledChurnGroup>,
    /// The scenario's transport faults.
    pub faults: Vec<TransportFault>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<ProviderId> {
        (0..n).map(ProviderId::new).collect()
    }

    #[test]
    fn modifiers_compose_multiplicatively() {
        let mut s = Scenario::steady("s");
        assert_eq!(s.rate_factor_at(10.0, 100.0), 1.0);
        s.arrival.push(ArrivalModifier::Burst {
            at_secs: 5.0,
            duration_secs: 10.0,
            multiplier: 4.0,
        });
        s.arrival.push(ArrivalModifier::Ramp { from: 0.5, to: 1.5 });
        assert_eq!(s.rate_factor_at(0.0, 100.0), 0.5);
        // Inside the burst at mid-ramp-ish point: 4 × (0.5 + 0.1).
        let f = s.rate_factor_at(10.0, 100.0);
        assert!((f - 4.0 * 0.6).abs() < 1e-12, "got {f}");
        // Burst is half-open: its end instant is back to the ramp alone.
        assert!((s.rate_factor_at(15.0, 100.0) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn diurnal_swings_and_never_goes_negative() {
        let s = Scenario {
            name: "d".into(),
            arrival: vec![ArrivalModifier::Diurnal {
                period_secs: 100.0,
                amplitude: 1.0,
            }],
            churn: Vec::new(),
            faults: Vec::new(),
        };
        assert!((s.rate_factor_at(25.0, 1000.0) - 2.0).abs() < 1e-12);
        // sin(3π/2) = −1 → factor 0, clamped non-negative.
        assert!(s.rate_factor_at(75.0, 1000.0).abs() < 1e-12);
    }

    #[test]
    fn compile_is_deterministic_and_groups_are_disjoint() {
        let s = Scenario {
            name: "churny".into(),
            arrival: Vec::new(),
            churn: vec![
                ChurnGroup {
                    fraction: 0.25,
                    depart_at_secs: 10.0,
                    rejoin_at_secs: Some(20.0),
                    rejoin: RejoinPolicy::Resume,
                },
                ChurnGroup {
                    fraction: 0.25,
                    depart_at_secs: 30.0,
                    rejoin_at_secs: None,
                    rejoin: RejoinPolicy::Reset,
                },
            ],
            faults: Vec::new(),
        };
        let a = s.compile(7, &ids(32));
        let b = s.compile(7, &ids(32));
        assert_eq!(a.groups.len(), 2);
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.members, gb.members);
            assert_eq!(ga.members.len(), 8);
            assert!(ga.members.windows(2).all(|w| w[0] < w[1]));
        }
        let mut all: Vec<_> = a
            .groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16, "groups must not overlap");
        // A different seed draws a different membership.
        let c = s.compile(8, &ids(32));
        assert_ne!(a.groups[0].members, c.groups[0].members);
    }

    #[test]
    fn compile_handles_tiny_populations() {
        let s = Scenario {
            name: "tiny".into(),
            arrival: Vec::new(),
            churn: vec![ChurnGroup {
                fraction: 0.9,
                depart_at_secs: 1.0,
                rejoin_at_secs: Some(2.0),
                rejoin: RejoinPolicy::Resume,
            }],
            faults: Vec::new(),
        };
        let compiled = s.compile(3, &ids(1));
        assert_eq!(compiled.groups[0].members.len(), 1);
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        let config = SimulationConfig::scaled(8, 16, 10.0, 1);
        let mut s = Scenario::steady("ok");
        assert!(s.validate(&config).is_ok());

        s.churn.push(ChurnGroup {
            fraction: 0.0,
            depart_at_secs: 1.0,
            rejoin_at_secs: None,
            rejoin: RejoinPolicy::Resume,
        });
        assert!(s.validate(&config).is_err());
        s.churn.clear();

        s.churn.push(ChurnGroup {
            fraction: 0.5,
            depart_at_secs: 5.0,
            rejoin_at_secs: Some(4.0),
            rejoin: RejoinPolicy::Resume,
        });
        assert!(s.validate(&config).is_err());
        s.churn.clear();

        s.faults.push(TransportFault::StallHost {
            host: config.socket_hosts + 1,
            from_secs: 0.0,
            until_secs: 1.0,
        });
        assert!(s.validate(&config).is_err());
        s.faults.clear();

        s.faults.push(TransportFault::DelayHost {
            host: 0,
            from_secs: 5.0,
            until_secs: 5.0,
            delay_ms: 10,
        });
        assert!(s.validate(&config).is_err());
        s.faults.clear();

        s.arrival.push(ArrivalModifier::Diurnal {
            period_secs: 10.0,
            amplitude: 1.5,
        });
        assert!(s.validate(&config).is_err());
    }
}
