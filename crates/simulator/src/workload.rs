//! Workload patterns and the Poisson arrival process.
//!
//! "We assume that queries arrive to the system in a Poisson distribution,
//! as found in dynamic autonomous environments" (Section 6.1). The workload
//! intensity is expressed as a fraction of the *total system capacity*; the
//! captive experiments of Figure 4 ramp it uniformly from 30 % to 100 %
//! over the course of the run, while the response-time and autonomy
//! experiments use a fixed fraction per run.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the workload fraction evolves over the simulated time horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadPattern {
    /// A constant fraction of the total system capacity.
    Fixed(f64),
    /// A fraction that increases linearly from `from` to `to` over the run
    /// ("each \[experiment\] starts with a workload of 30 % that uniformly
    /// increases up to 100 % of the total system capacity").
    Ramp {
        /// Fraction at the start of the run.
        from: f64,
        /// Fraction at the end of the run.
        to: f64,
    },
}

impl WorkloadPattern {
    /// The paper's Figure 4 ramp (30 % → 100 %).
    pub fn paper_ramp() -> Self {
        WorkloadPattern::Ramp { from: 0.3, to: 1.0 }
    }

    /// The workload fraction at time `t` of a run lasting `duration`
    /// seconds. Clamped to be non-negative; fractions above 1 are allowed
    /// (overload experiments).
    pub fn fraction_at(&self, t_secs: f64, duration_secs: f64) -> f64 {
        let f = match *self {
            WorkloadPattern::Fixed(fraction) => fraction,
            WorkloadPattern::Ramp { from, to } => {
                if duration_secs <= 0.0 {
                    from
                } else {
                    let progress = (t_secs / duration_secs).clamp(0.0, 1.0);
                    from + (to - from) * progress
                }
            }
        };
        f.max(0.0)
    }

    /// The mean fraction over the whole run (used to size pre-allocated
    /// statistics buffers).
    pub fn mean_fraction(&self) -> f64 {
        match *self {
            WorkloadPattern::Fixed(fraction) => fraction.max(0.0),
            WorkloadPattern::Ramp { from, to } => ((from + to) / 2.0).max(0.0),
        }
    }
}

/// Converts a workload fraction into a query arrival rate (queries per
/// second): the fraction of the total capacity (work units per second)
/// divided by the mean query cost (work units per query).
pub fn arrival_rate(workload_fraction: f64, total_capacity: f64, mean_query_cost: f64) -> f64 {
    if mean_query_cost <= 0.0 {
        return 0.0;
    }
    (workload_fraction.max(0.0) * total_capacity / mean_query_cost).max(0.0)
}

/// Samples an exponential inter-arrival time for a Poisson process of the
/// given rate (queries per second). Returns `f64::INFINITY` when the rate
/// is zero (no arrivals).
pub fn sample_interarrival<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> f64 {
    if rate_per_sec <= 0.0 {
        return f64::INFINITY;
    }
    // Inverse-CDF sampling; `random::<f64>()` is in [0, 1), so `1 - u` is in
    // (0, 1] and the logarithm is finite.
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_pattern_is_constant() {
        let w = WorkloadPattern::Fixed(0.8);
        assert_eq!(w.fraction_at(0.0, 100.0), 0.8);
        assert_eq!(w.fraction_at(50.0, 100.0), 0.8);
        assert_eq!(w.mean_fraction(), 0.8);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let w = WorkloadPattern::paper_ramp();
        assert!((w.fraction_at(0.0, 10_000.0) - 0.3).abs() < 1e-12);
        assert!((w.fraction_at(5_000.0, 10_000.0) - 0.65).abs() < 1e-12);
        assert!((w.fraction_at(10_000.0, 10_000.0) - 1.0).abs() < 1e-12);
        // Beyond the end of the run the ramp saturates.
        assert!((w.fraction_at(20_000.0, 10_000.0) - 1.0).abs() < 1e-12);
        assert!((w.mean_fraction() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn ramp_with_zero_duration_uses_start() {
        let w = WorkloadPattern::Ramp { from: 0.4, to: 0.9 };
        assert_eq!(w.fraction_at(5.0, 0.0), 0.4);
    }

    #[test]
    fn negative_fractions_are_clamped() {
        let w = WorkloadPattern::Fixed(-0.5);
        assert_eq!(w.fraction_at(0.0, 1.0), 0.0);
        assert_eq!(w.mean_fraction(), 0.0);
    }

    #[test]
    fn arrival_rate_matches_paper_calibration() {
        // 400 paper providers: 120×100 + 240×33.33 + 40×14.29 ≈ 20 571 u/s.
        let total_capacity = 120.0 * 100.0 + 240.0 * (100.0 / 3.0) + 40.0 * (100.0 / 7.0);
        let rate = arrival_rate(1.0, total_capacity, 140.0);
        assert!((rate - total_capacity / 140.0).abs() < 1e-9);
        assert!(rate > 140.0 && rate < 150.0);
        // Zero mean cost degenerates to no arrivals instead of dividing by
        // zero.
        assert_eq!(arrival_rate(1.0, total_capacity, 0.0), 0.0);
    }

    #[test]
    fn interarrival_sampling_matches_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 20.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| sample_interarrival(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.005,
            "empirical mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn zero_rate_never_arrives() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_interarrival(&mut rng, 0.0).is_infinite());
        assert!(sample_interarrival(&mut rng, -3.0).is_infinite());
    }

    proptest! {
        #[test]
        fn prop_fraction_never_negative(t in 0.0f64..1e5, d in 1.0f64..1e5, from in -1.0f64..2.0, to in -1.0f64..2.0) {
            let w = WorkloadPattern::Ramp { from, to };
            prop_assert!(w.fraction_at(t, d) >= 0.0);
        }

        #[test]
        fn prop_interarrival_positive(seed in 0u64..1000, rate in 0.001f64..1000.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dt = sample_interarrival(&mut rng, rate);
            prop_assert!(dt >= 0.0);
            prop_assert!(dt.is_finite());
        }
    }
}
