//! The discrete-event simulation engine.
//!
//! The engine reproduces the mono-mediator system of Section 6.1: queries
//! arrive following a Poisson process whose intensity is a fraction of the
//! total system capacity, the mediator gathers intentions (and bids, for
//! the economic method) from the issuing consumer and every candidate
//! provider, the allocation method under test picks the providers, and the
//! selected providers treat the query on a FIFO queue bounded only by their
//! capacity. Metrics are sampled periodically; in autonomous experiments a
//! periodic assessment lets dissatisfied, starved or overutilized
//! participants leave the system.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlb_agents::Population;
use sqlb_core::allocation::{AllocationMethod, CandidateInfo};
use sqlb_core::MediatorState;
use sqlb_core::mediator_state::MediatorStateConfig;
use sqlb_metrics::{fairness, mean, Histogram, Summary};
use sqlb_reputation::ReputationStore;
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime, SqlbError};

use crate::config::{Method, SimulationConfig};
use crate::events::{Event, EventQueue};
use crate::stats::{ConsumerDepartureRecord, DepartureRecord, MetricSeries, SimulationReport};
use crate::workload::{arrival_rate, sample_interarrival};

/// The simulator for one `(configuration, method)` pair.
pub struct Simulator {
    config: SimulationConfig,
    method_kind: Method,
    method: Box<dyn AllocationMethod>,
    population: Population,
    mediator: MediatorState,
    reputation: ReputationStore,
    rng: StdRng,
    queue: EventQueue,
    /// Per-provider time at which its FIFO queue drains (seconds).
    busy_until: Vec<f64>,
    now: SimTime,
    next_query_id: u32,
    total_capacity: f64,
    initial_consumers: usize,
    initial_providers: usize,
    /// Consecutive assessments at which each provider's departure rule
    /// fired (the rule only takes effect after `required_consecutive`
    /// strikes).
    provider_strikes: Vec<u32>,
    /// Consecutive assessments at which each consumer's departure rule
    /// fired.
    consumer_strikes: Vec<u32>,
    // Statistics.
    series: MetricSeries,
    response_times: Histogram,
    issued: u64,
    completed: u64,
    unallocated: u64,
    provider_departures: Vec<DepartureRecord>,
    consumer_departures: Vec<ConsumerDepartureRecord>,
}

impl Simulator {
    /// Builds a simulator for the given configuration and allocation
    /// method.
    pub fn new(config: SimulationConfig, method: Method) -> Result<Self, SqlbError> {
        config.validate()?;
        let population = Population::generate(&config.population)?;
        let total_capacity = population.total_capacity();
        let initial_consumers = population.consumer_count();
        let initial_providers = population.provider_count();
        let mediator = MediatorState::new(MediatorStateConfig {
            consumer_window: config.population.consumer_config.memory,
            provider_proposed_window: config.population.provider_config.proposed_memory,
            provider_performed_window: config.population.provider_config.performed_memory,
            initial_satisfaction: config.population.provider_config.initial_satisfaction,
        });

        let mut sim = Simulator {
            method: method.build(config.seed),
            method_kind: method,
            population,
            mediator,
            reputation: ReputationStore::neutral(),
            rng: StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17)),
            queue: EventQueue::new(),
            busy_until: vec![0.0; initial_providers],
            provider_strikes: vec![0; initial_providers],
            consumer_strikes: vec![0; initial_consumers],
            now: SimTime::ZERO,
            next_query_id: 0,
            total_capacity,
            initial_consumers,
            initial_providers,
            series: MetricSeries::default(),
            response_times: Histogram::new(0.0, 120.0, 240),
            issued: 0,
            completed: 0,
            unallocated: 0,
            provider_departures: Vec::new(),
            consumer_departures: Vec::new(),
            config,
        };
        sim.schedule_initial_events();
        Ok(sim)
    }

    /// The allocation method under test.
    pub fn method(&self) -> Method {
        self.method_kind
    }

    /// Total system capacity (work units per second) at the start of the
    /// run.
    pub fn total_capacity(&self) -> f64 {
        self.total_capacity
    }

    fn schedule_initial_events(&mut self) {
        let first_arrival = self.next_interarrival();
        if first_arrival.is_finite() {
            self.queue
                .schedule(SimTime::from_secs(first_arrival), Event::QueryArrival);
        }
        self.queue.schedule(
            SimTime::from_secs(self.config.sample_interval_secs),
            Event::Sample,
        );
        self.queue.schedule(
            SimTime::from_secs(self.config.assessment_interval_secs),
            Event::Assessment,
        );
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimulationReport {
        while let Some((time, event)) = self.queue.pop() {
            if time.as_secs() > self.config.duration_secs {
                break;
            }
            self.now = time;
            match event {
                Event::QueryArrival => self.handle_arrival(),
                Event::QueryCompletion {
                    provider,
                    query: _,
                    issued_at,
                    work,
                } => self.handle_completion(provider, issued_at, work),
                Event::Sample => self.handle_sample(),
                Event::Assessment => self.handle_assessment(),
            }
        }
        self.finish()
    }

    fn workload_fraction(&self) -> f64 {
        self.config
            .workload
            .fraction_at(self.now.as_secs(), self.config.duration_secs)
    }

    fn active_consumers(&self) -> Vec<ConsumerId> {
        self.population
            .consumers
            .iter()
            .filter(|c| !c.has_departed())
            .map(|c| c.id())
            .collect()
    }

    fn active_providers(&self) -> Vec<ProviderId> {
        self.population
            .providers
            .iter()
            .filter(|p| !p.has_departed())
            .map(|p| p.id())
            .collect()
    }

    fn next_interarrival(&mut self) -> f64 {
        let active_consumers = self
            .population
            .consumers
            .iter()
            .filter(|c| !c.has_departed())
            .count();
        let consumer_fraction = if self.initial_consumers == 0 {
            0.0
        } else {
            active_consumers as f64 / self.initial_consumers as f64
        };
        let rate = arrival_rate(
            self.workload_fraction(),
            self.total_capacity,
            Population::mean_query_cost(),
        ) * consumer_fraction;
        sample_interarrival(&mut self.rng, rate)
    }

    fn schedule_next_arrival(&mut self) {
        let dt = self.next_interarrival();
        if dt.is_finite() {
            let at = self.now + sqlb_types::SimDuration::from_secs(dt);
            if at.as_secs() <= self.config.duration_secs {
                self.queue.schedule(at, Event::QueryArrival);
            }
        }
    }

    fn handle_arrival(&mut self) {
        // Always keep the arrival process alive (its rate follows the
        // workload pattern and the number of remaining consumers).
        self.schedule_next_arrival();

        let consumers = self.active_consumers();
        if consumers.is_empty() {
            return;
        }
        let consumer = consumers[self.rng.random_range(0..consumers.len())];
        let class = if self.rng.random_bool(0.5) {
            QueryClass::Light
        } else {
            QueryClass::Heavy
        };
        let mut query = Query::single(QueryId::new(self.next_query_id), consumer, class, self.now);
        query.n = self.config.query_n;
        self.next_query_id = self.next_query_id.wrapping_add(1);
        self.issued += 1;

        let candidates = self.active_providers();
        if candidates.is_empty() {
            self.unallocated += 1;
            return;
        }

        // Gather intentions (Algorithm 1, lines 2–5). The consumer's
        // intentions come from its preferences (and provider reputation);
        // each provider's intention balances its preference for the query
        // class against its current utilization.
        let uses_bids = self.method_kind.uses_bids();
        let now = self.now;
        let consumer_agent = &self.population.consumers[consumer.index()];
        let mut infos: Vec<CandidateInfo> = Vec::with_capacity(candidates.len());
        for &p in &candidates {
            let ci = consumer_agent.intention_for(&query, p, &self.reputation);
            let provider_agent = &mut self.population.providers[p.index()];
            let pi = provider_agent.intention_for(&query, now);
            let utilization = provider_agent.utilization(now).value();
            let mut info = CandidateInfo::new(p)
                .with_consumer_intention(ci)
                .with_provider_intention(pi)
                .with_utilization(utilization);
            if uses_bids {
                info = info.with_bid(provider_agent.bid_for(&query, now));
            }
            infos.push(info);
        }

        // Allocation decision (Algorithm 1, lines 6–9).
        let allocation = self.method.allocate(&query, &infos, &self.mediator);
        self.mediator.record_allocation(&query, &infos, &allocation);

        // Participant-side bookkeeping (the mediation result is sent to all
        // candidates, line 10).
        let shown_cis: Vec<f64> = infos.iter().map(|i| i.consumer_intention).collect();
        let selected_indices: Vec<usize> = infos
            .iter()
            .enumerate()
            .filter(|(_, i)| allocation.is_selected(i.provider))
            .map(|(idx, _)| idx)
            .collect();
        self.population.consumers[consumer.index()].record_allocation(
            &shown_cis,
            &selected_indices,
            query.n,
        );
        for info in &infos {
            let performed = allocation.is_selected(info.provider);
            self.population.providers[info.provider.index()].record_proposal(
                &query,
                info.provider_intention,
                performed,
            );
        }

        // Enqueue the query at the selected providers.
        for &p in &allocation.selected {
            let provider_agent = &mut self.population.providers[p.index()];
            let processing = provider_agent.assign(&query, now);
            let start = self.busy_until[p.index()].max(now.as_secs());
            let finish = start + processing.as_secs();
            self.busy_until[p.index()] = finish;
            self.queue.schedule(
                SimTime::from_secs(finish),
                Event::QueryCompletion {
                    provider: p,
                    query: query.id,
                    issued_at: query.issued_at,
                    work: query.cost(),
                },
            );
        }
    }

    fn handle_completion(
        &mut self,
        provider: ProviderId,
        issued_at: SimTime,
        work: sqlb_types::WorkUnits,
    ) {
        self.population.providers[provider.index()].complete(work);
        let response_time = (self.now - issued_at).as_secs();
        self.response_times.record(response_time);
        self.completed += 1;
    }

    fn handle_sample(&mut self) {
        let now = self.now;
        let mut sat_intention = Vec::new();
        let mut sat_preference = Vec::new();
        let mut alloc_sat_pref = Vec::new();
        let mut alloc_sat_int = Vec::new();
        let mut utilizations = Vec::new();
        for p in self.population.providers.iter_mut().filter(|p| !p.has_departed()) {
            // Figure 4(a) reports the provider's long-run feeling about the
            // queries it performs, so the smoothed (Table 2) reading is
            // plotted; the strict Definition 5 value drives departures.
            sat_intention.push(p.smoothed_satisfaction());
            sat_preference.push(p.preference_satisfaction());
            alloc_sat_pref.push(p.preference_allocation_satisfaction());
            alloc_sat_int.push(p.allocation_satisfaction());
            utilizations.push(p.utilization(now).value());
        }
        let mut consumer_alloc_sat = Vec::new();
        let mut consumer_sat = Vec::new();
        for c in self.population.consumers.iter().filter(|c| !c.has_departed()) {
            consumer_alloc_sat.push(c.allocation_satisfaction());
            consumer_sat.push(c.satisfaction());
        }

        let workload_fraction = self.workload_fraction();
        let s = &mut self.series;
        s.provider_satisfaction_intention_mean
            .push(now, mean(&sat_intention));
        s.provider_satisfaction_preference_mean
            .push(now, mean(&sat_preference));
        s.provider_allocation_satisfaction_preference_mean
            .push(now, mean(&alloc_sat_pref));
        s.provider_allocation_satisfaction_intention_mean
            .push(now, mean(&alloc_sat_int));
        s.provider_satisfaction_fairness
            .push(now, fairness(&sat_intention));
        s.consumer_allocation_satisfaction_mean
            .push(now, mean(&consumer_alloc_sat));
        s.consumer_satisfaction_mean.push(now, mean(&consumer_sat));
        s.consumer_satisfaction_fairness
            .push(now, fairness(&consumer_sat));
        s.utilization_mean.push(now, mean(&utilizations));
        s.utilization_fairness.push(now, fairness(&utilizations));
        s.workload_fraction.push(now, workload_fraction);
        s.active_providers.push(now, sat_intention.len() as f64);
        s.active_consumers.push(now, consumer_alloc_sat.len() as f64);

        let next = now.as_secs() + self.config.sample_interval_secs;
        if next <= self.config.duration_secs {
            self.queue.schedule(SimTime::from_secs(next), Event::Sample);
        }
    }

    fn handle_assessment(&mut self) {
        let now = self.now;
        let optimal_utilization = self.workload_fraction().max(0.05);

        // Departures are only assessed once the sliding utilization windows
        // and satisfaction memories have had time to fill; judging the
        // system on a cold start would make every method shed providers.
        let warmed_up = now.as_secs() >= self.config.departure_warmup_secs;

        if warmed_up && self.config.providers_may_leave {
            let rule = self.config.provider_departure;
            for idx in 0..self.population.providers.len() {
                let provider = &mut self.population.providers[idx];
                if provider.has_departed() {
                    continue;
                }
                let utilization = provider.utilization(now).value();
                let reason = rule.evaluate(
                    provider.strict_satisfaction(),
                    provider.adequation(),
                    utilization,
                    optimal_utilization,
                    provider.proposed_queries(),
                );
                match reason {
                    Some(reason) => {
                        self.provider_strikes[idx] += 1;
                        // Overutilization is already smoothed by the sliding
                        // utilization window, so it takes effect at the first
                        // assessment that observes it; dissatisfaction and
                        // starvation must persist across assessments.
                        let required = if reason == sqlb_agents::DepartureReason::Overutilization {
                            1
                        } else {
                            rule.required_consecutive.max(1)
                        };
                        if self.provider_strikes[idx] >= required {
                            provider.depart();
                            let id = provider.id();
                            self.mediator.remove_provider(id);
                            let profile = self.population.profiles[idx];
                            self.provider_departures.push(DepartureRecord {
                                provider: id,
                                time_secs: now.as_secs(),
                                reason,
                                profile,
                            });
                        }
                    }
                    None => self.provider_strikes[idx] = 0,
                }
            }
        }

        if warmed_up && self.config.consumers_may_leave {
            let rule = self.config.consumer_departure;
            for (idx, consumer) in self.population.consumers.iter_mut().enumerate() {
                if consumer.has_departed() {
                    continue;
                }
                let reason = rule.evaluate(
                    consumer.satisfaction(),
                    consumer.adequation(),
                    consumer.issued_queries(),
                );
                match reason {
                    Some(_) => {
                        self.consumer_strikes[idx] += 1;
                        if self.consumer_strikes[idx] >= rule.required_consecutive.max(1) {
                            consumer.depart();
                            let id = consumer.id();
                            self.mediator.remove_consumer(id);
                            self.consumer_departures.push(ConsumerDepartureRecord {
                                consumer: id,
                                time_secs: now.as_secs(),
                            });
                        }
                    }
                    None => self.consumer_strikes[idx] = 0,
                }
            }
        }

        let next = now.as_secs() + self.config.assessment_interval_secs;
        if next <= self.config.duration_secs {
            self.queue
                .schedule(SimTime::from_secs(next), Event::Assessment);
        }
    }

    fn finish(mut self) -> SimulationReport {
        let now = SimTime::from_secs(self.config.duration_secs);
        let utilizations: Vec<f64> = self
            .population
            .providers
            .iter_mut()
            .filter(|p| !p.has_departed())
            .map(|p| p.utilization(now).value())
            .collect();
        let provider_satisfaction: Vec<f64> = self
            .population
            .providers
            .iter()
            .filter(|p| !p.has_departed())
            .map(|p| p.smoothed_satisfaction())
            .collect();
        let consumer_satisfaction: Vec<f64> = self
            .population
            .consumers
            .iter()
            .filter(|c| !c.has_departed())
            .map(|c| c.satisfaction())
            .collect();

        SimulationReport {
            method: self.method_kind.name().to_string(),
            seed: self.config.seed,
            series: self.series,
            issued_queries: self.issued,
            completed_queries: self.completed,
            unallocated_queries: self.unallocated,
            response_times: self.response_times,
            provider_departures: self.provider_departures,
            consumer_departures: self.consumer_departures,
            initial_providers: self.initial_providers,
            initial_consumers: self.initial_consumers,
            final_utilization: Summary::of(&utilizations),
            final_provider_satisfaction: Summary::of(&provider_satisfaction),
            final_consumer_satisfaction: Summary::of(&consumer_satisfaction),
        }
    }
}

/// Convenience: builds and runs one simulation.
pub fn run_simulation(config: SimulationConfig, method: Method) -> Result<SimulationReport, SqlbError> {
    Ok(Simulator::new(config, method)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadPattern;
    use sqlb_agents::{EnabledReasons, ProviderDepartureRule};

    fn small_config(duration: f64, seed: u64) -> SimulationConfig {
        SimulationConfig::scaled(16, 32, duration, seed)
    }

    #[test]
    fn captive_run_completes_and_accounts_for_queries() {
        let report = run_simulation(
            small_config(300.0, 1).with_workload(WorkloadPattern::Fixed(0.5)),
            Method::Sqlb,
        )
        .unwrap();
        assert!(report.issued_queries > 100, "got {}", report.issued_queries);
        assert!(report.completed_queries > 0);
        assert!(report.completed_queries <= report.issued_queries);
        assert_eq!(report.unallocated_queries, 0);
        assert!(report.mean_response_time() > 0.0);
        assert!(report.provider_departures.is_empty());
        assert!(report.consumer_departures.is_empty());
        assert!(!report.series.utilization_mean.is_empty());
        assert_eq!(report.method, "SQLB");
    }

    #[test]
    fn runs_are_deterministic_for_a_given_seed() {
        let a = run_simulation(small_config(200.0, 3), Method::CapacityBased).unwrap();
        let b = run_simulation(small_config(200.0, 3), Method::CapacityBased).unwrap();
        assert_eq!(a.issued_queries, b.issued_queries);
        assert_eq!(a.completed_queries, b.completed_queries);
        assert_eq!(
            a.series.utilization_mean.values(),
            b.series.utilization_mean.values()
        );
        let c = run_simulation(small_config(200.0, 4), Method::CapacityBased).unwrap();
        assert_ne!(a.issued_queries, c.issued_queries);
    }

    #[test]
    fn all_methods_run_at_moderate_workload() {
        for method in [
            Method::Sqlb,
            Method::CapacityBased,
            Method::MariposaLike,
            Method::Random,
            Method::RoundRobin,
        ] {
            let report = run_simulation(
                small_config(150.0, 5).with_workload(WorkloadPattern::Fixed(0.6)),
                method,
            )
            .unwrap();
            assert!(report.issued_queries > 0, "{method:?} issued no query");
            assert!(
                report.completion_rate() > 0.5,
                "{method:?} completed only {}",
                report.completion_rate()
            );
        }
    }

    #[test]
    fn sqlb_satisfies_consumers_more_than_capacity_based() {
        let config = small_config(400.0, 11).with_workload(WorkloadPattern::Fixed(0.6));
        let sqlb = run_simulation(config, Method::Sqlb).unwrap();
        let capacity = run_simulation(config, Method::CapacityBased).unwrap();
        let sqlb_cas = sqlb
            .series
            .consumer_allocation_satisfaction_mean
            .last_value()
            .unwrap();
        let cap_cas = capacity
            .series
            .consumer_allocation_satisfaction_mean
            .last_value()
            .unwrap();
        assert!(
            sqlb_cas > 1.0,
            "SQLB should satisfy consumers (δas > 1), got {sqlb_cas}"
        );
        assert!(
            sqlb_cas > cap_cas,
            "SQLB {sqlb_cas} should beat Capacity based {cap_cas}"
        );
    }

    #[test]
    fn capacity_based_balances_load_best() {
        let config = small_config(400.0, 13).with_workload(WorkloadPattern::Fixed(0.7));
        let capacity = run_simulation(config, Method::CapacityBased).unwrap();
        let mariposa = run_simulation(config, Method::MariposaLike).unwrap();
        let cap_fair = capacity.series.utilization_fairness.mean_after(100.0);
        let mar_fair = mariposa.series.utilization_fairness.mean_after(100.0);
        assert!(
            cap_fair > mar_fair,
            "Capacity based fairness {cap_fair} should exceed Mariposa-like {mar_fair}"
        );
    }

    #[test]
    fn autonomous_run_records_departures() {
        let config = small_config(600.0, 17)
            .with_workload(WorkloadPattern::Fixed(0.8))
            .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL));
        let report = run_simulation(config, Method::MariposaLike).unwrap();
        assert!(
            !report.provider_departures.is_empty(),
            "Mariposa-like at 80% workload should lose providers"
        );
        assert!(report.provider_departure_fraction() <= 1.0);
        // Departed providers are reflected in the active-provider series.
        let last_active = report.series.active_providers.last_value().unwrap();
        assert!(last_active < report.initial_providers as f64);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = small_config(100.0, 0);
        config.duration_secs = -1.0;
        assert!(Simulator::new(config, Method::Sqlb).is_err());
    }
}
