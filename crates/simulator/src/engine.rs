//! The discrete-event simulation engine.
//!
//! The engine reproduces the system of Section 6.1, generalized to be
//! mediator-count-agnostic: queries arrive following a Poisson process
//! whose intensity is a fraction of the total system capacity, the
//! responsible mediator shard gathers intentions (and bids, for the
//! economic method) from the issuing consumer and every candidate provider
//! it owns, the allocation method under test picks the providers, and the
//! selected providers treat the query on a FIFO queue bounded only by
//! their capacity. Metrics are sampled periodically; in autonomous
//! experiments a periodic assessment lets dissatisfied, starved or
//! overutilized participants leave the system.
//!
//! With `mediator_shards = 1` (the default, and the paper's setup) a
//! single shard owns every provider and the engine is exactly the
//! mono-mediator pipeline. With `K > 1`, providers are partitioned across
//! `K` [`sqlb_core::Mediator`]s by the [`crate::shard::ShardRouter`],
//! queries route to the shard of their consumer, and a periodic
//! [`Event::SyncViews`] exchanges satisfaction digests between shards.
//!
//! All per-participant engine state (queue drain times, departure strikes)
//! lives in [`ParticipantTable`]s keyed by stable ids, never in vectors
//! indexed by a participant's initial position: a departure can therefore
//! never redirect state updates to the wrong survivor.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlb_agents::Population;
use sqlb_core::allocation::{CandidateInfo, MediatorView, SelectionSet};
use sqlb_core::mediator_state::MediatorStateConfig;
use sqlb_mediation::{
    run_wave_threaded, IntentionWave, Latency, ProviderAnswer, Reactor, RuntimeConfig,
};
use sqlb_metrics::{fairness, mean, spread, Histogram, Summary, TimeSeries};
use sqlb_obs::{Counter as ObsCounter, EventKind, Histogram as ObsHistogram, Obs};
use sqlb_reputation::ReputationStore;
use sqlb_transport::{HostFault, ServerConfig, SocketMediator, WaveJobs};
use sqlb_types::{
    ConsumerId, ParticipantTable, ProviderId, Query, QueryClass, QueryId, SimTime, SlotColumn,
    SqlbError,
};

use crate::config::{MediationMode, Method, SimulationConfig};
use crate::events::{Event, EventQueue};
use crate::matchmaking::{class_topic, intersect_sorted, ClassMatchmaker};
use crate::routing::{RoutingPolicy, ShardLoadView};
use crate::scenario::{CompiledChurnGroup, RejoinPolicy, Scenario, TransportFault};
use crate::shard::ShardRouter;
use crate::stats::{
    ConsumerDepartureRecord, DepartureRecord, MetricSeries, MigrationRecord, SimulationReport,
};
use crate::workload::{arrival_rate, sample_interarrival};

/// Reusable per-simulator buffers for the arrival hot path. Every arrival
/// used to allocate ~5 fresh vectors before computing a single intention;
/// with the arena, steady-state arrivals gather intentions, run the
/// allocation decision and record the outcome without touching the heap
/// (buffers grow to the candidate-set high-water mark and stay there).
#[derive(Debug, Default)]
struct ArrivalScratch {
    /// The filtered candidate set, when capability matchmaking is on.
    candidates: Vec<ProviderId>,
    /// Candidate information gathered for the current query (`P_q`).
    infos: Vec<CandidateInfo>,
    /// Consumer intentions shown over `P_q`, in candidate order.
    shown_cis: Vec<f64>,
    /// Indices into `infos` of the selected providers.
    selected_indices: Vec<usize>,
    /// Id-sorted index over the allocation's selected providers.
    selection: SelectionSet,
}

/// Pre-resolved engine-level observability instruments (`sqlb-obs`).
/// Resolved once at build time; when the run's [`Obs`] handle is
/// disabled every handle is a no-op, so each hot-path site pays a
/// single predictable branch and nothing else.
#[derive(Debug, Default)]
struct EngineMetrics {
    /// Queries issued by consumers (mirrors the report counter).
    queries_issued: ObsCounter,
    /// Queries whose results were delivered.
    queries_completed: ObsCounter,
    /// Queries no provider-bearing shard could take.
    queries_unallocated: ObsCounter,
    /// Replies degraded to indifference, unified across backends: wire
    /// timeouts and dead connections on the socket transport, the
    /// fabricated indifference of scenario-faulted endpoints on the
    /// in-process backends. One counter, whatever the backend — the
    /// per-backend split stays visible through the transport's own
    /// `replies_timed_out` and the scenario accounting.
    indifferent_replies: ObsCounter,
    /// Mediation waves that completed with at least one degraded reply.
    degraded_waves: ObsCounter,
    /// Providers taken down by scenario churn groups.
    churn_departures: ObsCounter,
    /// Providers brought back by scenario churn groups.
    churn_rejoins: ObsCounter,
    /// Cross-shard provider migrations performed by rebalancing.
    migrations: ObsCounter,
    /// Response-time distribution of completed queries (virtual
    /// seconds).
    response_time_seconds: ObsHistogram,
}

impl EngineMetrics {
    fn resolve(obs: &Obs) -> Self {
        EngineMetrics {
            queries_issued: obs.counter("queries_issued"),
            queries_completed: obs.counter("queries_completed"),
            queries_unallocated: obs.counter("queries_unallocated"),
            indifferent_replies: obs.counter("indifferent_replies"),
            degraded_waves: obs.counter("degraded_waves"),
            churn_departures: obs.counter("churn_departures"),
            churn_rejoins: obs.counter("churn_rejoins"),
            migrations: obs.counter("provider_migrations"),
            response_time_seconds: obs.histogram("response_time_seconds"),
        }
    }
}

/// Run state of an attached [`Scenario`]: the declarative description
/// (arrival modifiers are evaluated from it directly), the compiled
/// churn groups, the fault list with its one-shot drop bookkeeping, and
/// the accounting the report carries.
struct ScenarioState {
    description: Scenario,
    groups: Vec<CompiledChurnGroup>,
    /// Per churn group: the members this run actually took down (a
    /// member that had already departed behaviorally is skipped and
    /// must not re-join).
    departed_members: Vec<Vec<ProviderId>>,
    faults: Vec<TransportFault>,
    /// Per entry of `faults`: whether a [`TransportFault::DropHost`]
    /// already severed its connection. Socket backend only — the
    /// in-process backends derive the permanent post-drop condition
    /// from the virtual clock alone.
    drop_fired: Vec<bool>,
    churn_departures: u64,
    churn_rejoins: u64,
    /// Indifference fabricated for scenario-faulted endpoints on the
    /// in-process backends (the socket backend counts real wire
    /// timeouts instead — see
    /// [`SimulationReport::indifferent_replies`]).
    fault_indifference: u64,
}

/// The engine-side condition of one loopback host for the wave being
/// issued now, derived from the scenario's fault windows and the
/// virtual clock.
#[derive(Debug, Clone, Copy)]
enum HostCondition {
    /// No active fault.
    Healthy,
    /// Stalled, dropped, or delayed past the wave deadline: the host's
    /// replies degrade to indifference.
    Unresponsive,
    /// Delayed but inside the deadline: the reply still counts.
    Delayed(Duration),
}

impl HostCondition {
    /// The per-wave latency override modelling this condition on the
    /// in-process mediated backends (`None`: the endpoint's registered
    /// latency stands).
    fn latency_override(self) -> Option<Latency> {
        match self {
            HostCondition::Healthy => None,
            HostCondition::Unresponsive => Some(Latency::Never),
            HostCondition::Delayed(delay) => Some(Latency::After(delay)),
        }
    }
}

/// The fault condition of `host` for a wave issued at `now_secs`. The
/// worst active fault wins: `Unresponsive` beats a sub-deadline delay,
/// and a delay at or past the deadline *is* unresponsiveness.
fn host_condition_at(
    faults: &[TransportFault],
    host: usize,
    now_secs: f64,
    timeout_ms: u64,
) -> HostCondition {
    let mut condition = HostCondition::Healthy;
    for fault in faults {
        match *fault {
            TransportFault::StallHost {
                host: h,
                from_secs,
                until_secs,
            } if h == host && now_secs >= from_secs && now_secs < until_secs => {
                return HostCondition::Unresponsive;
            }
            TransportFault::DropHost { host: h, at_secs } if h == host && now_secs >= at_secs => {
                return HostCondition::Unresponsive;
            }
            TransportFault::DelayHost {
                host: h,
                from_secs,
                until_secs,
                delay_ms,
            } if h == host && now_secs >= from_secs && now_secs < until_secs => {
                if delay_ms >= timeout_ms {
                    return HostCondition::Unresponsive;
                }
                condition = HostCondition::Delayed(Duration::from_millis(delay_ms));
            }
            _ => {}
        }
    }
    condition
}

/// Per-host fault conditions of the wave being issued now, keyed by the
/// socket backend's host partition (`raw id % socket_hosts`). The
/// in-process backends model scenario transport faults against the
/// same partition, which is what keeps fault runs digest-comparable
/// across backends. An empty table means every host is healthy — the
/// common case, costing no allocation.
struct WaveConditions {
    hosts: Vec<HostCondition>,
}

impl WaveConditions {
    fn consumer(&self, id: ConsumerId) -> HostCondition {
        self.of_raw(id.raw())
    }

    fn provider(&self, id: ProviderId) -> HostCondition {
        self.of_raw(id.raw())
    }

    fn of_raw(&self, raw: u32) -> HostCondition {
        if self.hosts.is_empty() {
            HostCondition::Healthy
        } else {
            self.hosts[raw as usize % self.hosts.len()]
        }
    }
}

/// The mediation backend the engine gathers intentions through — the
/// runtime realization of [`MediationMode`]. All four backends ask the
/// same agents the same questions in the same per-participant order, so
/// reports are bit-identical across them for a given seed.
enum MediationDriver {
    /// Direct in-process calls on the arrival hot path (the default).
    Inline,
    /// One scoped OS thread per participant request, per arrival — the
    /// legacy thread-per-participant model, kept as the comparison
    /// backend.
    Threaded,
    /// The asynchronous reactor: the engine registers every participant
    /// as a polled endpoint at start-up, deregisters it on departure, and
    /// runs each arrival's gather as one reactor wave.
    Reactor(Box<Reactor>),
    /// The socket transport: a loopback wave server plus participant-host
    /// connections (`sqlb-transport`). Every arrival's gather crosses
    /// real TCP sockets as framed bytes; endpoints are announced at
    /// start-up and deregistered on departure, and a host whose last
    /// endpoint departs has its connection closed.
    Socket(Box<SocketMediator>),
}

/// One arrival of a coalesced socket wave, prepared (drawn, routed,
/// candidates resolved) but not yet mediated or allocated.
struct PreparedArrival {
    query: Query,
    shard: usize,
    /// The candidate set `P_q`, owned: the socket path clones it into
    /// the wave request anyway, and the batch outlives the borrow the
    /// per-arrival path gets away with.
    candidates: Vec<ProviderId>,
}

/// The simulator for one `(configuration, method)` pair.
pub struct Simulator {
    config: SimulationConfig,
    method_kind: Method,
    /// The mediation layer: one or more mediator shards plus the
    /// provider-to-shard assignment.
    router: ShardRouter,
    /// How arriving queries pick their preferred mediator shard.
    routing: Box<dyn RoutingPolicy>,
    /// Outstanding work (in work units) currently enqueued at providers of
    /// each shard — the load signal
    /// [`crate::routing::LeastLoadedRouting`] reads. Migrations and
    /// departures move a provider's outstanding backlog with it, so the
    /// totals stay consistent; tiny floating-point residue from the
    /// differing summation order can still leave a value fractionally
    /// negative, which readers clamp at zero.
    shard_backlog: Vec<f64>,
    /// Total provider capacity per shard (units per second), maintained
    /// incrementally on departures and migrations so routing never scans
    /// providers on the arrival path.
    shard_capacity: Vec<f64>,
    population: Population,
    reputation: ReputationStore,
    rng: StdRng,
    queue: EventQueue,
    /// Per-provider time at which its FIFO queue drains (seconds), keyed
    /// by stable provider id. A dense struct-of-arrays column (8 bytes
    /// per slot, no `Option` wrapper): departed providers just keep a
    /// stale drain time that is never read again.
    busy_until: SlotColumn<ProviderId, f64>,
    now: SimTime,
    next_query_id: u32,
    /// Tick counters of the periodic events. Every periodic occurrence is
    /// scheduled at `tick × interval` rather than `previous + interval`:
    /// repeated addition accumulates floating-point drift for non-dyadic
    /// intervals (e.g. 0.1 s), which can change how many samples or sync
    /// rounds a run performs. For dyadic intervals the two schedules are
    /// bit-identical, which keeps old seeds reproducible.
    next_sample_tick: u64,
    next_assessment_tick: u64,
    next_sync_tick: u64,
    next_rebalance_tick: u64,
    total_capacity: f64,
    initial_consumers: usize,
    initial_providers: usize,
    /// Consecutive assessments at which each provider's departure rule
    /// fired (the rule only takes effect after `required_consecutive`
    /// strikes). Dense columns like `busy_until`.
    provider_strikes: SlotColumn<ProviderId, u32>,
    /// Consecutive assessments at which each consumer's departure rule
    /// fired.
    consumer_strikes: SlotColumn<ConsumerId, u32>,
    // Statistics.
    series: MetricSeries,
    response_times: Histogram,
    issued: u64,
    completed: u64,
    unallocated: u64,
    provider_departures: Vec<DepartureRecord>,
    consumer_departures: Vec<ConsumerDepartureRecord>,
    /// Cross-shard provider migrations, in chronological order.
    migrations: Vec<MigrationRecord>,
    /// Rebalancing rounds evaluated (whether or not they migrated).
    rebalance_rounds: u64,
    /// Per-shard allocation counters as of the previous rebalancing round,
    /// so each round sees the mediation load of its own window only.
    allocations_at_last_rebalance: Vec<u64>,
    /// Per-provider performed-query counters as of the previous
    /// rebalancing round: the windowed difference is a provider's observed
    /// mediation throughput, the quantity the load-adaptive rule moves.
    performed_at_last_rebalance: ParticipantTable<ProviderId, u64>,
    /// Reusable arrival-path buffers (see [`ArrivalScratch`]).
    scratch: ArrivalScratch,
    /// The mediation backend intentions are gathered through.
    mediation: MediationDriver,
    /// The capability matchmaker (registry + cached per-class matching
    /// lists), when capability matchmaking is enabled (`None` reproduces
    /// the paper's all-providers candidate sets).
    matchmaker: Option<ClassMatchmaker>,
    /// Scenario run state (`None` for plain runs — the default).
    scenario: Option<ScenarioState>,
    /// The run's observability handle: live when
    /// [`SimulationConfig::observability`] is set, a no-op shell
    /// otherwise. Clones of it are planted in the mediator shards and
    /// the mediation backend at build time, so one snapshot covers the
    /// whole run.
    obs: Obs,
    /// Pre-resolved engine instruments (see [`EngineMetrics`]).
    metrics: EngineMetrics,
    /// Waves that completed with at least one reply degraded to
    /// indifference, on any backend — the report's `degraded_waves`.
    /// Plain engine accounting, maintained whether or not observability
    /// is on (like `issued`/`completed`).
    degraded_waves: u64,
    /// Socket-backend wire timeouts already folded into the unified
    /// indifference accounting (delta tracking against the transport's
    /// accumulated `timed_out_total`).
    socket_timeouts_seen: u64,
}

impl Simulator {
    /// Builds a simulator for the given configuration and allocation
    /// method.
    pub fn new(config: SimulationConfig, method: Method) -> Result<Self, SqlbError> {
        Self::build(config, method, None)
    }

    /// Builds a simulator executing `scenario` on top of the configured
    /// setup: arrival modifiers reshape the Poisson rate, churn groups
    /// are compiled into [`Event::ChurnDepart`]/[`Event::ChurnRejoin`]
    /// occurrences on the ordinary event queue, and transport faults
    /// degrade the affected hosts' replies on every mediation backend.
    /// Same seed, same scenario → bit-identical report.
    pub fn with_scenario(
        config: SimulationConfig,
        method: Method,
        scenario: &Scenario,
    ) -> Result<Self, SqlbError> {
        Self::build(config, method, Some(scenario))
    }

    fn build(
        config: SimulationConfig,
        method: Method,
        scenario: Option<&Scenario>,
    ) -> Result<Self, SqlbError> {
        config.validate()?;
        if let Some(scenario) = scenario {
            scenario.validate(&config)?;
        }
        let population = Population::generate(&config.population)?;
        let total_capacity = population.total_capacity();
        let initial_consumers = population.consumers.len();
        let initial_providers = population.providers.len();
        let state_config = MediatorStateConfig {
            consumer_window: config.population.consumer_config.memory,
            provider_proposed_window: config.population.provider_config.proposed_memory,
            provider_performed_window: config.population.provider_config.performed_memory,
            initial_satisfaction: config.population.provider_config.initial_satisfaction,
        };
        let mut router = ShardRouter::new(
            config.mediator_shards,
            method,
            config.seed,
            state_config,
            population.providers.keys(),
        );
        router.set_scoring_threads(config.scoring_threads);

        // Observation only: a disabled handle records nothing, an
        // enabled one observes without feeding anything back, so
        // same-seed reports are bit-identical either way (pinned by the
        // observability integration tests).
        let obs = Obs::when(config.observability);
        if obs.is_enabled() {
            for shard in 0..router.shard_count() {
                router.mediator_mut(shard).set_obs(&obs);
            }
        }

        // The wave deadline is only a guard on the simulated topologies
        // (in-process participants answer as soon as they are polled);
        // scenario fault runs shrink it so stalled hosts do not make
        // every wave pay the full default five seconds.
        let wave_timeout = Duration::from_millis(config.wave_timeout_ms);
        let mediation = match config.mediation {
            MediationMode::Inline => MediationDriver::Inline,
            MediationMode::Threaded => MediationDriver::Threaded,
            MediationMode::Reactor => {
                // The engine drives the reactor: every participant is
                // registered as a polled endpoint up front (a lightweight
                // profile, not a thread) and deregistered on departure.
                let mut reactor = Reactor::new(RuntimeConfig {
                    timeout: wave_timeout,
                    request_bids: method.uses_bids(),
                });
                for id in population.consumers.keys() {
                    reactor.register_consumer(id, Latency::Immediate);
                }
                for id in population.providers.keys() {
                    reactor.register_provider(id, Latency::Immediate);
                }
                reactor.set_obs(&obs);
                MediationDriver::Reactor(Box::new(reactor))
            }
            MediationMode::Socket => {
                // The engine hosts the whole loopback topology: a wave
                // server on 127.0.0.1 and `socket_hosts` participant-host
                // connections announcing the population's endpoints.
                let mut mediator = SocketMediator::loopback(
                    config.socket_hosts,
                    ServerConfig {
                        timeout: wave_timeout,
                        request_bids: method.uses_bids(),
                    },
                    population.consumers.keys(),
                    population.providers.keys(),
                )
                .map_err(|e| SqlbError::InvalidConfig {
                    reason: format!("socket mediation bring-up failed: {e}"),
                })?;
                mediator.set_obs(obs.clone());
                MediationDriver::Socket(Box::new(mediator))
            }
        };

        // Capability matchmaking (opt-in): derive the provider
        // capability registry and the per-class matching lists once;
        // candidate sets then intersect each shard's provider list with
        // the cached class list — no per-arrival registry scan.
        let matchmaker = config
            .capability_matchmaking
            .then(|| ClassMatchmaker::new(&population));

        // Compile the scenario against the generated population: churn
        // membership is drawn from the salted scenario RNG (the engine's
        // own random streams are untouched), schedules are frozen as
        // virtual times.
        let scenario = scenario.map(|s| {
            let providers: Vec<ProviderId> = population.providers.keys().collect();
            let compiled = s.compile(config.seed, &providers);
            ScenarioState {
                description: s.clone(),
                departed_members: vec![Vec::new(); compiled.groups.len()],
                drop_fired: vec![false; compiled.faults.len()],
                groups: compiled.groups,
                faults: compiled.faults,
                churn_departures: 0,
                churn_rejoins: 0,
                fault_indifference: 0,
            }
        });

        let routing = config.routing.build();
        let shard_backlog = vec![0.0f64; router.shard_count()];
        let shard_capacity: Vec<f64> = (0..router.shard_count())
            .map(|shard| {
                router
                    .providers_of_shard(shard)
                    .iter()
                    .map(|&p| population.providers[p].capacity().units_per_sec())
                    .sum()
            })
            .collect();
        let mut sim = Simulator {
            method_kind: method,
            router,
            routing,
            shard_backlog,
            shard_capacity,
            reputation: ReputationStore::neutral(),
            rng: StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17)),
            queue: EventQueue::new(),
            busy_until: SlotColumn::with_len(initial_providers, 0.0),
            provider_strikes: SlotColumn::with_len(initial_providers, 0),
            consumer_strikes: SlotColumn::with_len(initial_consumers, 0),
            now: SimTime::ZERO,
            next_query_id: 0,
            next_sample_tick: 1,
            next_assessment_tick: 1,
            next_sync_tick: 1,
            next_rebalance_tick: 1,
            total_capacity,
            initial_consumers,
            initial_providers,
            series: MetricSeries::default(),
            response_times: Histogram::new(0.0, 120.0, 240),
            issued: 0,
            completed: 0,
            unallocated: 0,
            provider_departures: Vec::new(),
            consumer_departures: Vec::new(),
            migrations: Vec::new(),
            rebalance_rounds: 0,
            allocations_at_last_rebalance: Vec::new(),
            performed_at_last_rebalance: ParticipantTable::new(),
            scratch: ArrivalScratch::default(),
            mediation,
            matchmaker,
            scenario,
            metrics: EngineMetrics::resolve(&obs),
            obs,
            degraded_waves: 0,
            socket_timeouts_seen: 0,
            population,
            config,
        };
        sim.schedule_initial_events();
        Ok(sim)
    }

    /// The allocation method under test.
    pub fn method(&self) -> Method {
        self.method_kind
    }

    /// Total system capacity (work units per second) at the start of the
    /// run.
    pub fn total_capacity(&self) -> f64 {
        self.total_capacity
    }

    /// The number of mediator shards this simulator runs.
    pub fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// The run's observability handle — disabled (a no-op shell) unless
    /// [`SimulationConfig::observability`] is set. Clone it *before*
    /// [`Simulator::run`] (which consumes the simulator) to snapshot
    /// counters or dump the flight recorder afterwards: every clone
    /// shares the same storage.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    fn schedule_initial_events(&mut self) {
        let first_arrival = self.next_interarrival();
        if first_arrival.is_finite() {
            self.queue
                .schedule(SimTime::from_secs(first_arrival), Event::QueryArrival);
        }
        // Periodic events are scheduled at `tick × interval` (see the tick
        // counter fields); the first occurrence is tick 1.
        self.queue.schedule(
            SimTime::from_secs(self.config.sample_interval_secs),
            Event::Sample,
        );
        self.queue.schedule(
            SimTime::from_secs(self.config.assessment_interval_secs),
            Event::Assessment,
        );
        // A mono-mediator run schedules no synchronization and no
        // rebalancing at all, keeping its event stream identical to the
        // pre-sharding engine.
        if self.router.shard_count() > 1 {
            self.queue.schedule(
                SimTime::from_secs(self.config.sync_interval_secs),
                Event::SyncViews,
            );
            if self.config.migration_enabled {
                self.queue.schedule(
                    SimTime::from_secs(self.config.rebalance_interval_secs),
                    Event::Rebalance,
                );
            }
        }
        // Scenario churn is compiled into the same queue, so same-seed
        // runs pop the identical event sequence; occurrences beyond the
        // horizon are dropped like any other event.
        if let Some(state) = &self.scenario {
            for (group, compiled) in state.groups.iter().enumerate() {
                if compiled.depart_at.as_secs() <= self.config.duration_secs {
                    self.queue
                        .schedule(compiled.depart_at, Event::ChurnDepart { group });
                }
                if let Some(rejoin_at) = compiled.rejoin_at {
                    if rejoin_at.as_secs() <= self.config.duration_secs {
                        self.queue.schedule(rejoin_at, Event::ChurnRejoin { group });
                    }
                }
            }
        }
    }

    /// Schedules the next occurrence of a periodic event from its tick
    /// counter: occurrence `tick` runs at `tick × interval`, so the
    /// schedule never accumulates floating-point drift no matter how many
    /// rounds have passed.
    fn schedule_periodic(
        queue: &mut EventQueue,
        duration_secs: f64,
        next_tick: &mut u64,
        interval_secs: f64,
        event: Event,
    ) {
        *next_tick += 1;
        let at = *next_tick as f64 * interval_secs;
        if at <= duration_secs {
            queue.schedule(SimTime::from_secs(at), event);
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimulationReport {
        while let Some((time, event)) = self.queue.pop() {
            if time.as_secs() > self.config.duration_secs {
                break;
            }
            self.now = time;
            match event {
                Event::QueryArrival => self.handle_arrival(),
                Event::QueryCompletion {
                    provider,
                    query: _,
                    issued_at,
                    work,
                } => self.handle_completion(provider, issued_at, work),
                Event::Sample => self.handle_sample(),
                Event::Assessment => self.handle_assessment(),
                Event::SyncViews => self.handle_sync(),
                Event::Rebalance => self.handle_rebalance(),
                Event::ChurnDepart { group } => self.handle_churn_depart(group),
                Event::ChurnRejoin { group } => self.handle_churn_rejoin(group),
            }
        }
        self.finish()
    }

    fn workload_fraction(&self) -> f64 {
        self.config
            .workload
            .fraction_at(self.now.as_secs(), self.config.duration_secs)
    }

    fn next_interarrival(&mut self) -> f64 {
        // The active-consumer count is maintained incrementally by the
        // population (updated only on departure) — no per-draw scan.
        let active_consumers = self.population.active_consumer_count();
        let consumer_fraction = if self.initial_consumers == 0 {
            0.0
        } else {
            active_consumers as f64 / self.initial_consumers as f64
        };
        let rate = arrival_rate(
            self.workload_fraction(),
            self.total_capacity,
            Population::mean_query_cost(),
        ) * consumer_fraction;
        match &self.scenario {
            Some(state) if !state.description.arrival.is_empty() => {
                // Thinning (Lewis–Shedler): candidate arrivals are drawn
                // at the scenario's envelope rate and accepted with
                // probability `factor(t) / max`, so the modifier shape is
                // honoured at the *candidate's* instant — a burst ramps
                // on at its exact onset, and arrivals revive by
                // themselves after a zero-factor window. Plain runs
                // (no scenario) take the single-draw path below and keep
                // their historical random stream bit-for-bit.
                let max = state.description.max_rate_factor();
                if rate <= 0.0 || max <= 0.0 {
                    return f64::INFINITY;
                }
                let duration = self.config.duration_secs;
                let start = self.now.as_secs();
                let mut t = start;
                loop {
                    let dt = sample_interarrival(&mut self.rng, rate * max);
                    if !dt.is_finite() {
                        return f64::INFINITY;
                    }
                    t += dt;
                    if t > duration {
                        // Past the horizon the event would be dropped
                        // anyway; stop consuming random draws.
                        return f64::INFINITY;
                    }
                    let accept = state.description.rate_factor_at(t, duration) / max;
                    if accept >= 1.0 || self.rng.random_bool(accept.clamp(0.0, 1.0)) {
                        return t - start;
                    }
                }
            }
            _ => sample_interarrival(&mut self.rng, rate),
        }
    }

    fn schedule_next_arrival(&mut self) {
        let dt = self.next_interarrival();
        if dt.is_finite() {
            let at = self.now + sqlb_types::SimDuration::from_secs(dt);
            if at.as_secs() <= self.config.duration_secs {
                self.queue.schedule(at, Event::QueryArrival);
            }
        }
    }

    /// The preferred shard if it still has active providers, otherwise the
    /// next shard (in wrap-around order) that does. `None` only when every
    /// provider of the whole system has departed. With one shard this
    /// reduces to "the shard, or nothing" — the mono-mediator behaviour.
    ///
    /// The candidate set of a shard is its router-maintained provider
    /// list: providers are removed from it exactly when they depart, so
    /// the list always equals "the shard's providers that have not
    /// departed, ascending" without any per-arrival filtering.
    fn first_shard_with_candidates(&self, preferred: usize) -> Option<usize> {
        let shard_count = self.router.shard_count();
        (0..shard_count)
            .map(|offset| (preferred + offset) % shard_count)
            .find(|&shard| !self.router.providers_of_shard(shard).is_empty())
    }

    fn handle_arrival(&mut self) {
        // The socket backend coalesces every arrival landing on this same
        // virtual instant into one multi-query wave (when the knob is on
        // and routing is load-blind — a load-reactive policy reads
        // allocation state between arrivals, so its runs stay strictly
        // sequential. With a single shard, though, every route is shard 0
        // no matter what the policy observes, so least-loaded K = 1 runs
        // keep the batched fan-out instead of needlessly degrading to one
        // wave per arrival).
        if matches!(self.mediation, MediationDriver::Socket(_))
            && self.config.socket_wave_coalescing
            && (!self.routing.reacts_to_load() || self.router.shard_count() == 1)
        {
            return self.handle_socket_arrivals();
        }

        // Always keep the arrival process alive (its rate follows the
        // workload pattern and the number of remaining consumers).
        self.schedule_next_arrival();

        // The active-consumer index presents the surviving consumers in
        // ascending id order — the same sequence the per-arrival
        // filter-and-collect used to produce, so the random draw picks the
        // same consumer for the same seed.
        let consumers = self.population.active_consumer_ids();
        if consumers.is_empty() {
            return;
        }
        let consumer = consumers[self.rng.random_range(0..consumers.len())];
        let class = if self.rng.random_bool(0.5) {
            QueryClass::Light
        } else {
            QueryClass::Heavy
        };
        let mut query = Query::single(QueryId::new(self.next_query_id), consumer, class, self.now);
        query.n = self.config.query_n;
        if self.matchmaker.is_some() {
            // Capability matchmaking matches on the description topic;
            // tag the query with its class topic so providers' declared
            // class capabilities can cover it.
            query.description.topic = class_topic(class);
        }
        self.next_query_id = self.next_query_id.wrapping_add(1);
        self.issued += 1;
        self.metrics.queries_issued.inc();

        // Route the query to its mediator shard; the candidate set is the
        // providers that shard owns. Routing is deterministic (a pure
        // function of the consumer id and the observed per-shard load), so
        // a mono-mediator run consumes exactly the same random stream as
        // the pre-sharding engine. A query is only unallocated when *no*
        // shard has an active provider left: departures can empty one
        // shard while the system still has capacity, in which case the
        // query falls over to the next non-empty shard (deterministically,
        // so runs stay reproducible).
        let preferred = self.routing.route(
            consumer,
            &self.router,
            ShardLoadView {
                backlog: &self.shard_backlog,
                capacity: &self.shard_capacity,
            },
        );
        let Some(shard) = self.first_shard_with_candidates(preferred) else {
            self.unallocated += 1;
            self.metrics.queries_unallocated.inc();
            return;
        };

        // Gather intentions (Algorithm 1, lines 2–5) into the reusable
        // arena. The consumer's intentions come from its preferences (and
        // provider reputation); each provider's intention balances its
        // preference for the query class against its current utilization
        // (computed once and reused for the mediator's view of `Ut(p)`).
        // The mediated backends run the exact same per-participant
        // computations, only multiplexed through a mediation wave instead
        // of direct calls — which is why reports are bit-identical across
        // backends for a given seed.
        // The transport-fault seam: the condition of every loopback host
        // for a wave issued at this instant (all-healthy outside scenario
        // fault windows), plus the wire-fault plan when the wave really
        // crosses sockets. A fault models the *reply* going missing, not
        // the work: every backend degrades a faulted host's answers to
        // the same indifference the wave timeout semantics fabricate.
        // (Resolved before the candidate set borrows the router.)
        let conditions = self.wave_conditions();
        let fault_plan = if matches!(self.mediation, MediationDriver::Socket(_)) {
            self.socket_fault_plan()
        } else {
            Vec::new()
        };

        // The candidate set `P_q`: the shard's provider list, optionally
        // narrowed by capability matchmaking to the providers whose
        // declared capabilities cover the query's description. An empty
        // filtered set falls back to the whole shard — a query must not
        // be dropped while capable-ish providers remain (documented
        // fall-back of the opt-in mode).
        let shard_providers = self.router.providers_of_shard(shard);
        let candidates: &[ProviderId] = match &self.matchmaker {
            None => shard_providers,
            Some(matchmaker) => {
                let matching = matchmaker.matching(query.class());
                intersect_sorted(shard_providers, matching, &mut self.scratch.candidates);
                if self.scratch.candidates.is_empty() {
                    shard_providers
                } else {
                    &self.scratch.candidates
                }
            }
        };

        let uses_bids = self.method_kind.uses_bids();
        let now = self.now;
        let wave_timeout = Duration::from_millis(self.config.wave_timeout_ms);
        let mut fabricated = 0u64;
        let mut wire_timeouts = 0u64;
        match &mut self.mediation {
            MediationDriver::Inline => {
                let consumer_agent = &self.population.consumers[consumer];
                let infos = &mut self.scratch.infos;
                infos.clear();
                let consumer_down =
                    matches!(conditions.consumer(consumer), HostCondition::Unresponsive);
                if consumer_down {
                    fabricated += 1;
                }
                for &p in candidates {
                    // Mirror the mediated indifference exactly: consumer
                    // intentions 0.0 when the consumer's host is down,
                    // provider intention/utilization 0.0 and no bid when
                    // the provider's is. The skipped agent calls are pure
                    // reads, so skipping them is unobservable elsewhere.
                    let ci = if consumer_down {
                        0.0
                    } else {
                        consumer_agent.intention_for(&query, p, &self.reputation)
                    };
                    if matches!(conditions.provider(p), HostCondition::Unresponsive) {
                        fabricated += 1;
                        infos.push(
                            CandidateInfo::new(p)
                                .with_consumer_intention(ci)
                                .with_provider_intention(0.0)
                                .with_utilization(0.0),
                        );
                        continue;
                    }
                    let provider_agent = &mut self.population.providers[p];
                    let (pi, utilization) = provider_agent.intention_and_utilization(&query, now);
                    let mut info = CandidateInfo::new(p)
                        .with_consumer_intention(ci)
                        .with_provider_intention(pi)
                        .with_utilization(utilization);
                    if uses_bids {
                        info = info.with_bid(provider_agent.bid_for(&query, now));
                    }
                    infos.push(info);
                }
            }
            MediationDriver::Socket(socket) => {
                // One wave over real loopback sockets: the request is
                // framed, fanned out by the wave server, decoded by the
                // participant-host threads, and answered by jobs that
                // compute the same Definition 7/8 values as the other
                // backends — on the *decoded* queries, so the reply
                // derives from the bytes that actually travelled.
                let consumer_agent = &self.population.consumers[consumer];
                let reputation = &self.reputation;
                let mut jobs = WaveJobs::new();
                jobs.consumer(consumer, move |decoded| {
                    decoded
                        .iter()
                        .map(|(q, cands)| {
                            (
                                q.id,
                                cands
                                    .iter()
                                    .map(|&p| (p, consumer_agent.intention_for(q, p, reputation)))
                                    .collect(),
                            )
                        })
                        .collect()
                });
                for (p, agent) in self.population.providers.iter_mut_of(candidates) {
                    jobs.provider(p, move |decoded, request_bids| {
                        decoded
                            .iter()
                            .map(|q| {
                                let (intention, utilization) =
                                    agent.intention_and_utilization(q, now);
                                ProviderAnswer {
                                    query: q.id,
                                    intention,
                                    utilization,
                                    bid: request_bids.then(|| agent.bid_for(q, now)),
                                }
                            })
                            .collect()
                    });
                }
                let requests = [(query.clone(), candidates.to_vec())];
                let gathered = socket.gather_with_faults(&requests, jobs, &fault_plan);
                // The wave's wire timeouts (delta of the accumulated
                // total): the unified indifference accounting below
                // treats them exactly like the indifference the
                // in-process backends fabricate.
                wire_timeouts = socket.timed_out_total() - self.socket_timeouts_seen;
                self.socket_timeouts_seen = socket.timed_out_total();
                let infos = &mut self.scratch.infos;
                infos.clear();
                infos.extend(gathered.into_iter().flatten());
            }
            driver => {
                // One wave: a batched intention request to the issuing
                // consumer (covering all candidates) and one request per
                // candidate provider, with per-endpoint deadline tracking.
                let consumer_agent = &self.population.consumers[consumer];
                let reputation = &self.reputation;
                let query_ref = &query;
                let mut wave = IntentionWave::new();
                // Scenario faults ride in as per-wave latency overrides:
                // an unresponsive host's endpoints miss the deadline
                // (`Never`), a delayed host's lag by the configured
                // amount — the wave machinery then fabricates the exact
                // indifference the inline backend models directly.
                let consumer_condition = conditions.consumer(consumer);
                if matches!(consumer_condition, HostCondition::Unresponsive) {
                    fabricated += 1;
                }
                wave.consumer(consumer, consumer_condition.latency_override(), move || {
                    vec![(
                        query_ref.id,
                        candidates
                            .iter()
                            .map(|&p| (p, consumer_agent.intention_for(query_ref, p, reputation)))
                            .collect(),
                    )]
                });
                // The shard's candidate list is ascending, so the table
                // hands out one disjoint `&mut` per candidate agent in
                // O(candidates) — the wave never walks the rest of the
                // population.
                for (p, agent) in self.population.providers.iter_mut_of(candidates) {
                    let condition = conditions.provider(p);
                    if matches!(condition, HostCondition::Unresponsive) {
                        fabricated += 1;
                    }
                    wave.provider(p, condition.latency_override(), move || {
                        let (intention, utilization) =
                            agent.intention_and_utilization(query_ref, now);
                        vec![ProviderAnswer {
                            query: query_ref.id,
                            intention,
                            utilization,
                            bid: uses_bids.then(|| agent.bid_for(query_ref, now)),
                        }]
                    });
                }

                let replies = match driver {
                    MediationDriver::Threaded => run_wave_threaded(wave, wave_timeout),
                    MediationDriver::Reactor(reactor) => reactor.run_wave(wave),
                    MediationDriver::Inline | MediationDriver::Socket(_) => {
                        unreachable!("inline and socket are handled above")
                    }
                };

                // Assemble the wave's replies through the shared helper
                // (replies keyed by (query, provider), indifference filled
                // in for anything that missed the deadline), so the
                // timeout semantics live in exactly one place.
                let requests = [(query.clone(), candidates.to_vec())];
                let gathered = replies.into_candidate_infos(&requests);
                let infos = &mut self.scratch.infos;
                infos.clear();
                infos.extend(gathered.into_iter().flatten());
            }
        }
        if fabricated > 0 {
            if let Some(state) = &mut self.scenario {
                state.fault_indifference += fabricated;
            }
        }
        // Unified across backends: at most one of the two sources is
        // non-zero (the socket backend counts real wire timeouts, the
        // in-process ones the indifference they fabricate).
        let degraded = fabricated + wire_timeouts;
        if degraded > 0 {
            self.note_degraded_wave(u64::from(query.id.raw()), degraded);
        }

        self.allocate_and_record(&query, shard);
    }

    /// Allocation decision (Algorithm 1, lines 6–9) over the candidate
    /// infos sitting in `self.scratch.infos`, recorded in the shard's
    /// satisfaction state, followed by the participant-side bookkeeping
    /// and the enqueueing of the query at the selected providers. Shared
    /// by the per-arrival path and the socket backend's coalesced path
    /// (which mediates a batch first, then allocates each query of the
    /// batch through here, in arrival order).
    fn allocate_and_record(&mut self, query: &Query, shard: usize) {
        let now = self.now;
        let consumer = query.consumer;
        let allocation = self.router.allocate(shard, query, &self.scratch.infos);

        // Participant-side bookkeeping (the mediation result is sent to all
        // candidates, line 10), answering "was p selected?" through the
        // id-sorted selection index instead of a linear scan per candidate.
        let scratch = &mut self.scratch;
        scratch.selection.rebuild(&allocation);
        scratch.shown_cis.clear();
        scratch
            .shown_cis
            .extend(scratch.infos.iter().map(|i| i.consumer_intention));
        scratch.selected_indices.clear();
        scratch.selected_indices.extend(
            scratch
                .infos
                .iter()
                .enumerate()
                .filter(|(_, i)| scratch.selection.contains(i.provider))
                .map(|(idx, _)| idx),
        );
        self.population.consumers[consumer].record_allocation(
            &scratch.shown_cis,
            &scratch.selected_indices,
            query.n,
        );
        for info in &scratch.infos {
            let performed = scratch.selection.contains(info.provider);
            self.population.providers[info.provider].record_proposal(
                query,
                info.provider_intention,
                performed,
            );
        }

        // Enqueue the query at the selected providers.
        self.shard_backlog[shard] += query.cost().value() * allocation.selected.len() as f64;
        for &p in &allocation.selected {
            let provider_agent = &mut self.population.providers[p];
            let processing = provider_agent.assign(query, now);
            let start = self.busy_until[p].max(now.as_secs());
            let finish = start + processing.as_secs();
            self.busy_until[p] = finish;
            self.queue.schedule(
                SimTime::from_secs(finish),
                Event::QueryCompletion {
                    provider: p,
                    query: query.id,
                    issued_at: query.issued_at,
                    work: query.cost(),
                },
            );
        }
    }

    /// Credits `count` replies degraded to indifference on the wave
    /// that mediated query `wave` — the unified accounting every
    /// backend funnels through. The plain `degraded_waves` report
    /// counter always moves; the obs counters and the flight-recorder
    /// event only when observability is on (and a disabled handle makes
    /// them single-branch no-ops anyway).
    fn note_degraded_wave(&mut self, wave: u64, count: u64) {
        self.degraded_waves += 1;
        self.metrics.indifferent_replies.add(count);
        self.metrics.degraded_waves.inc();
        if self.obs.is_enabled() {
            self.obs.record(
                self.now.as_secs(),
                EventKind::TimeoutIndifference { wave, count },
            );
        }
    }

    /// The socket backend's coalesced arrival handler: prepares the
    /// arrival at hand plus every further arrival scheduled for this same
    /// virtual instant (popping them off the event queue in their normal
    /// order), and mediates them as *one* socket wave — one frame
    /// fan-out, one reply collection — instead of one wave each.
    ///
    /// Bit-identity with the sequential path is preserved by
    /// construction. Preparation (the arrival-process reschedule and the
    /// consumer/class draws) is a pure function of the rng stream and of
    /// state no allocation of the batch can touch, so performing it for
    /// arrival `t + 1` before arrival `t`'s allocation consumes exactly
    /// the random values the sequential interleaving would. Mediated
    /// answers *can* observe earlier allocations, so a prepared arrival
    /// sharing a consumer or a shard with the batch flushes the batch
    /// first — the wave only ever carries arrivals whose answers are
    /// mutually independent. Allocation then runs per query, in arrival
    /// order, exactly like the sequential path.
    fn handle_socket_arrivals(&mut self) {
        let mut batch: Vec<PreparedArrival> = Vec::new();
        if let Some(first) = self.prepare_arrival() {
            batch.push(first);
        }
        while matches!(
            self.queue.peek(),
            Some((time, Event::QueryArrival)) if time == self.now
        ) {
            self.queue.pop();
            let Some(prepared) = self.prepare_arrival() else {
                continue;
            };
            let conflicts = batch.iter().any(|earlier| {
                earlier.query.consumer == prepared.query.consumer || earlier.shard == prepared.shard
            });
            if conflicts {
                let flushed = std::mem::take(&mut batch);
                self.mediate_socket_batch(flushed);
            }
            batch.push(prepared);
        }
        if !batch.is_empty() {
            self.mediate_socket_batch(batch);
        }
    }

    /// The per-arrival work that precedes mediation, shared wording with
    /// the sequential path (see [`Simulator::handle_arrival`]): reschedule
    /// the arrival process, draw the consumer and query class, route to a
    /// shard and resolve the candidate set. Returns `None` when no
    /// consumer or no provider-bearing shard remains (the arrival is
    /// counted exactly as the sequential path counts it).
    fn prepare_arrival(&mut self) -> Option<PreparedArrival> {
        self.schedule_next_arrival();

        let consumers = self.population.active_consumer_ids();
        if consumers.is_empty() {
            return None;
        }
        let consumer = consumers[self.rng.random_range(0..consumers.len())];
        let class = if self.rng.random_bool(0.5) {
            QueryClass::Light
        } else {
            QueryClass::Heavy
        };
        let mut query = Query::single(QueryId::new(self.next_query_id), consumer, class, self.now);
        query.n = self.config.query_n;
        if self.matchmaker.is_some() {
            query.description.topic = class_topic(class);
        }
        self.next_query_id = self.next_query_id.wrapping_add(1);
        self.issued += 1;
        self.metrics.queries_issued.inc();

        let preferred = self.routing.route(
            consumer,
            &self.router,
            ShardLoadView {
                backlog: &self.shard_backlog,
                capacity: &self.shard_capacity,
            },
        );
        let Some(shard) = self.first_shard_with_candidates(preferred) else {
            self.unallocated += 1;
            self.metrics.queries_unallocated.inc();
            return None;
        };
        let shard_providers = self.router.providers_of_shard(shard);
        let candidates = match &self.matchmaker {
            None => shard_providers.to_vec(),
            Some(matchmaker) => {
                let matching = matchmaker.matching(query.class());
                intersect_sorted(shard_providers, matching, &mut self.scratch.candidates);
                if self.scratch.candidates.is_empty() {
                    shard_providers.to_vec()
                } else {
                    self.scratch.candidates.clone()
                }
            }
        };
        Some(PreparedArrival {
            query,
            shard,
            candidates,
        })
    }

    /// Mediates one coalesced batch as a single socket wave, then
    /// allocates each query of the batch in arrival order. The batch
    /// invariant (distinct consumers, distinct shards — hence disjoint
    /// candidate sets) is established by [`Simulator::handle_socket_arrivals`].
    fn mediate_socket_batch(&mut self, batch: Vec<PreparedArrival>) {
        let now = self.now;
        let fault_plan = self.socket_fault_plan();
        let requests: Vec<(Query, Vec<ProviderId>)> = batch
            .iter()
            .map(|a| (a.query.clone(), a.candidates.clone()))
            .collect();
        // The union of the batch's candidate sets, ascending: the sets
        // are disjoint (distinct shards), so sorting the concatenation
        // yields the duplicate-free ordered list `iter_mut_of` wants.
        let mut all_candidates: Vec<ProviderId> =
            Vec::with_capacity(batch.iter().map(|a| a.candidates.len()).sum());
        for arrival in &batch {
            all_candidates.extend_from_slice(&arrival.candidates);
        }
        all_candidates.sort_unstable();

        let MediationDriver::Socket(socket) = &mut self.mediation else {
            unreachable!("the coalescing path is entered only on the socket backend");
        };
        let reputation = &self.reputation;
        let mut jobs = WaveJobs::new();
        for arrival in &batch {
            let consumer_agent = &self.population.consumers[arrival.query.consumer];
            jobs.consumer(arrival.query.consumer, move |decoded| {
                decoded
                    .iter()
                    .map(|(q, cands)| {
                        (
                            q.id,
                            cands
                                .iter()
                                .map(|&p| (p, consumer_agent.intention_for(q, p, reputation)))
                                .collect(),
                        )
                    })
                    .collect()
            });
        }
        // One provider job answers every query of the wave addressed to
        // it — the wire request already carries the provider's full query
        // list, so the same batch closure serves waves of any width.
        for (p, agent) in self.population.providers.iter_mut_of(&all_candidates) {
            jobs.provider(p, move |decoded, request_bids| {
                decoded
                    .iter()
                    .map(|q| {
                        let (intention, utilization) = agent.intention_and_utilization(q, now);
                        ProviderAnswer {
                            query: q.id,
                            intention,
                            utilization,
                            bid: request_bids.then(|| agent.bid_for(q, now)),
                        }
                    })
                    .collect()
            });
        }
        let gathered = socket.gather_with_faults(&requests, jobs, &fault_plan);
        let wire_timeouts = socket.timed_out_total() - self.socket_timeouts_seen;
        self.socket_timeouts_seen = socket.timed_out_total();
        if wire_timeouts > 0 {
            // One coalesced wave, one degraded-wave credit — stamped
            // with the first query of the batch.
            self.note_degraded_wave(u64::from(batch[0].query.id.raw()), wire_timeouts);
        }
        for (arrival, infos) in batch.iter().zip(gathered) {
            self.scratch.infos.clear();
            self.scratch.infos.extend(infos);
            self.allocate_and_record(&arrival.query, arrival.shard);
        }
    }

    /// The per-host fault conditions of a wave issued at this instant
    /// (see [`WaveConditions`]); an empty table outside scenario fault
    /// runs.
    fn wave_conditions(&self) -> WaveConditions {
        let hosts = match &self.scenario {
            Some(state) if !state.faults.is_empty() => (0..self.config.socket_hosts)
                .map(|host| {
                    host_condition_at(
                        &state.faults,
                        host,
                        self.now.as_secs(),
                        self.config.wave_timeout_ms,
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        WaveConditions { hosts }
    }

    /// The wire-fault plan of a socket wave issued at this instant: one
    /// entry per faulted host. A stall (or a delay at/past the deadline)
    /// is injected for every wave of its window; a [`TransportFault::DropHost`]
    /// severs the connection in the first wave at or after its instant
    /// and is spent thereafter — later waves skip the dead host's
    /// endpoints at fan-out, which the wave server already degrades to
    /// indifference on its own.
    fn socket_fault_plan(&mut self) -> Vec<(usize, HostFault)> {
        let now = self.now.as_secs();
        let timeout_ms = self.config.wave_timeout_ms;
        let Some(state) = &mut self.scenario else {
            return Vec::new();
        };
        let mut plan: Vec<(usize, HostFault)> = Vec::new();
        for (index, fault) in state.faults.iter().enumerate() {
            let injected = match *fault {
                TransportFault::StallHost {
                    host,
                    from_secs,
                    until_secs,
                } if now >= from_secs && now < until_secs => Some((host, HostFault::Stall)),
                TransportFault::DelayHost {
                    host,
                    from_secs,
                    until_secs,
                    delay_ms,
                } if now >= from_secs && now < until_secs && delay_ms >= timeout_ms => {
                    Some((host, HostFault::Stall))
                }
                TransportFault::DropHost { host, at_secs }
                    if now >= at_secs && !state.drop_fired[index] =>
                {
                    state.drop_fired[index] = true;
                    Some((host, HostFault::Drop))
                }
                _ => None,
            };
            if let Some((host, fault)) = injected {
                if !plan.iter().any(|&(h, _)| h == host) {
                    plan.push((host, fault));
                }
            }
        }
        plan
    }

    /// Takes a churn group's members down, mirroring the assessment
    /// departure machinery (capacity/backlog write-off, mediation and
    /// matchmaking deregistration) with two deliberate differences: the
    /// mediator-side satisfaction tracker is *parked* for a possible
    /// re-join instead of destroyed, and the exit is counted as a churn
    /// departure, not as a behavioral [`DepartureRecord`] — churn is
    /// imposed by the scenario, not chosen by the agent, so it must not
    /// pollute the retention metrics of Table 3.
    fn handle_churn_depart(&mut self, group: usize) {
        let members = match &self.scenario {
            Some(state) => state.groups[group].members.clone(),
            None => return,
        };
        let mut departed = Vec::new();
        for id in members {
            if self.population.providers[id].has_departed() {
                continue;
            }
            self.population.depart_provider(id);
            if let Some(shard) = self.router.shard_of_provider(id) {
                let agent = &self.population.providers[id];
                self.shard_capacity[shard] -= agent.capacity().units_per_sec();
                // In-flight completions of a parked provider are not
                // credited anywhere, so its outstanding work comes off
                // the books now (and goes back on at re-join, for
                // whatever is still outstanding then).
                self.shard_backlog[shard] -= agent.backlog().value();
            }
            self.router.churn_depart(id);
            match &mut self.mediation {
                MediationDriver::Reactor(reactor) => reactor.deregister_provider(id),
                MediationDriver::Socket(socket) => socket.deregister_provider(id),
                _ => {}
            }
            if let Some(matchmaker) = &mut self.matchmaker {
                matchmaker.deregister(id);
            }
            self.metrics.churn_departures.inc();
            if self.obs.is_enabled() {
                self.obs.record(
                    self.now.as_secs(),
                    EventKind::ChurnDepart {
                        participant: u64::from(id.raw()),
                        provider: true,
                    },
                );
            }
            departed.push(id);
        }
        self.population.debug_assert_active_indices_consistent();
        if let Some(state) = &mut self.scenario {
            state.churn_departures += departed.len() as u64;
            state.departed_members[group] = departed;
        }
    }

    /// Brings a churn group's members back: the population re-activates
    /// the agent, the router readmits it to its home shard (`slot % K`)
    /// with its parked satisfaction view under [`RejoinPolicy::Resume`]
    /// or a fresh registration under [`RejoinPolicy::Reset`], capacity
    /// and outstanding backlog go back on the books, departure strikes
    /// restart from zero, and the mediation backend re-announces the
    /// endpoint (the socket backend reconnects the host if the drop-out
    /// closed its last connection).
    fn handle_churn_rejoin(&mut self, group: usize) {
        let (members, policy) = match &mut self.scenario {
            Some(state) => (
                std::mem::take(&mut state.departed_members[group]),
                state.groups[group].policy,
            ),
            None => return,
        };
        let mut rejoined = 0u64;
        for id in members {
            let Some(shard) = self
                .router
                .readmit_provider(id, policy == RejoinPolicy::Resume)
            else {
                continue;
            };
            self.population.rejoin_provider(id);
            if policy == RejoinPolicy::Reset {
                self.population.providers[id].reset_satisfaction_history();
            }
            let agent = &self.population.providers[id];
            self.shard_capacity[shard] += agent.capacity().units_per_sec();
            self.shard_backlog[shard] += agent.backlog().value();
            self.provider_strikes[id] = 0;
            match &mut self.mediation {
                MediationDriver::Reactor(reactor) => {
                    reactor.register_provider(id, Latency::Immediate);
                }
                MediationDriver::Socket(socket) => socket
                    .register_provider(id)
                    .expect("socket re-registration of a re-joining provider failed"),
                _ => {}
            }
            if let Some(matchmaker) = &mut self.matchmaker {
                matchmaker.register(&self.population.providers[id]);
            }
            self.metrics.churn_rejoins.inc();
            if self.obs.is_enabled() {
                self.obs.record(
                    self.now.as_secs(),
                    EventKind::ChurnRejoin {
                        participant: u64::from(id.raw()),
                        provider: true,
                    },
                );
            }
            rejoined += 1;
        }
        self.population.debug_assert_active_indices_consistent();
        if let Some(state) = &mut self.scenario {
            state.churn_rejoins += rejoined;
        }
    }

    fn handle_completion(
        &mut self,
        provider: ProviderId,
        issued_at: SimTime,
        work: sqlb_types::WorkUnits,
    ) {
        self.population.providers[provider].complete(work);
        // Credit the shard that owns the provider *now*: a migration moves
        // the provider's outstanding backlog to the new owner, which is
        // where the remaining queue drains. A departed provider has no
        // shard; its outstanding work was already written off when it
        // left.
        if let Some(shard) = self.router.shard_of_provider(provider) {
            self.shard_backlog[shard] -= work.value();
        }
        let response_time = (self.now - issued_at).as_secs();
        self.response_times.record(response_time);
        self.completed += 1;
        self.metrics.queries_completed.inc();
        self.metrics.response_time_seconds.record(response_time);
    }

    fn handle_sample(&mut self) {
        let now = self.now;
        let mut sat_intention = Vec::new();
        let mut sat_preference = Vec::new();
        let mut alloc_sat_pref = Vec::new();
        let mut alloc_sat_int = Vec::new();
        let mut utilizations = Vec::new();
        for p in self
            .population
            .providers
            .values_mut()
            .filter(|p| !p.has_departed())
        {
            // Figure 4(a) reports the provider's long-run feeling about the
            // queries it performs, so the smoothed (Table 2) reading is
            // plotted; the strict Definition 5 value drives departures.
            sat_intention.push(p.smoothed_satisfaction());
            sat_preference.push(p.preference_satisfaction());
            alloc_sat_pref.push(p.preference_allocation_satisfaction());
            alloc_sat_int.push(p.allocation_satisfaction());
            utilizations.push(p.utilization(now).value());
        }
        let mut consumer_alloc_sat = Vec::new();
        let mut consumer_sat = Vec::new();
        for c in self
            .population
            .consumers
            .values()
            .filter(|c| !c.has_departed())
        {
            consumer_alloc_sat.push(c.allocation_satisfaction());
            consumer_sat.push(c.satisfaction());
        }

        let workload_fraction = self.workload_fraction();
        let s = &mut self.series;
        s.provider_satisfaction_intention_mean
            .push(now, mean(&sat_intention));
        s.provider_satisfaction_preference_mean
            .push(now, mean(&sat_preference));
        s.provider_allocation_satisfaction_preference_mean
            .push(now, mean(&alloc_sat_pref));
        s.provider_allocation_satisfaction_intention_mean
            .push(now, mean(&alloc_sat_int));
        s.provider_satisfaction_fairness
            .push(now, fairness(&sat_intention));
        s.consumer_allocation_satisfaction_mean
            .push(now, mean(&consumer_alloc_sat));
        s.consumer_satisfaction_mean.push(now, mean(&consumer_sat));
        s.consumer_satisfaction_fairness
            .push(now, fairness(&consumer_sat));
        s.utilization_mean.push(now, mean(&utilizations));
        s.utilization_fairness.push(now, fairness(&utilizations));
        s.workload_fraction.push(now, workload_fraction);
        s.active_providers.push(now, sat_intention.len() as f64);
        s.active_consumers
            .push(now, consumer_alloc_sat.len() as f64);

        // Per-shard load and satisfaction: the imbalance the routing
        // policy and the rebalancer act on, recorded so shard skew is
        // visible in experiment output and not just in the final
        // `shard_allocations` totals. Calling `utilization(now)` a second
        // time for the same instant is free of side effects (the sliding
        // window expires by time).
        let shard_count = self.router.shard_count();
        let series = &mut self.series;
        if series.shard_utilization.len() != shard_count {
            series
                .shard_utilization
                .resize_with(shard_count, TimeSeries::new);
            series
                .shard_satisfaction
                .resize_with(shard_count, TimeSeries::new);
            series
                .shard_allocation_counts
                .resize_with(shard_count, TimeSeries::new);
        }
        let mut shard_means = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let providers = self.router.providers_of_shard(shard);
            let mut utilization_sum = 0.0;
            let mut satisfaction_sum = 0.0;
            for &p in providers {
                let provider = &mut self.population.providers[p];
                utilization_sum += provider.utilization(now).value();
                satisfaction_sum += provider.smoothed_satisfaction();
            }
            let count = providers.len();
            let (utilization, satisfaction) = if count == 0 {
                // An emptied shard carries no load; report it as idle.
                (0.0, 0.0)
            } else {
                (
                    utilization_sum / count as f64,
                    satisfaction_sum / count as f64,
                )
            };
            series.shard_utilization[shard].push(now, utilization);
            series.shard_satisfaction[shard].push(now, satisfaction);
            series.shard_allocation_counts[shard].push(
                now,
                self.router.mediator(shard).state().allocations() as f64,
            );
            if count > 0 {
                shard_means.push(utilization);
            }
        }
        series
            .shard_utilization_spread
            .push(now, spread(&shard_means));

        Self::schedule_periodic(
            &mut self.queue,
            self.config.duration_secs,
            &mut self.next_sample_tick,
            self.config.sample_interval_secs,
            Event::Sample,
        );
    }

    fn handle_sync(&mut self) {
        self.router.sync_views();
        Self::schedule_periodic(
            &mut self.queue,
            self.config.duration_secs,
            &mut self.next_sync_tick,
            self.config.sync_interval_secs,
            Event::SyncViews,
        );
    }

    /// How much busier (in allocations per rebalancing window) the busiest
    /// shard must be than the idlest before the mediation-load rule
    /// migrates a provider.
    const ALLOCATION_IMBALANCE_TRIGGER: f64 = 1.25;
    /// Minimum allocations the busiest shard must have mediated in the
    /// window before its imbalance is considered signal rather than noise.
    const MIN_ALLOCATION_DELTA: u64 = 8;
    /// Weight of the satisfaction term in the load-adaptive donor score
    /// (see [`donor_score`]): a fully satisfied donor is penalized by this
    /// fraction of the throughput target, so satisfaction arbitrates
    /// between donors whose windowed throughput is comparably close to
    /// half the gap without overriding a decisively better throughput
    /// match.
    const MIGRATION_SATISFACTION_WEIGHT: f64 = 0.25;

    /// One cross-shard rebalancing round. Which imbalance signal drives it
    /// depends on whether routed demand can follow the migrated capacity
    /// ([`RoutingPolicy::reacts_to_load`]):
    ///
    /// * **Static routing — utilization spread.** Each shard's query
    ///   volume is pinned by `consumer % K`, so the only actionable lever
    ///   is capacity: if the gap between the hottest and coldest shard's
    ///   mean provider utilization exceeds the configured threshold, the
    ///   coldest shard's least-utilized provider (its most spare capacity)
    ///   migrates to the hottest shard — capacity follows demand, the hot
    ///   shard's load spreads over more providers, the spread shrinks.
    /// * **Load-adaptive routing — mediation load.** Routing already
    ///   equalizes utilization by construction (arrivals seek the least
    ///   relative load), but shards still mediate query volumes
    ///   proportional to their effective drain rate. If the busiest shard
    ///   mediated ≥ 1.25× the allocations of the idlest over the last
    ///   window, the throughput gap behind that skew is closed by
    ///   migrating the provider whose *observed* windowed performed-query
    ///   count best matches half the gap, busiest → idlest; the routed
    ///   demand follows the drain rate it brings along. Moves are only
    ///   made when they strictly shrink the gap, which rules out
    ///   oscillation. Running the utilization rule here instead would
    ///   chase sampling noise that routing self-corrects, and the two
    ///   rules would fight.
    ///
    /// One provider per round keeps rebalancing gentle; the interval
    /// controls how fast it converges. Every input is a deterministic
    /// function of observed state: shard lists are iterated in ascending
    /// provider-id order and ties break toward the lowest shard index /
    /// provider id, so two runs with the same seed perform the identical
    /// migration sequence.
    fn handle_rebalance(&mut self) {
        Self::schedule_periodic(
            &mut self.queue,
            self.config.duration_secs,
            &mut self.next_rebalance_tick,
            self.config.rebalance_interval_secs,
            Event::Rebalance,
        );
        self.rebalance_rounds += 1;

        // Roll the allocation window: a round judges mediation load by
        // what happened since the previous round only.
        let shard_count = self.router.shard_count();
        let allocations = self.router.allocations_per_shard();
        self.allocations_at_last_rebalance.resize(shard_count, 0);
        let window: Vec<u64> = allocations
            .iter()
            .zip(&self.allocations_at_last_rebalance)
            .map(|(current, previous)| current.saturating_sub(*previous))
            .collect();
        self.allocations_at_last_rebalance = allocations;

        if self.routing.reacts_to_load() {
            self.rebalance_mediation_load(&window);
            // Roll the per-provider throughput window for the next round
            // (after the rule, which reads the previous round's baseline).
            for shard in 0..shard_count {
                for &p in self.router.providers_of_shard(shard) {
                    let performed = self.population.providers[p].performed_queries();
                    self.performed_at_last_rebalance.insert(p, performed);
                }
            }
        } else {
            self.rebalance_utilization();
        }
    }

    /// The static-routing rebalancing rule: migrate spare capacity from
    /// the utilization-coldest shard to the hottest.
    fn rebalance_utilization(&mut self) {
        let now = self.now;
        let shard_count = self.router.shard_count();
        // Hottest and coldest shard by mean provider utilization; shards
        // with no providers left carry no load and take no part.
        let mut hottest: Option<(usize, f64)> = None;
        let mut coldest: Option<(usize, f64)> = None;
        for shard in 0..shard_count {
            let providers = self.router.providers_of_shard(shard);
            if providers.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            for &p in providers {
                sum += self.population.providers[p].utilization(now).value();
            }
            let utilization = sum / providers.len() as f64;
            if hottest.is_none_or(|(_, u)| utilization > u) {
                hottest = Some((shard, utilization));
            }
            if coldest.is_none_or(|(_, u)| utilization < u) {
                coldest = Some((shard, utilization));
            }
        }
        let (Some((hot, hot_utilization)), Some((cold, cold_utilization))) = (hottest, coldest)
        else {
            return;
        };
        let imbalance = hot_utilization - cold_utilization;
        if hot == cold || imbalance < self.config.migration_min_spread {
            return;
        }
        self.migrate_spare_provider(cold, hot, imbalance);
    }

    /// The load-adaptive rebalancing rule: close the throughput gap behind
    /// a mediation-load skew. `window` is the per-shard allocation count
    /// since the previous round.
    fn rebalance_mediation_load(&mut self, window: &[u64]) {
        let mut busiest: Option<(usize, u64)> = None;
        let mut idlest: Option<(usize, u64)> = None;
        for (shard, &mediated) in window.iter().enumerate() {
            if self.router.providers_of_shard(shard).is_empty() {
                continue;
            }
            if busiest.is_none_or(|(_, m)| mediated > m) {
                busiest = Some((shard, mediated));
            }
            if idlest.is_none_or(|(_, m)| mediated < m) {
                idlest = Some((shard, mediated));
            }
        }
        let (Some((busy, busy_count)), Some((idle, idle_count))) = (busiest, idlest) else {
            return;
        };
        if busy == idle || busy_count < Self::MIN_ALLOCATION_DELTA {
            return;
        }
        if (busy_count as f64) < Self::ALLOCATION_IMBALANCE_TRIGGER * idle_count.max(1) as f64 {
            return;
        }
        // The busy shard mediates more because its providers collectively
        // win more queries (the allocation method concentrates work on
        // attractive, fast-draining providers — raw capacity is a poor
        // predictor of this). Move the *observed* throughput instead:
        // among providers whose windowed performed-query count would
        // strictly shrink the gap (the monotone-convergence guard), pick
        // the lowest [`donor_score`] — closeness to half the gap, with
        // the donor shard's satisfaction reading for the provider folded
        // in so that of comparably-matched donors the under-served one
        // moves: its proposals mostly lose on the contended shard, so it
        // both frees the least won throughput there and stands to gain
        // the most on the receiving shard. Demand follows the move,
        // because routed arrivals seek the drain rate it brings along.
        let gap = busy_count - idle_count;
        let donors = self.router.providers_of_shard(busy);
        if donors.len() < 2 {
            return;
        }
        let busy_state = self.router.mediator(busy).state();
        let mut pick = None;
        let mut pick_score = f64::INFINITY;
        for &p in donors {
            let performed = self.population.providers[p].performed_queries();
            let previous = self
                .performed_at_last_rebalance
                .get(p)
                .copied()
                .unwrap_or(0);
            let throughput = performed.saturating_sub(previous);
            let satisfaction = busy_state.provider_satisfaction(p);
            let Some(score) = donor_score(
                throughput,
                gap,
                satisfaction,
                Self::MIGRATION_SATISFACTION_WEIGHT,
            ) else {
                continue;
            };
            if score < pick_score {
                pick_score = score;
                pick = Some(p);
            }
        }
        if let Some(provider) = pick {
            let spread_before = (busy_count as f64) / idle_count.max(1) as f64;
            self.migrate_provider_with_record(provider, idle, spread_before);
        }
    }

    /// Migrates the least-utilized provider of `from` to `to`, unless
    /// `from` would be left empty (an emptied shard would bounce every
    /// routed query to fall-over). Ties break toward the lowest provider
    /// id (the shard lists are ascending).
    fn migrate_spare_provider(&mut self, from: usize, to: usize, spread_before: f64) {
        let now = self.now;
        let donors = self.router.providers_of_shard(from);
        if donors.len() < 2 {
            return;
        }
        let mut pick = donors[0];
        let mut pick_utilization = f64::INFINITY;
        for &p in donors {
            let utilization = self.population.providers[p].utilization(now).value();
            if utilization < pick_utilization {
                pick_utilization = utilization;
                pick = p;
            }
        }
        self.migrate_provider_with_record(pick, to, spread_before);
    }

    /// Performs one recorded migration of `provider` to shard `to`,
    /// keeping the incremental per-shard capacity totals in step.
    fn migrate_provider_with_record(
        &mut self,
        provider: ProviderId,
        to: usize,
        spread_before: f64,
    ) {
        // Read the donor shard's satisfaction view before the move: the
        // export wipes it there.
        let donor_satisfaction = self
            .router
            .shard_of_provider(provider)
            .map(|shard| {
                self.router
                    .mediator(shard)
                    .state()
                    .provider_satisfaction(provider)
            })
            .unwrap_or(0.0);
        if let Some(migration) = self.router.migrate_provider(provider, to) {
            let agent = &self.population.providers[provider];
            let capacity = agent.capacity().units_per_sec();
            self.shard_capacity[migration.from] -= capacity;
            self.shard_capacity[migration.to] += capacity;
            // The provider's outstanding work moves with it: completions
            // will be credited to the receiving shard from now on, so the
            // backlog must be too, or the donor would carry phantom load.
            let backlog = agent.backlog().value();
            self.shard_backlog[migration.from] -= backlog;
            self.shard_backlog[migration.to] += backlog;
            self.migrations.push(MigrationRecord {
                provider: migration.provider,
                time_secs: self.now.as_secs(),
                from_shard: migration.from,
                to_shard: migration.to,
                spread_before,
                donor_satisfaction,
            });
            self.metrics.migrations.inc();
            if self.obs.is_enabled() {
                self.obs.record(
                    self.now.as_secs(),
                    EventKind::Rebalance {
                        provider: u64::from(migration.provider.raw()),
                        from: migration.from as u64,
                        to: migration.to as u64,
                    },
                );
            }
        }
    }

    fn handle_assessment(&mut self) {
        let now = self.now;
        let optimal_utilization = self.workload_fraction().max(0.05);

        // Departures are only assessed once the sliding utilization windows
        // and satisfaction memories have had time to fill; judging the
        // system on a cold start would make every method shed providers.
        let warmed_up = now.as_secs() >= self.config.departure_warmup_secs;

        if warmed_up && self.config.providers_may_leave {
            let rule = self.config.provider_departure;
            let ids: Vec<ProviderId> = self.population.providers.keys().collect();
            for id in ids {
                let provider = &mut self.population.providers[id];
                if provider.has_departed() {
                    continue;
                }
                let utilization = provider.utilization(now).value();
                let reason = rule.evaluate(
                    provider.strict_satisfaction(),
                    provider.adequation(),
                    utilization,
                    optimal_utilization,
                    provider.proposed_queries(),
                );
                match reason {
                    Some(reason) => {
                        self.provider_strikes[id] += 1;
                        // Overutilization is already smoothed by the sliding
                        // utilization window, so it takes effect at the first
                        // assessment that observes it; dissatisfaction and
                        // starvation must persist across assessments.
                        let required = if reason == sqlb_agents::DepartureReason::Overutilization {
                            1
                        } else {
                            rule.required_consecutive.max(1)
                        };
                        if self.provider_strikes[id] >= required {
                            self.population.depart_provider(id);
                            if let Some(shard) = self.router.shard_of_provider(id) {
                                let agent = &self.population.providers[id];
                                self.shard_capacity[shard] -= agent.capacity().units_per_sec();
                                // Its in-flight completions will no longer
                                // be credited anywhere (the provider has
                                // no shard), so take the outstanding work
                                // off the books now or the shard would
                                // carry phantom load forever.
                                self.shard_backlog[shard] -= agent.backlog().value();
                            }
                            self.router.remove_provider(id);
                            match &mut self.mediation {
                                MediationDriver::Reactor(reactor) => {
                                    reactor.deregister_provider(id)
                                }
                                MediationDriver::Socket(socket) => socket.deregister_provider(id),
                                _ => {}
                            }
                            if let Some(matchmaker) = &mut self.matchmaker {
                                matchmaker.deregister(id);
                            }
                            let profile = self.population.profiles[id];
                            self.provider_departures.push(DepartureRecord {
                                provider: id,
                                time_secs: now.as_secs(),
                                reason,
                                profile,
                            });
                        }
                    }
                    None => self.provider_strikes[id] = 0,
                }
            }
        }

        if warmed_up && self.config.consumers_may_leave {
            let rule = self.config.consumer_departure;
            let ids: Vec<ConsumerId> = self.population.consumers.keys().collect();
            for id in ids {
                let consumer = &mut self.population.consumers[id];
                if consumer.has_departed() {
                    continue;
                }
                let reason = rule.evaluate(
                    consumer.satisfaction(),
                    consumer.adequation(),
                    consumer.issued_queries(),
                );
                match reason {
                    Some(_) => {
                        self.consumer_strikes[id] += 1;
                        if self.consumer_strikes[id] >= rule.required_consecutive.max(1) {
                            self.population.depart_consumer(id);
                            self.router.remove_consumer(id);
                            match &mut self.mediation {
                                MediationDriver::Reactor(reactor) => {
                                    reactor.deregister_consumer(id)
                                }
                                MediationDriver::Socket(socket) => socket.deregister_consumer(id),
                                _ => {}
                            }
                            self.consumer_departures.push(ConsumerDepartureRecord {
                                consumer: id,
                                time_secs: now.as_secs(),
                            });
                        }
                    }
                    None => self.consumer_strikes[id] = 0,
                }
            }
        }

        // Departures are the only place the active indices shrink; in
        // debug builds cross-check them against the departed flags after
        // every assessment (a no-op in release).
        self.population.debug_assert_active_indices_consistent();

        Self::schedule_periodic(
            &mut self.queue,
            self.config.duration_secs,
            &mut self.next_assessment_tick,
            self.config.assessment_interval_secs,
            Event::Assessment,
        );
    }

    fn finish(mut self) -> SimulationReport {
        let now = SimTime::from_secs(self.config.duration_secs);
        let utilizations: Vec<f64> = self
            .population
            .providers
            .values_mut()
            .filter(|p| !p.has_departed())
            .map(|p| p.utilization(now).value())
            .collect();
        let provider_satisfaction: Vec<f64> = self
            .population
            .providers
            .values()
            .filter(|p| !p.has_departed())
            .map(|p| p.smoothed_satisfaction())
            .collect();
        let consumer_satisfaction: Vec<f64> = self
            .population
            .consumers
            .values()
            .filter(|c| !c.has_departed())
            .map(|c| c.satisfaction())
            .collect();

        // Scenario fault accounting: the socket backend counts the
        // replies that really timed out (or found a dead connection) on
        // the wire; the in-process backends count the indifference they
        // fabricated for scenario-faulted endpoints.
        let indifferent_replies = match &self.mediation {
            MediationDriver::Socket(socket) => socket.timed_out_total(),
            _ => self.scenario.as_ref().map_or(0, |s| s.fault_indifference),
        };

        SimulationReport {
            method: self.method_kind.name().to_string(),
            seed: self.config.seed,
            scenario: self
                .scenario
                .as_ref()
                .map_or_else(String::new, |s| s.description.name.clone()),
            churn_departures: self.scenario.as_ref().map_or(0, |s| s.churn_departures),
            churn_rejoins: self.scenario.as_ref().map_or(0, |s| s.churn_rejoins),
            indifferent_replies,
            degraded_waves: self.degraded_waves,
            series: self.series,
            issued_queries: self.issued,
            completed_queries: self.completed,
            unallocated_queries: self.unallocated,
            response_times: self.response_times,
            provider_departures: self.provider_departures,
            consumer_departures: self.consumer_departures,
            initial_providers: self.initial_providers,
            initial_consumers: self.initial_consumers,
            mediator_shards: self.router.shard_count(),
            shard_allocations: self.router.allocations_per_shard(),
            sync_rounds: self.router.sync_rounds(),
            routing_policy: self.routing.name().to_string(),
            migrations: self.migrations,
            rebalance_rounds: self.rebalance_rounds,
            final_utilization: Summary::of(&utilizations),
            final_provider_satisfaction: Summary::of(&provider_satisfaction),
            final_consumer_satisfaction: Summary::of(&consumer_satisfaction),
        }
    }
}

/// Scores one donor candidate for the load-adaptive migration rule, or
/// `None` when moving it could not strictly shrink the allocation gap
/// (`throughput` must lie strictly between 0 and `gap` — the
/// monotone-convergence guard). Lower scores are better.
///
/// The score is the distance of the donor's windowed throughput from half
/// the gap (the move that splits the imbalance evenly), plus a
/// satisfaction penalty: `satisfaction × (gap / 2) × weight`. An
/// under-served donor — a low mediator-side satisfaction reading means
/// its proposals mostly lose on the contended shard — therefore wins
/// against a comparably-matched but well-served one: it frees the least
/// won throughput where it is, and stands to gain the most on the
/// receiving shard, where its proposals face less competition. The
/// bounded weight keeps the penalty a fraction of the target, so
/// satisfaction arbitrates near-ties without overriding a decisively
/// better throughput match.
fn donor_score(throughput: u64, gap: u64, satisfaction: f64, weight: f64) -> Option<f64> {
    if throughput == 0 || throughput >= gap {
        return None;
    }
    let target = gap as f64 / 2.0;
    let distance = (throughput as f64 - target).abs();
    Some(distance + satisfaction.clamp(0.0, 1.0) * target * weight)
}

/// Convenience: builds and runs one simulation.
pub fn run_simulation(
    config: SimulationConfig,
    method: Method,
) -> Result<SimulationReport, SqlbError> {
    Ok(Simulator::new(config, method)?.run())
}

/// Convenience: builds and runs one simulation under a scenario.
pub fn run_scenario(
    config: SimulationConfig,
    method: Method,
    scenario: &Scenario,
) -> Result<SimulationReport, SqlbError> {
    Ok(Simulator::with_scenario(config, method, scenario)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadPattern;
    use sqlb_agents::{EnabledReasons, ProviderDepartureRule};

    fn small_config(duration: f64, seed: u64) -> SimulationConfig {
        SimulationConfig::scaled(16, 32, duration, seed)
    }

    #[test]
    fn donor_score_guards_convergence_and_prefers_the_under_served() {
        let weight = Simulator::MIGRATION_SATISFACTION_WEIGHT;
        // The monotone-convergence guard: a zero-throughput donor moves
        // nothing, a ≥gap donor would overshoot and oscillate.
        assert_eq!(donor_score(0, 10, 0.5, weight), None);
        assert_eq!(donor_score(10, 10, 0.5, weight), None);
        assert_eq!(donor_score(15, 10, 0.5, weight), None);

        // Equal distance from half the gap: the lower-satisfaction donor
        // scores strictly better.
        let served = donor_score(5, 10, 0.9, weight).unwrap();
        let under_served = donor_score(5, 10, 0.1, weight).unwrap();
        assert!(under_served < served);

        // The satisfaction penalty is bounded by `weight × gap/2`, so it
        // cannot overturn a decisively better throughput match: a donor on
        // target with satisfaction 1.0 still beats one a full half-gap off
        // target with satisfaction 0.0.
        let on_target_served = donor_score(5, 10, 1.0, weight).unwrap();
        let off_target_under_served = donor_score(1, 10, 0.0, weight).unwrap();
        assert!(on_target_served < off_target_under_served);

        // Out-of-range satisfaction readings are clamped, not amplified.
        assert_eq!(
            donor_score(3, 10, -4.0, weight),
            donor_score(3, 10, 0.0, weight)
        );
        assert_eq!(
            donor_score(3, 10, 7.0, weight),
            donor_score(3, 10, 1.0, weight)
        );
    }

    #[test]
    fn captive_run_completes_and_accounts_for_queries() {
        let report = run_simulation(
            small_config(300.0, 1).with_workload(WorkloadPattern::Fixed(0.5)),
            Method::Sqlb,
        )
        .unwrap();
        assert!(report.issued_queries > 100, "got {}", report.issued_queries);
        assert!(report.completed_queries > 0);
        assert!(report.completed_queries <= report.issued_queries);
        assert_eq!(report.unallocated_queries, 0);
        assert!(report.mean_response_time() > 0.0);
        assert!(report.provider_departures.is_empty());
        assert!(report.consumer_departures.is_empty());
        assert!(!report.series.utilization_mean.is_empty());
        assert_eq!(report.method, "SQLB");
        assert_eq!(report.mediator_shards, 1);
        assert_eq!(report.sync_rounds, 0, "a mono-mediator run never syncs");
        assert_eq!(report.shard_allocations.len(), 1);
        assert_eq!(report.shard_allocations[0], report.issued_queries);
    }

    #[test]
    fn runs_are_deterministic_for_a_given_seed() {
        let a = run_simulation(small_config(200.0, 3), Method::CapacityBased).unwrap();
        let b = run_simulation(small_config(200.0, 3), Method::CapacityBased).unwrap();
        assert_eq!(a.issued_queries, b.issued_queries);
        assert_eq!(a.completed_queries, b.completed_queries);
        assert_eq!(
            a.series.utilization_mean.values(),
            b.series.utilization_mean.values()
        );
        let c = run_simulation(small_config(200.0, 4), Method::CapacityBased).unwrap();
        assert_ne!(a.issued_queries, c.issued_queries);
    }

    #[test]
    fn explicit_k1_is_bit_identical_to_the_default_mono_engine() {
        // The acceptance bar for the sharding refactor: asking for one
        // shard must reproduce the mono-mediator pipeline exactly, sample
        // by sample.
        let mono = run_simulation(small_config(300.0, 9), Method::Sqlb).unwrap();
        let k1 = run_simulation(
            small_config(300.0, 9)
                .with_mediator_shards(1)
                .with_sync_interval(10.0),
            Method::Sqlb,
        )
        .unwrap();
        assert_eq!(mono.issued_queries, k1.issued_queries);
        assert_eq!(mono.completed_queries, k1.completed_queries);
        assert_eq!(
            mono.series.utilization_mean.values(),
            k1.series.utilization_mean.values()
        );
        assert_eq!(
            mono.series.consumer_allocation_satisfaction_mean.values(),
            k1.series.consumer_allocation_satisfaction_mean.values()
        );
        assert_eq!(mono.response_times.mean(), k1.response_times.mean(),);
    }

    #[test]
    fn sharded_runs_complete_and_spread_allocations() {
        for shards in [2usize, 4] {
            let report = run_simulation(
                small_config(300.0, 21)
                    .with_workload(WorkloadPattern::Fixed(0.5))
                    .with_mediator_shards(shards),
                Method::Sqlb,
            )
            .unwrap();
            assert_eq!(report.mediator_shards, shards);
            assert_eq!(report.shard_allocations.len(), shards);
            assert!(
                report.shard_allocations.iter().all(|&a| a > 0),
                "every shard should mediate some queries: {:?}",
                report.shard_allocations
            );
            assert_eq!(
                report.shard_allocations.iter().sum::<u64>(),
                report.issued_queries - report.unallocated_queries
            );
            assert!(report.sync_rounds > 0, "sharded runs synchronize views");
            assert!(report.completion_rate() > 0.5);
        }
    }

    #[test]
    fn per_shard_series_are_recorded() {
        for shards in [1usize, 4] {
            let report = run_simulation(
                small_config(300.0, 21)
                    .with_workload(WorkloadPattern::Fixed(0.5))
                    .with_mediator_shards(shards),
                Method::Sqlb,
            )
            .unwrap();
            let series = &report.series;
            assert_eq!(series.shard_utilization.len(), shards);
            assert_eq!(series.shard_satisfaction.len(), shards);
            let samples = series.utilization_mean.len();
            for shard in 0..shards {
                assert_eq!(series.shard_utilization[shard].len(), samples);
                assert_eq!(series.shard_satisfaction[shard].len(), samples);
                assert!(series.shard_utilization[shard].mean_after(100.0) > 0.0);
            }
            assert_eq!(series.shard_utilization_spread.len(), samples);
            if shards == 1 {
                // One shard owns everything: its series equals the global
                // mean and the spread is identically zero.
                assert_eq!(
                    series.shard_utilization[0].values(),
                    series.utilization_mean.values()
                );
                assert!(series
                    .shard_utilization_spread
                    .values()
                    .iter()
                    .all(|&v| v == 0.0));
            } else {
                assert!(series.shard_utilization_spread.mean_after(100.0) > 0.0);
            }
        }
    }

    #[test]
    fn sharded_runs_are_deterministic_too() {
        let config = small_config(250.0, 33).with_mediator_shards(4);
        let a = run_simulation(config, Method::Sqlb).unwrap();
        let b = run_simulation(config, Method::Sqlb).unwrap();
        assert_eq!(a.issued_queries, b.issued_queries);
        assert_eq!(a.shard_allocations, b.shard_allocations);
        assert_eq!(
            a.series.consumer_satisfaction_mean.values(),
            b.series.consumer_satisfaction_mean.values()
        );
    }

    #[test]
    fn queries_fall_over_to_other_shards_when_one_empties() {
        // One provider per shard: any single departure empties a shard.
        // An aggressive starvation rule makes the under-utilized
        // high-capacity providers leave while the small ones stay busy and
        // survive. Captive consumers routed to an emptied shard must fall
        // over to a surviving shard instead of being dropped — unallocated
        // queries are only legitimate once *every* provider has left.
        let aggressive_starvation = ProviderDepartureRule {
            starvation_fraction: 0.9,
            min_proposed_queries: 1,
            required_consecutive: 1,
            enabled: EnabledReasons {
                dissatisfaction: false,
                starvation: true,
                overutilization: false,
            },
            ..ProviderDepartureRule::default()
        };
        let config = SimulationConfig::scaled(8, 4, 900.0, 17)
            .with_workload(WorkloadPattern::Fixed(0.6))
            .with_provider_departures(aggressive_starvation)
            .with_mediator_shards(4);
        let report = run_simulation(config, Method::MariposaLike).unwrap();
        assert!(
            !report.provider_departures.is_empty(),
            "the scenario needs at least one emptied shard to be meaningful"
        );
        assert!(
            report.provider_departures.len() < report.initial_providers,
            "some provider must survive for fall-over to have a target"
        );
        assert_eq!(
            report.unallocated_queries, 0,
            "queries to an emptied shard must fall over while providers remain"
        );
    }

    #[test]
    fn all_methods_run_at_moderate_workload() {
        for method in [
            Method::Sqlb,
            Method::CapacityBased,
            Method::MariposaLike,
            Method::Random,
            Method::RoundRobin,
        ] {
            let report = run_simulation(
                small_config(150.0, 5).with_workload(WorkloadPattern::Fixed(0.6)),
                method,
            )
            .unwrap();
            assert!(report.issued_queries > 0, "{method:?} issued no query");
            assert!(
                report.completion_rate() > 0.5,
                "{method:?} completed only {}",
                report.completion_rate()
            );
        }
    }

    #[test]
    fn sqlb_satisfies_consumers_more_than_capacity_based() {
        let config = small_config(400.0, 11).with_workload(WorkloadPattern::Fixed(0.6));
        let sqlb = run_simulation(config, Method::Sqlb).unwrap();
        let capacity = run_simulation(config, Method::CapacityBased).unwrap();
        let sqlb_cas = sqlb
            .series
            .consumer_allocation_satisfaction_mean
            .last_value()
            .unwrap();
        let cap_cas = capacity
            .series
            .consumer_allocation_satisfaction_mean
            .last_value()
            .unwrap();
        assert!(
            sqlb_cas > 1.0,
            "SQLB should satisfy consumers (δas > 1), got {sqlb_cas}"
        );
        assert!(
            sqlb_cas > cap_cas,
            "SQLB {sqlb_cas} should beat Capacity based {cap_cas}"
        );
    }

    #[test]
    fn capacity_based_balances_load_best() {
        let config = small_config(400.0, 13).with_workload(WorkloadPattern::Fixed(0.7));
        let capacity = run_simulation(config, Method::CapacityBased).unwrap();
        let mariposa = run_simulation(config, Method::MariposaLike).unwrap();
        let cap_fair = capacity.series.utilization_fairness.mean_after(100.0);
        let mar_fair = mariposa.series.utilization_fairness.mean_after(100.0);
        assert!(
            cap_fair > mar_fair,
            "Capacity based fairness {cap_fair} should exceed Mariposa-like {mar_fair}"
        );
    }

    #[test]
    fn autonomous_run_records_departures() {
        let config = small_config(600.0, 17)
            .with_workload(WorkloadPattern::Fixed(0.8))
            .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL));
        let report = run_simulation(config, Method::MariposaLike).unwrap();
        assert!(
            !report.provider_departures.is_empty(),
            "Mariposa-like at 80% workload should lose providers"
        );
        assert!(report.provider_departure_fraction() <= 1.0);
        // Departed providers are reflected in the active-provider series.
        let last_active = report.series.active_providers.last_value().unwrap();
        assert!(last_active < report.initial_providers as f64);
    }

    #[test]
    fn non_dyadic_intervals_do_not_drift() {
        // Regression: periodic events used to be scheduled at
        // `previous + interval`, so a non-dyadic interval like 0.1 s
        // accumulated rounding drift and could change the number of
        // samples a run records. Tick-based scheduling pins sample `k` at
        // exactly `k × interval`.
        let mut config = small_config(100.0, 7).with_workload(WorkloadPattern::Fixed(0.4));
        config.sample_interval_secs = 0.1;
        let report = run_simulation(config, Method::Sqlb).unwrap();
        let points = report.series.utilization_mean.points();
        assert_eq!(
            points.len(),
            1000,
            "100 s at a 0.1 s cadence is exactly 1000 samples"
        );
        for (i, point) in points.iter().enumerate() {
            let expected = (i + 1) as f64 * 0.1;
            assert_eq!(
                point.time.to_bits(),
                expected.to_bits(),
                "sample {i} drifted: {} != {expected}",
                point.time
            );
        }
    }

    #[test]
    fn tick_scheduling_matches_repeated_addition_for_dyadic_intervals() {
        // The flip side of the drift fix: for dyadic intervals (every
        // committed configuration) the tick schedule is bit-identical to
        // the old one, which is what keeps historical seeds reproducible.
        let report = run_simulation(
            small_config(300.0, 1).with_workload(WorkloadPattern::Fixed(0.5)),
            Method::Sqlb,
        )
        .unwrap();
        let interval = 3.0; // 300 s / 100 samples
        for (i, point) in report.series.utilization_mean.points().iter().enumerate() {
            let mut by_addition = 0.0f64;
            for _ in 0..=i {
                by_addition += interval;
            }
            assert_eq!(point.time.to_bits(), by_addition.to_bits());
        }
    }

    #[test]
    fn every_mediation_backend_reproduces_the_same_run_bit_for_bit() {
        // The acceptance bar for the reactor rewrite: routing the gather
        // step through the threaded runtime or the asynchronous reactor
        // must not change a single bit of the report — the backends ask
        // the same agents the same questions in the same order.
        let config = small_config(150.0, 9).with_workload(WorkloadPattern::Fixed(0.6));
        let inline = run_simulation(config, Method::Sqlb).unwrap();
        let threaded = run_simulation(
            config.with_mediation(crate::MediationMode::Threaded),
            Method::Sqlb,
        )
        .unwrap();
        let reactor = run_simulation(
            config.with_mediation(crate::MediationMode::Reactor),
            Method::Sqlb,
        )
        .unwrap();
        assert_eq!(inline.digest(), threaded.digest());
        assert_eq!(inline.digest(), reactor.digest());
        assert_eq!(
            inline.series.utilization_mean.values(),
            reactor.series.utilization_mean.values()
        );
    }

    #[test]
    fn the_reactor_backend_supports_bids_and_shards() {
        // The economic method gathers bids through the wave, and K>1 runs
        // mediate per-shard candidate sets through it.
        let config = small_config(150.0, 5)
            .with_workload(WorkloadPattern::Fixed(0.6))
            .with_mediator_shards(2);
        let inline = run_simulation(config, Method::MariposaLike).unwrap();
        let reactor = run_simulation(
            config.with_mediation(crate::MediationMode::Reactor),
            Method::MariposaLike,
        )
        .unwrap();
        assert_eq!(inline.digest(), reactor.digest());
        assert_eq!(inline.shard_allocations, reactor.shard_allocations);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = small_config(100.0, 0);
        config.duration_secs = -1.0;
        assert!(Simulator::new(config, Method::Sqlb).is_err());
    }

    #[test]
    fn the_socket_backend_reproduces_the_run_bit_for_bit() {
        // The acceptance bar for the transport: gathering over real
        // loopback TCP sockets (frames out, frames back, replies
        // computed from the decoded wire content) must not change a
        // single bit of the report relative to the in-process backends.
        let config = small_config(150.0, 9).with_workload(WorkloadPattern::Fixed(0.6));
        let inline = run_simulation(config, Method::Sqlb).unwrap();
        let socket = run_simulation(
            config.with_mediation(crate::MediationMode::Socket),
            Method::Sqlb,
        )
        .unwrap();
        let reactor = run_simulation(
            config.with_mediation(crate::MediationMode::Reactor),
            Method::Sqlb,
        )
        .unwrap();
        assert_eq!(socket.digest(), inline.digest());
        assert_eq!(socket.digest(), reactor.digest());
        assert_eq!(
            socket.series.utilization_mean.values(),
            inline.series.utilization_mean.values()
        );
    }

    #[test]
    fn same_instant_socket_arrivals_coalesce_into_one_wave() {
        // Force a burst of arrivals onto one virtual instant (the Poisson
        // process essentially never produces dt = 0 on its own) and check
        // the socket backend mediates them in fewer waves than arrivals —
        // while still issuing and allocating every one of them.
        let config = small_config(60.0, 23)
            .with_workload(WorkloadPattern::Fixed(0.5))
            .with_mediator_shards(2)
            .with_mediation(crate::MediationMode::Socket);
        let mut sim = Simulator::new(config, Method::Sqlb).unwrap();
        for _ in 0..8 {
            sim.queue
                .schedule(SimTime::from_secs(0.0), Event::QueryArrival);
        }
        let (time, event) = sim.queue.pop().unwrap();
        assert_eq!(time.as_secs(), 0.0);
        assert!(matches!(event, Event::QueryArrival));
        sim.now = time;
        sim.handle_arrival();

        assert_eq!(sim.issued, 8, "the whole burst is drained in one turn");
        let MediationDriver::Socket(socket) = &sim.mediation else {
            unreachable!("the test runs the socket backend");
        };
        let waves = socket.last_round().wave;
        assert!(
            waves < 8,
            "8 same-instant arrivals should coalesce into fewer waves, ran {waves}"
        );
        assert!(
            waves >= 4,
            "2 shards bound the batch width at 2, so at least 4 waves must run, ran {waves}"
        );
    }

    #[test]
    fn single_shard_least_loaded_runs_keep_the_coalesced_arrival_path() {
        // Regression: load-reactive routing used to suspend the coalesced
        // socket-arrival path unconditionally, K = 1 included. With a
        // single shard every route is shard 0 no matter what the policy
        // observes, so there is nothing for the batched drain to get
        // wrong — the guard now keeps the path engaged, and this pins
        // that it stays bit-identical to the sequential interleaving and
        // to the inline engine (same-instant bursts included).
        let run = |mode: crate::MediationMode, coalesce: bool| {
            let config = small_config(90.0, 23)
                .with_workload(WorkloadPattern::Fixed(0.5))
                .with_routing(crate::RoutingPolicyKind::LeastLoaded)
                .with_mediation(mode)
                .with_socket_wave_coalescing(coalesce);
            let mut sim = Simulator::new(config, Method::Sqlb).unwrap();
            for _ in 0..6 {
                sim.queue
                    .schedule(SimTime::from_secs(0.5), Event::QueryArrival);
            }
            sim.run()
        };
        let coalesced = run(crate::MediationMode::Socket, true);
        let sequential = run(crate::MediationMode::Socket, false);
        let inline = run(crate::MediationMode::Inline, true);
        assert_eq!(coalesced.digest(), sequential.digest());
        assert_eq!(coalesced.digest(), inline.digest());
        assert_eq!(coalesced.issued_queries, sequential.issued_queries);
    }

    #[test]
    fn coalesced_socket_waves_stay_bit_identical() {
        // Same forced burst, full runs: coalescing on vs. off must agree
        // bit for bit — the draws, the mediated answers and the
        // allocation order all line up with the sequential interleaving.
        let run = |coalesce: bool| {
            let config = small_config(120.0, 11)
                .with_workload(WorkloadPattern::Fixed(0.6))
                .with_mediator_shards(2)
                .with_mediation(crate::MediationMode::Socket)
                .with_socket_wave_coalescing(coalesce);
            let mut sim = Simulator::new(config, Method::Sqlb).unwrap();
            for _ in 0..6 {
                sim.queue
                    .schedule(SimTime::from_secs(0.5), Event::QueryArrival);
            }
            sim.run()
        };
        let coalesced = run(true);
        let sequential = run(false);
        assert_eq!(coalesced.digest(), sequential.digest());
        assert_eq!(coalesced.issued_queries, sequential.issued_queries);
        assert_eq!(
            coalesced.series.utilization_mean.values(),
            sequential.series.utilization_mean.values()
        );
    }

    #[test]
    fn the_socket_backend_supports_bids_shards_and_many_hosts() {
        let config = small_config(150.0, 5)
            .with_workload(WorkloadPattern::Fixed(0.6))
            .with_mediator_shards(2);
        let inline = run_simulation(config, Method::MariposaLike).unwrap();
        for hosts in [1usize, 4] {
            let socket = run_simulation(
                config
                    .with_mediation(crate::MediationMode::Socket)
                    .with_socket_hosts(hosts),
                Method::MariposaLike,
            )
            .unwrap();
            assert_eq!(socket.digest(), inline.digest(), "hosts={hosts}");
            assert_eq!(socket.shard_allocations, inline.shard_allocations);
        }
    }

    #[test]
    fn the_socket_backend_survives_departures() {
        // Departures deregister endpoints from the wave server and close
        // emptied host connections; the run must stay bit-identical to
        // the inline engine throughout.
        let config = small_config(600.0, 17)
            .with_workload(WorkloadPattern::Fixed(0.8))
            .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL));
        let inline = run_simulation(config, Method::MariposaLike).unwrap();
        assert!(!inline.provider_departures.is_empty());
        let socket = run_simulation(
            config.with_mediation(crate::MediationMode::Socket),
            Method::MariposaLike,
        )
        .unwrap();
        assert_eq!(socket.digest(), inline.digest());
        assert_eq!(
            socket.provider_departures.len(),
            inline.provider_departures.len()
        );
    }

    #[test]
    fn capability_matchmaking_is_off_by_default_and_changes_candidates_when_on() {
        let config = small_config(300.0, 21).with_workload(WorkloadPattern::Fixed(0.5));
        let default_run = run_simulation(config, Method::Sqlb).unwrap();
        let filtered =
            run_simulation(config.with_capability_matchmaking(true), Method::Sqlb).unwrap();
        // The filtered run completes every query (the class-capable
        // subset is never empty at this scale) and is deterministic.
        assert_eq!(filtered.unallocated_queries, 0);
        assert_eq!(filtered.issued_queries, default_run.issued_queries);
        let filtered_again =
            run_simulation(config.with_capability_matchmaking(true), Method::Sqlb).unwrap();
        assert_eq!(filtered.digest(), filtered_again.digest());
        // And it genuinely narrows candidate sets: the allocation
        // outcomes differ from the all-providers run.
        assert_ne!(
            filtered.digest(),
            default_run.digest(),
            "capability filtering should exclude class-averse providers"
        );
    }

    #[test]
    fn capability_matchmaking_agrees_across_mediation_backends() {
        // The filtered candidate set feeds every backend identically —
        // including over sockets, where the class topic travels in the
        // query description.
        let config = small_config(150.0, 13)
            .with_workload(WorkloadPattern::Fixed(0.6))
            .with_capability_matchmaking(true);
        let inline = run_simulation(config, Method::Sqlb).unwrap();
        let socket = run_simulation(
            config.with_mediation(crate::MediationMode::Socket),
            Method::Sqlb,
        )
        .unwrap();
        let reactor = run_simulation(
            config.with_mediation(crate::MediationMode::Reactor),
            Method::Sqlb,
        )
        .unwrap();
        assert_eq!(inline.digest(), socket.digest());
        assert_eq!(inline.digest(), reactor.digest());
    }
}
