//! Simulation configuration.

use serde::{Deserialize, Serialize};
use sqlb_agents::{ConsumerDepartureRule, PopulationConfig, ProviderDepartureRule};
use sqlb_baselines::{CapacityBased, MariposaLike, RandomAllocator, RoundRobinAllocator};
use sqlb_core::{AllocationMethod, SqlbAllocator};
use sqlb_types::SqlbError;

use crate::routing::RoutingPolicyKind;
use crate::workload::WorkloadPattern;

/// The allocation method under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// The paper's contribution: Satisfaction-based Query Load Balancing.
    Sqlb,
    /// The Capacity based baseline (Section 6.2.1).
    CapacityBased,
    /// The Mariposa-like economic baseline (Section 6.2.2).
    MariposaLike,
    /// Uniform random allocation (ablation reference).
    Random,
    /// Round-robin allocation (ablation reference).
    RoundRobin,
}

impl Method {
    /// The three methods the paper evaluates, in the order its figures list
    /// them.
    pub const PAPER_METHODS: [Method; 3] =
        [Method::Sqlb, Method::MariposaLike, Method::CapacityBased];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Method::Sqlb => "SQLB",
            Method::CapacityBased => "Capacity based",
            Method::MariposaLike => "Mariposa-like",
            Method::Random => "Random",
            Method::RoundRobin => "Round-robin",
        }
    }

    /// Builds a fresh allocator instance. `seed` is only used by the
    /// randomized reference method.
    pub fn build(self, seed: u64) -> Box<dyn AllocationMethod> {
        match self {
            Method::Sqlb => Box::new(SqlbAllocator::new()),
            Method::CapacityBased => Box::new(CapacityBased::new()),
            Method::MariposaLike => Box::new(MariposaLike::new()),
            Method::Random => Box::new(RandomAllocator::new(seed)),
            Method::RoundRobin => Box::new(RoundRobinAllocator::new()),
        }
    }

    /// Whether this method runs the economic (bidding) protocol, in which
    /// case the simulator gathers bids from the providers.
    pub fn uses_bids(self) -> bool {
        matches!(self, Method::MariposaLike)
    }
}

/// Which mediation backend the engine gathers intentions through.
///
/// All four backends ask the *same* agents the *same* questions in the
/// same per-participant order, so a run's report is bit-identical across
/// them for a given seed — pinned by the cross-backend digest tests and
/// the `report_digest` binary. What changes is the machinery:
///
/// ```
/// use sqlb_sim::{MediationMode, Method, SimulationConfig};
/// use sqlb_sim::engine::run_simulation;
///
/// let config = SimulationConfig::scaled(8, 16, 60.0, 7);
/// let inline = run_simulation(config, Method::Sqlb).unwrap();
/// let reactor = run_simulation(
///     config.with_mediation(MediationMode::Reactor),
///     Method::Sqlb,
/// )
/// .unwrap();
/// assert_eq!(inline.digest(), reactor.digest());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MediationMode {
    /// Intentions are computed by direct in-process calls on the arrival
    /// hot path — no mediation layer at all. The fastest backend and the
    /// default (the paper's evaluation substrate).
    #[default]
    Inline,
    /// Every arrival forks one OS thread per participant request and
    /// waits for the replies until a real deadline — the legacy
    /// thread-per-participant model, kept as the comparison backend.
    Threaded,
    /// Every arrival runs as one wave of the asynchronous mediation
    /// reactor: participant endpoints are polled state machines on a
    /// single event loop with per-endpoint deadline tracking
    /// (`sqlb-mediation::reactor`).
    Reactor,
    /// Every arrival runs as one wave over real loopback TCP sockets
    /// (`sqlb-transport`): the engine hosts a mediator-side wave server
    /// and multiplexes its participants over
    /// [`SimulationConfig::socket_hosts`] participant-host connections;
    /// requests and replies travel as framed bytes, and late or missing
    /// replies degrade to indifference at the wave deadline.
    Socket,
}

impl MediationMode {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            MediationMode::Inline => "inline",
            MediationMode::Threaded => "threaded",
            MediationMode::Reactor => "reactor",
            MediationMode::Socket => "socket",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Population (participants, classes, preferences).
    pub population: PopulationConfig,
    /// Workload pattern over the run.
    pub workload: WorkloadPattern,
    /// Length of the run, in seconds of virtual time.
    pub duration_secs: f64,
    /// Seed for the arrival process and per-query draws. Repetition `i` of
    /// an experiment uses `seed + i`.
    pub seed: u64,
    /// `q.n`: number of providers each query asks for (the paper uses 1).
    pub query_n: u32,
    /// Whether consumers are allowed to leave the system.
    pub consumers_may_leave: bool,
    /// Whether providers are allowed to leave the system.
    pub providers_may_leave: bool,
    /// The provider departure rule (thresholds and enabled reasons).
    pub provider_departure: ProviderDepartureRule,
    /// The consumer departure rule.
    pub consumer_departure: ConsumerDepartureRule,
    /// Interval between metric snapshots, in seconds.
    pub sample_interval_secs: f64,
    /// Interval between departure assessments, in seconds.
    pub assessment_interval_secs: f64,
    /// Virtual time before which no departure is evaluated, letting the
    /// sliding utilization windows and satisfaction memories fill up before
    /// participants judge the system.
    pub departure_warmup_secs: f64,
    /// Number of mediator shards the providers are partitioned across.
    /// `1` reproduces the paper's mono-mediator system exactly.
    pub mediator_shards: usize,
    /// Interval between satisfaction-view synchronizations across shards,
    /// in seconds. Ignored when `mediator_shards == 1`.
    pub sync_interval_secs: f64,
    /// How queries are routed to mediator shards. Ignored when
    /// `mediator_shards == 1` (there is only one place to go).
    pub routing: RoutingPolicyKind,
    /// Whether periodic cross-shard load rebalancing (provider migration)
    /// runs. Ignored when `mediator_shards == 1`.
    pub migration_enabled: bool,
    /// Interval between rebalancing rounds, in seconds. Ignored unless
    /// `migration_enabled` and `mediator_shards > 1`.
    pub rebalance_interval_secs: f64,
    /// Minimum spread between the hottest and coldest shard's mean
    /// provider utilization before a rebalancing round migrates a
    /// provider. Keeps migration from thrashing on noise.
    pub migration_min_spread: f64,
    /// Which mediation backend gathers intentions (inline calls, the
    /// legacy threaded runtime, the asynchronous reactor, or the socket
    /// transport). Reports are bit-identical across backends for a given
    /// seed.
    pub mediation: MediationMode,
    /// Number of loopback participant-host connections the socket
    /// backend multiplexes the participants over (one socket per host,
    /// not per endpoint). Ignored unless `mediation` is
    /// [`MediationMode::Socket`].
    pub socket_hosts: usize,
    /// Whether the candidate set `P_q` is produced by capability
    /// matchmaking (`sqlb-matchmaking`) instead of "every provider of
    /// the shard". Defaults to `false` — the paper's all-providers
    /// behaviour, which keeps K=1 digests unchanged. When enabled,
    /// queries are tagged with their class topic and only providers
    /// whose declared capabilities cover it are candidates (with a
    /// fall-back to the whole shard if no capable provider remains).
    pub capability_matchmaking: bool,
    /// Number of threads the Definition 7/8 scoring kernel fans a shard's
    /// candidate batch over. `1` (the default) scores inline, which also
    /// enables the lazy-argmax K=1 fast path. Any value produces
    /// bit-identical same-seed reports: chunking is a pure function of
    /// the batch length, each chunk writes a disjoint region of the score
    /// column, and ties still break on the lowest provider id.
    #[serde(default = "default_scoring_threads")]
    pub scoring_threads: usize,
    /// Whether the socket backend coalesces every query arrival landing
    /// on the same virtual instant into one multi-query mediation wave
    /// (one frame fan-out instead of one wave per arrival). On by
    /// default. Coalescing preserves bit-identical same-seed reports: it
    /// only merges arrivals whose consumers and shards are all distinct
    /// (so no arrival's answers can observe another's allocation), and it
    /// is automatically suspended under load-reactive routing on more
    /// than one shard, whose decisions read allocation state between
    /// arrivals (with a single shard every route is 0, so coalescing
    /// stays engaged — least-loaded K=1 runs keep the batched fan-out).
    /// Ignored by the in-process backends, which have no framing cost to
    /// amortize.
    #[serde(default = "default_socket_wave_coalescing")]
    pub socket_wave_coalescing: bool,
    /// Wave deadline of the mediated backends (threaded runtime, reactor
    /// and socket transport), in milliseconds: replies that miss it
    /// degrade to indifference. The default (5000 ms) is far beyond any
    /// loopback reply latency, so it never fires in fault-free runs;
    /// scenario campaigns that stall hosts lower it so each stalled wave
    /// pays a short, bounded penalty instead of five wall-clock seconds.
    /// Ignored by the inline backend, which has no wire to time out.
    #[serde(default = "default_wave_timeout_ms")]
    pub wave_timeout_ms: u64,
    /// Whether runtime observability (`sqlb-obs`) is enabled: counters,
    /// latency histograms and the structured flight recorder, threaded
    /// through the engine, the mediator shards and the mediation
    /// backends. Off by default — the disabled path is a single branch
    /// on a `None`, so fault-free hot-path behaviour and same-seed
    /// digests are identical either way (pinned by the
    /// `observability` integration tests).
    #[serde(default)]
    pub observability: bool,
}

/// Serde default for [`SimulationConfig::scoring_threads`], so configs
/// serialized before the knob existed deserialize to the sequential
/// scorer. (The vendored serde stub ignores the attribute; this matters
/// only under the real crate, so outside tests the function is unused.)
#[allow(dead_code)]
fn default_scoring_threads() -> usize {
    1
}

/// Serde default for [`SimulationConfig::socket_wave_coalescing`]: configs
/// serialized before the knob existed deserialize to the coalescing
/// behaviour, matching the constructors.
#[allow(dead_code)]
fn default_socket_wave_coalescing() -> bool {
    true
}

/// Serde default for [`SimulationConfig::wave_timeout_ms`]: configs
/// serialized before the knob existed deserialize to the historical
/// 5-second deadline.
#[allow(dead_code)]
fn default_wave_timeout_ms() -> u64 {
    5_000
}

impl SimulationConfig {
    /// The paper's configuration (Table 2): 200 consumers, 400 providers,
    /// 10 000 s runs. Captive participants by default; the experiment
    /// drivers toggle departures per figure.
    pub fn paper(seed: u64) -> Self {
        SimulationConfig {
            population: PopulationConfig::paper(seed),
            workload: WorkloadPattern::paper_ramp(),
            duration_secs: 10_000.0,
            seed,
            query_n: 1,
            consumers_may_leave: false,
            providers_may_leave: false,
            provider_departure: ProviderDepartureRule::default(),
            consumer_departure: ConsumerDepartureRule::default(),
            sample_interval_secs: 100.0,
            assessment_interval_secs: 50.0,
            departure_warmup_secs: 200.0,
            mediator_shards: 1,
            sync_interval_secs: 100.0,
            routing: RoutingPolicyKind::Static,
            migration_enabled: false,
            rebalance_interval_secs: 100.0,
            migration_min_spread: 0.1,
            mediation: MediationMode::Inline,
            socket_hosts: 2,
            capability_matchmaking: false,
            scoring_threads: 1,
            socket_wave_coalescing: true,
            wave_timeout_ms: 5_000,
            observability: false,
        }
    }

    /// A scaled-down configuration preserving the paper's class mix and
    /// window-to-population ratios. Used for tests, examples and the
    /// default benchmark runs (a full paper-scale run takes minutes per
    /// method; a scaled run takes well under a second).
    pub fn scaled(consumers: u32, providers: u32, duration_secs: f64, seed: u64) -> Self {
        let mut population = PopulationConfig::scaled(consumers, providers, seed);
        // Consumers keep the paper's 200-query memory: it smooths their
        // judgement of the mediator and does not need to shrink with the
        // population. The provider windows, in contrast, must preserve the
        // Table 2 window-to-population ratio (500 proposals for 400
        // providers) or the wins-per-window statistics — and with them the
        // satisfaction dynamics — would change completely at small scale.
        population.consumer_config.memory = 200;
        let provider_window = ((providers as f64) * 1.25).round() as usize;
        population.provider_config.proposed_memory = provider_window.max(8);
        population.provider_config.performed_memory = provider_window.max(8);
        let provider_departure = ProviderDepartureRule {
            min_proposed_queries: provider_window.max(8) as u64,
            ..ProviderDepartureRule::default()
        };
        let consumer_departure = ConsumerDepartureRule {
            min_issued_queries: ((consumers as u64) / 4).max(10),
            ..ConsumerDepartureRule::default()
        };
        SimulationConfig {
            population,
            workload: WorkloadPattern::paper_ramp(),
            duration_secs,
            seed,
            query_n: 1,
            consumers_may_leave: false,
            providers_may_leave: false,
            provider_departure,
            consumer_departure,
            sample_interval_secs: (duration_secs / 100.0).max(1.0),
            assessment_interval_secs: (duration_secs / 40.0).max(5.0),
            departure_warmup_secs: (2.5 * population.provider_config.utilization_window_secs)
                .min(duration_secs / 3.0),
            mediator_shards: 1,
            sync_interval_secs: (duration_secs / 100.0).max(1.0),
            routing: RoutingPolicyKind::Static,
            migration_enabled: false,
            // Slower than view sync: each round needs a window long enough
            // for per-shard allocation counts to be signal, not noise.
            rebalance_interval_secs: (duration_secs / 25.0).max(1.0),
            migration_min_spread: 0.1,
            mediation: MediationMode::Inline,
            socket_hosts: 2,
            capability_matchmaking: false,
            scoring_threads: 1,
            socket_wave_coalescing: true,
            wave_timeout_ms: 5_000,
            observability: false,
        }
    }

    /// Sets the workload pattern.
    pub fn with_workload(mut self, workload: WorkloadPattern) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the seed (population and arrival process).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.population.seed = seed;
        self
    }

    /// Enables provider departures with the given rule.
    pub fn with_provider_departures(mut self, rule: ProviderDepartureRule) -> Self {
        self.providers_may_leave = true;
        self.provider_departure = rule;
        self
    }

    /// Enables consumer departures with the given rule.
    pub fn with_consumer_departures(mut self, rule: ConsumerDepartureRule) -> Self {
        self.consumers_may_leave = true;
        self.consumer_departure = rule;
        self
    }

    /// Partitions the providers across `shards` mediator shards (1 = the
    /// paper's mono-mediator setup).
    pub fn with_mediator_shards(mut self, shards: usize) -> Self {
        self.mediator_shards = shards;
        self
    }

    /// Sets the interval between satisfaction-view synchronizations across
    /// shards.
    pub fn with_sync_interval(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Selects the consumer-routing policy (how queries pick their
    /// mediator shard).
    pub fn with_routing(mut self, routing: RoutingPolicyKind) -> Self {
        self.routing = routing;
        self
    }

    /// Enables (or disables) periodic cross-shard provider migration.
    pub fn with_migration(mut self, enabled: bool) -> Self {
        self.migration_enabled = enabled;
        self
    }

    /// Sets the interval between rebalancing rounds.
    pub fn with_rebalance_interval(mut self, secs: f64) -> Self {
        self.rebalance_interval_secs = secs;
        self
    }

    /// Sets the minimum per-shard utilization spread that triggers a
    /// migration.
    pub fn with_migration_min_spread(mut self, spread: f64) -> Self {
        self.migration_min_spread = spread;
        self
    }

    /// Selects the mediation backend intentions are gathered through.
    pub fn with_mediation(mut self, mediation: MediationMode) -> Self {
        self.mediation = mediation;
        self
    }

    /// Sets the number of loopback participant hosts of the socket
    /// backend (ignored by the other backends).
    pub fn with_socket_hosts(mut self, hosts: usize) -> Self {
        self.socket_hosts = hosts;
        self
    }

    /// Enables (or disables) same-instant wave coalescing on the socket
    /// backend (ignored by the other backends).
    pub fn with_socket_wave_coalescing(mut self, enabled: bool) -> Self {
        self.socket_wave_coalescing = enabled;
        self
    }

    /// Enables (or disables) capability matchmaking for the candidate
    /// set `P_q`.
    pub fn with_capability_matchmaking(mut self, enabled: bool) -> Self {
        self.capability_matchmaking = enabled;
        self
    }

    /// Sets the number of scoring-kernel threads (deterministic at any
    /// value; `1` keeps the sequential lazy-argmax fast path).
    pub fn with_scoring_threads(mut self, threads: usize) -> Self {
        self.scoring_threads = threads;
        self
    }

    /// Sets the mediated-backend wave deadline in milliseconds (replies
    /// that miss it degrade to indifference).
    pub fn with_wave_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.wave_timeout_ms = timeout_ms;
        self
    }

    /// Enables (or disables) runtime observability: counters, latency
    /// histograms and the flight recorder. Same-seed reports are
    /// bit-identical either way.
    pub fn with_observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SqlbError> {
        self.population.validate()?;
        if self.duration_secs <= 0.0 {
            return Err(SqlbError::InvalidConfig {
                reason: "simulation duration must be positive".into(),
            });
        }
        if self.query_n == 0 {
            return Err(SqlbError::InvalidConfig {
                reason: "q.n must be at least 1".into(),
            });
        }
        if self.sample_interval_secs <= 0.0 || self.assessment_interval_secs <= 0.0 {
            return Err(SqlbError::InvalidConfig {
                reason: "sampling and assessment intervals must be positive".into(),
            });
        }
        if self.mediator_shards == 0 {
            return Err(SqlbError::InvalidConfig {
                reason: "at least one mediator shard is required".into(),
            });
        }
        if self.mediator_shards > self.population.providers as usize {
            return Err(SqlbError::InvalidConfig {
                reason: format!(
                    "{} mediator shards cannot partition {} providers (shards would start empty)",
                    self.mediator_shards, self.population.providers
                ),
            });
        }
        if self.sync_interval_secs <= 0.0 {
            return Err(SqlbError::InvalidConfig {
                reason: "the shard synchronization interval must be positive".into(),
            });
        }
        if self.rebalance_interval_secs <= 0.0 {
            return Err(SqlbError::InvalidConfig {
                reason: "the rebalance interval must be positive".into(),
            });
        }
        if !self.migration_min_spread.is_finite() || self.migration_min_spread < 0.0 {
            return Err(SqlbError::InvalidConfig {
                reason: "the migration spread threshold must be finite and non-negative".into(),
            });
        }
        if self.mediation == MediationMode::Socket && self.socket_hosts == 0 {
            return Err(SqlbError::InvalidConfig {
                reason: "the socket backend needs at least one participant host".into(),
            });
        }
        if self.scoring_threads == 0 {
            return Err(SqlbError::InvalidConfig {
                reason: "at least one scoring thread is required".into(),
            });
        }
        if self.wave_timeout_ms == 0 {
            return Err(SqlbError::InvalidConfig {
                reason: "the wave timeout must be at least one millisecond".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_2() {
        let c = SimulationConfig::paper(0);
        assert_eq!(c.population.consumers, 200);
        assert_eq!(c.population.providers, 400);
        assert_eq!(c.population.consumer_config.memory, 200);
        assert_eq!(c.population.provider_config.performed_memory, 500);
        assert_eq!(c.query_n, 1);
        assert_eq!(c.duration_secs, 10_000.0);
        assert_eq!(c.mediator_shards, 1, "the paper runs a single mediator");
        assert!(c.validate().is_ok());
        assert!(!c.consumers_may_leave && !c.providers_may_leave);
    }

    #[test]
    fn scaled_config_preserves_window_ratios() {
        let c = SimulationConfig::scaled(40, 80, 1_000.0, 7);
        assert_eq!(c.population.consumer_config.memory, 200);
        assert_eq!(c.population.provider_config.proposed_memory, 100);
        assert_eq!(c.provider_departure.min_proposed_queries, 100);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_set_flags() {
        let c = SimulationConfig::scaled(10, 20, 100.0, 0)
            .with_workload(WorkloadPattern::Fixed(0.8))
            .with_seed(9)
            .with_provider_departures(ProviderDepartureRule::default())
            .with_consumer_departures(ConsumerDepartureRule::default())
            .with_mediator_shards(4)
            .with_sync_interval(25.0)
            .with_routing(RoutingPolicyKind::LeastLoaded)
            .with_migration(true)
            .with_rebalance_interval(40.0)
            .with_migration_min_spread(0.2);
        assert_eq!(c.workload, WorkloadPattern::Fixed(0.8));
        assert_eq!(c.seed, 9);
        assert_eq!(c.population.seed, 9);
        assert!(c.providers_may_leave);
        assert!(c.consumers_may_leave);
        assert_eq!(c.mediator_shards, 4);
        assert_eq!(c.sync_interval_secs, 25.0);
        assert_eq!(c.routing, RoutingPolicyKind::LeastLoaded);
        assert!(c.migration_enabled);
        assert_eq!(c.rebalance_interval_secs, 40.0);
        assert_eq!(c.migration_min_spread, 0.2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn migration_defaults_are_off_and_static() {
        // The paper's setup — and the bit-identity contract with earlier
        // revisions — needs the new knobs to default to no-ops.
        for c in [
            SimulationConfig::paper(0),
            SimulationConfig::scaled(10, 20, 100.0, 0),
        ] {
            assert_eq!(c.routing, RoutingPolicyKind::Static);
            assert!(!c.migration_enabled);
            assert!(c.rebalance_interval_secs > 0.0);
            assert!(c.migration_min_spread > 0.0);
            assert_eq!(c.mediation, MediationMode::Inline);
            assert!(
                !c.capability_matchmaking,
                "the paper's all-providers candidate set is the default"
            );
            assert!(c.socket_hosts >= 1);
            assert_eq!(c.scoring_threads, 1, "sequential scoring is the default");
            assert!(
                c.socket_wave_coalescing,
                "socket wave coalescing is on by default (bit-identical either way)"
            );
            assert_eq!(
                c.wave_timeout_ms, 5_000,
                "the historical 5 s wave deadline is the default"
            );
            assert!(!c.observability, "observability is off by default");
            assert!(c.with_observability(true).observability);
        }
        assert_eq!(super::default_scoring_threads(), 1);
        assert!(super::default_socket_wave_coalescing());
        assert_eq!(super::default_wave_timeout_ms(), 5_000);
    }

    #[test]
    fn scoring_threads_knob_is_selectable_and_validated() {
        let c = SimulationConfig::scaled(10, 20, 100.0, 0).with_scoring_threads(8);
        assert_eq!(c.scoring_threads, 8);
        assert!(!c.with_socket_wave_coalescing(false).socket_wave_coalescing);
        assert!(c.validate().is_ok());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.scoring_threads = 0;
        assert!(c.validate().is_err(), "zero scoring threads is rejected");

        let c = SimulationConfig::scaled(10, 20, 100.0, 0).with_wave_timeout_ms(150);
        assert_eq!(c.wave_timeout_ms, 150);
        assert!(c.validate().is_ok());
        assert!(
            c.with_wave_timeout_ms(0).validate().is_err(),
            "a zero wave deadline is rejected"
        );
    }

    #[test]
    fn mediation_modes_are_selectable_and_named() {
        let c = SimulationConfig::scaled(10, 20, 100.0, 0).with_mediation(MediationMode::Reactor);
        assert_eq!(c.mediation, MediationMode::Reactor);
        assert!(c.validate().is_ok());
        assert_eq!(MediationMode::Inline.name(), "inline");
        assert_eq!(MediationMode::Threaded.name(), "threaded");
        assert_eq!(MediationMode::Reactor.name(), "reactor");
        assert_eq!(MediationMode::Socket.name(), "socket");
        assert_eq!(MediationMode::default(), MediationMode::Inline);

        let c = SimulationConfig::scaled(10, 20, 100.0, 0)
            .with_mediation(MediationMode::Socket)
            .with_socket_hosts(4)
            .with_capability_matchmaking(true);
        assert_eq!(c.mediation, MediationMode::Socket);
        assert_eq!(c.socket_hosts, 4);
        assert!(c.capability_matchmaking);
        assert!(c.validate().is_ok());

        let mut c =
            SimulationConfig::scaled(10, 20, 100.0, 0).with_mediation(MediationMode::Socket);
        c.socket_hosts = 0;
        assert!(c.validate().is_err(), "socket mode needs at least one host");
        c.mediation = MediationMode::Inline;
        assert!(c.validate().is_ok(), "other backends ignore socket_hosts");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.duration_secs = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.query_n = 0;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.sample_interval_secs = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.mediator_shards = 0;
        assert!(c.validate().is_err());

        // More shards than providers would leave shards empty from the
        // start; every query routed there would be undeliverable.
        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.mediator_shards = 21;
        assert!(c.validate().is_err());
        c.mediator_shards = 20;
        assert!(c.validate().is_ok());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.sync_interval_secs = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.rebalance_interval_secs = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::scaled(10, 20, 100.0, 0);
        c.migration_min_spread = -0.1;
        assert!(c.validate().is_err());
        c.migration_min_spread = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn method_names_and_builders() {
        assert_eq!(Method::Sqlb.name(), "SQLB");
        assert_eq!(Method::CapacityBased.name(), "Capacity based");
        assert_eq!(Method::MariposaLike.name(), "Mariposa-like");
        for m in [
            Method::Sqlb,
            Method::CapacityBased,
            Method::MariposaLike,
            Method::Random,
            Method::RoundRobin,
        ] {
            let built = m.build(1);
            assert_eq!(built.name(), m.name());
        }
        assert!(Method::MariposaLike.uses_bids());
        assert!(!Method::Sqlb.uses_bids());
        assert_eq!(Method::PAPER_METHODS.len(), 3);
    }
}
