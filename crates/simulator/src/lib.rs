//! # sqlb-sim
//!
//! The discrete-event simulator used to reproduce the evaluation of the
//! SQLB paper (Section 6), plus the experiment drivers that regenerate
//! every figure and table.
//!
//! The simulated system follows the paper's setup — a mediation layer
//! allocating every incoming query, a population of heterogeneous consumers
//! and providers (crate `sqlb-agents`), Poisson query arrivals whose rate
//! is expressed as a fraction of the total system capacity, provider queue
//! servers with finite capacity, and optional participant departures — but
//! is mediator-count-agnostic: the [`shard`] module partitions providers
//! across K mediator shards, with K = 1 (the default) reproducing the
//! paper's mono-mediator results bit-for-bit.
//!
//! * [`config`] — simulation configuration (Table 2 defaults plus scaled
//!   variants), the [`config::Method`] selector for the allocation method
//!   under test and the [`config::MediationMode`] selector for the
//!   mediation backend intentions are gathered through (inline calls, the
//!   legacy threaded runtime, the asynchronous reactor, or the loopback
//!   socket transport — bit-identical reports either way);
//! * [`workload`] — workload patterns (fixed or ramping fraction of the
//!   total system capacity) and the Poisson arrival process;
//! * [`events`] — the event queue of the discrete-event engine;
//! * [`scenario`] — declarative scenario descriptions (arrival-rate
//!   schedules, correlated provider churn with re-join semantics,
//!   seeded transport faults), compiled into the event queue so
//!   same-seed scenario runs stay bit-identical;
//! * [`campaign`] — the named scenario-campaign matrix (scenarios ×
//!   allocation methods) behind the committed `BENCH_campaign.json`
//!   digest gate;
//! * [`matchmaking`] — opt-in capability matchmaking for the candidate
//!   set `P_q` (the default remains the paper's all-providers behaviour);
//! * [`routing`] — consumer-routing policies (static `consumer % K` or
//!   least-loaded) selecting the mediator shard of each query;
//! * [`shard`] — the mediator shard router, its satisfaction-view
//!   synchronization and cross-shard provider migration;
//! * [`stats`] — measurement collection: per-sample metric snapshots,
//!   response times, departure records and the final [`stats::SimulationReport`];
//! * [`engine`] — the simulator itself;
//! * [`experiments`] — one driver per paper figure/table (Figures 2–6,
//!   Tables 2–3), returning printable results.

#![deny(missing_docs)]

pub mod campaign;
pub mod config;
pub mod engine;
pub mod events;
pub mod experiments;
pub mod matchmaking;
pub mod routing;
pub mod scenario;
pub mod shard;
pub mod stats;
pub mod workload;

pub use config::{MediationMode, Method, SimulationConfig};
pub use engine::Simulator;
pub use routing::{
    LeastLoadedRouting, RoutingPolicy, RoutingPolicyKind, ShardLoadView, StaticRouting,
};
pub use scenario::{ArrivalModifier, ChurnGroup, RejoinPolicy, Scenario, TransportFault};
pub use shard::ShardRouter;
pub use stats::{DepartureRecord, MigrationRecord, SimulationReport};
pub use workload::WorkloadPattern;
