//! Experiment drivers: one function per figure/table of the paper's
//! evaluation (Section 6).
//!
//! Every driver is deterministic for a given [`ExperimentScale`] (the seed
//! is part of the scale) and returns a plain-data result with a
//! `to_text()` renderer, which is what the `sqlb-bench` regeneration
//! binaries print.
//!
//! The default scale is a reduced version of the paper's setup (same class
//! mix, same window-to-population ratios) so that the full suite runs in
//! seconds; [`ExperimentScale::paper`] reproduces the exact Table 2
//! configuration at the cost of minutes per figure.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sqlb_agents::{
    AdaptationClass, CapacityClass, DepartureReason, EnabledReasons, InterestClass,
    ProviderDepartureRule,
};
use sqlb_core::intention::{provider_intention, IntentionParams};
use sqlb_core::scoring::omega;
use sqlb_metrics::{SeriesSet, TimeSeries};
use sqlb_types::SqlbError;

use crate::config::{Method, SimulationConfig};
use crate::engine::run_simulation;
use crate::routing::RoutingPolicyKind;
use crate::stats::SimulationReport;
use crate::workload::WorkloadPattern;

/// The size/length/repetition knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Number of consumers.
    pub consumers: u32,
    /// Number of providers.
    pub providers: u32,
    /// Virtual duration of each run, in seconds.
    pub duration_secs: f64,
    /// Number of repetitions per configuration (`nbRepeat`, Table 2: 10).
    pub repetitions: u32,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's full Table 2 scale (expensive: minutes per figure).
    pub fn paper() -> Self {
        ExperimentScale {
            consumers: 200,
            providers: 400,
            duration_secs: 10_000.0,
            repetitions: 10,
            seed: 42,
        }
    }

    /// The default reduced scale used by the regeneration binaries
    /// (seconds per figure, same qualitative shapes).
    pub fn default_scaled() -> Self {
        ExperimentScale {
            consumers: 40,
            providers: 80,
            duration_secs: 1_500.0,
            repetitions: 2,
            seed: 42,
        }
    }

    /// A very small scale for tests.
    pub fn quick() -> Self {
        ExperimentScale {
            consumers: 12,
            providers: 24,
            duration_secs: 250.0,
            repetitions: 1,
            seed: 42,
        }
    }

    /// Builds the simulation configuration for repetition `rep`.
    pub fn config(&self, rep: u32) -> SimulationConfig {
        if self.consumers == 200 && self.providers == 400 {
            SimulationConfig::paper(self.seed + rep as u64)
        } else {
            SimulationConfig::scaled(
                self.consumers,
                self.providers,
                self.duration_secs,
                self.seed + rep as u64,
            )
        }
        .with_seed(self.seed + rep as u64)
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::default_scaled()
    }
}

// ---------------------------------------------------------------------------
// Figure 2 / Figure 3: analytic surfaces (no simulation needed).
// ---------------------------------------------------------------------------

/// One grid point of the Figure 2 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// Provider preference `prf_p(q)`.
    pub preference: f64,
    /// Provider utilization `Ut(p)`.
    pub utilization: f64,
    /// The resulting intention `pi_p(q)`.
    pub intention: f64,
}

/// Figure 2: the provider-intention surface over preference × utilization
/// for a fixed satisfaction (the paper plots `δs = 0.5`, preferences in
/// `[-1, 1]`, utilizations in `[0, 2]`).
pub fn fig2_provider_intention_surface(satisfaction: f64, steps: usize) -> Vec<Fig2Point> {
    let steps = steps.max(2);
    let mut points = Vec::with_capacity(steps * steps);
    for i in 0..steps {
        let preference = -1.0 + 2.0 * i as f64 / (steps - 1) as f64;
        for j in 0..steps {
            let utilization = 2.0 * j as f64 / (steps - 1) as f64;
            points.push(Fig2Point {
                preference,
                utilization,
                intention: provider_intention(
                    preference,
                    utilization,
                    satisfaction,
                    IntentionParams::default(),
                ),
            });
        }
    }
    points
}

/// Renders the Figure 2 surface as a gnuplot-style grid (blank line between
/// preference rows).
pub fn fig2_to_text(points: &[Fig2Point]) -> String {
    let mut out = String::from("# preference  utilization  intention\n");
    let mut last_pref = f64::NAN;
    for p in points {
        if !last_pref.is_nan() && (p.preference - last_pref).abs() > 1e-12 {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{:+.3} {:.3} {:+.4}",
            p.preference, p.utilization, p.intention
        );
        last_pref = p.preference;
    }
    out
}

/// One grid point of the Figure 3 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// Consumer satisfaction `δs(c)`.
    pub consumer_satisfaction: f64,
    /// Provider satisfaction `δs(p)`.
    pub provider_satisfaction: f64,
    /// The resulting trade-off weight `ω`.
    pub omega: f64,
}

/// Figure 3: the `ω` surface over consumer × provider satisfaction
/// (Equation 6).
pub fn fig3_omega_surface(steps: usize) -> Vec<Fig3Point> {
    let steps = steps.max(2);
    let mut points = Vec::with_capacity(steps * steps);
    for i in 0..steps {
        let c = i as f64 / (steps - 1) as f64;
        for j in 0..steps {
            let p = j as f64 / (steps - 1) as f64;
            points.push(Fig3Point {
                consumer_satisfaction: c,
                provider_satisfaction: p,
                omega: omega(c, p),
            });
        }
    }
    points
}

/// Renders the Figure 3 surface.
pub fn fig3_to_text(points: &[Fig3Point]) -> String {
    let mut out = String::from("# consumer_sat  provider_sat  omega\n");
    let mut last = f64::NAN;
    for p in points {
        if !last.is_nan() && (p.consumer_satisfaction - last).abs() > 1e-12 {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{:.3} {:.3} {:.4}",
            p.consumer_satisfaction, p.provider_satisfaction, p.omega
        );
        last = p.consumer_satisfaction;
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 4(a)–(h): captive participants, workload ramp.
// ---------------------------------------------------------------------------

/// The panels of Figure 4 that are time series under the workload ramp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fig4Panel {
    /// (a) providers' satisfaction mean based on intentions.
    ProviderSatisfactionIntention,
    /// (b) providers' satisfaction mean based on preferences.
    ProviderSatisfactionPreference,
    /// (c) providers' allocation-satisfaction mean based on preferences.
    ProviderAllocationSatisfactionPreference,
    /// (d) provider satisfaction fairness.
    ProviderSatisfactionFairness,
    /// (e) consumers' allocation-satisfaction mean.
    ConsumerAllocationSatisfaction,
    /// (f) consumer satisfaction fairness.
    ConsumerSatisfactionFairness,
    /// (g) query load (utilization) mean.
    UtilizationMean,
    /// (h) query load (utilization) fairness.
    UtilizationFairness,
}

impl Fig4Panel {
    /// All panels, in the paper's order.
    pub const ALL: [Fig4Panel; 8] = [
        Fig4Panel::ProviderSatisfactionIntention,
        Fig4Panel::ProviderSatisfactionPreference,
        Fig4Panel::ProviderAllocationSatisfactionPreference,
        Fig4Panel::ProviderSatisfactionFairness,
        Fig4Panel::ConsumerAllocationSatisfaction,
        Fig4Panel::ConsumerSatisfactionFairness,
        Fig4Panel::UtilizationMean,
        Fig4Panel::UtilizationFairness,
    ];

    /// Panel letter in the paper's Figure 4.
    pub fn letter(self) -> char {
        match self {
            Fig4Panel::ProviderSatisfactionIntention => 'a',
            Fig4Panel::ProviderSatisfactionPreference => 'b',
            Fig4Panel::ProviderAllocationSatisfactionPreference => 'c',
            Fig4Panel::ProviderSatisfactionFairness => 'd',
            Fig4Panel::ConsumerAllocationSatisfaction => 'e',
            Fig4Panel::ConsumerSatisfactionFairness => 'f',
            Fig4Panel::UtilizationMean => 'g',
            Fig4Panel::UtilizationFairness => 'h',
        }
    }

    /// Human-readable description (the paper's sub-caption).
    pub fn description(self) -> &'static str {
        match self {
            Fig4Panel::ProviderSatisfactionIntention => {
                "Providers' satisfaction mean based on intentions"
            }
            Fig4Panel::ProviderSatisfactionPreference => {
                "Providers' satisfaction mean based on preferences"
            }
            Fig4Panel::ProviderAllocationSatisfactionPreference => {
                "Providers' allocation satisfaction mean based on preferences"
            }
            Fig4Panel::ProviderSatisfactionFairness => "Provider satisfaction fairness",
            Fig4Panel::ConsumerAllocationSatisfaction => "Consumers' allocation satisfaction",
            Fig4Panel::ConsumerSatisfactionFairness => "Consumer satisfaction fairness",
            Fig4Panel::UtilizationMean => "Query load mean",
            Fig4Panel::UtilizationFairness => "Query load fairness",
        }
    }

    /// Parses a panel letter (`a`–`h`).
    pub fn from_letter(letter: char) -> Option<Fig4Panel> {
        Fig4Panel::ALL
            .into_iter()
            .find(|p| p.letter() == letter.to_ascii_lowercase())
    }

    fn extract(self, report: &SimulationReport) -> &TimeSeries {
        let s = &report.series;
        match self {
            Fig4Panel::ProviderSatisfactionIntention => &s.provider_satisfaction_intention_mean,
            Fig4Panel::ProviderSatisfactionPreference => &s.provider_satisfaction_preference_mean,
            Fig4Panel::ProviderAllocationSatisfactionPreference => {
                &s.provider_allocation_satisfaction_preference_mean
            }
            Fig4Panel::ProviderSatisfactionFairness => &s.provider_satisfaction_fairness,
            Fig4Panel::ConsumerAllocationSatisfaction => &s.consumer_allocation_satisfaction_mean,
            Fig4Panel::ConsumerSatisfactionFairness => &s.consumer_satisfaction_fairness,
            Fig4Panel::UtilizationMean => &s.utilization_mean,
            Fig4Panel::UtilizationFairness => &s.utilization_fairness,
        }
    }
}

/// Result of the Figure 4(a)–(h) experiment: per panel, one time series per
/// method (averaged over repetitions).
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The panels, each as a set of per-method series.
    pub panels: BTreeMap<Fig4Panel, SeriesSet>,
    /// The scale the experiment ran at.
    pub scale: ExperimentScale,
}

impl Fig4Result {
    /// Renders one panel as a text table.
    pub fn panel_to_text(&self, panel: Fig4Panel) -> String {
        let mut out = format!(
            "# Figure 4({}): {} — workload ramp 30%..100%, captive participants\n",
            panel.letter(),
            panel.description()
        );
        if let Some(set) = self.panels.get(&panel) {
            out.push_str(&set.to_table("time_s"));
        }
        out
    }
}

/// Averages several time series sampled at identical instants.
fn average_series(series: &[&TimeSeries]) -> TimeSeries {
    let mut out = TimeSeries::new();
    if series.is_empty() {
        return out;
    }
    let len = series.iter().map(|s| s.len()).min().unwrap_or(0);
    for i in 0..len {
        let time = series[0].points()[i].time;
        let value = series.iter().map(|s| s.points()[i].value).sum::<f64>() / series.len() as f64;
        out.push_raw(time, value);
    }
    out
}

/// Runs the captive Figure 4(a)–(h) experiment: the three paper methods
/// under the 30 % → 100 % workload ramp, captive participants.
pub fn fig4_captive_ramp(scale: ExperimentScale) -> Result<Fig4Result, SqlbError> {
    let mut per_method_reports: Vec<(Method, Vec<SimulationReport>)> = Vec::new();
    for method in Method::PAPER_METHODS {
        let mut reports = Vec::new();
        for rep in 0..scale.repetitions.max(1) {
            let config = scale
                .config(rep)
                .with_workload(WorkloadPattern::paper_ramp());
            reports.push(run_simulation(config, method)?);
        }
        per_method_reports.push((method, reports));
    }

    let mut panels = BTreeMap::new();
    for panel in Fig4Panel::ALL {
        let mut set = SeriesSet::new();
        for (method, reports) in &per_method_reports {
            let series: Vec<&TimeSeries> = reports.iter().map(|r| panel.extract(r)).collect();
            let averaged = average_series(&series);
            let target = set.series_mut(method.name());
            for point in averaged.points() {
                target.push_raw(point.time, point.value);
            }
        }
        panels.insert(panel, set);
    }
    Ok(Fig4Result { panels, scale })
}

// ---------------------------------------------------------------------------
// Figure 4(i), Figure 5, Figure 6: response times and departures versus
// workload.
// ---------------------------------------------------------------------------

/// Per-method measurements at one workload level.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRow {
    /// Workload as a fraction of the total system capacity.
    pub workload: f64,
    /// `(method name, mean response time in seconds)`.
    pub response_times: Vec<(String, f64)>,
    /// `(method name, % of providers that departed)`.
    pub provider_departures_pct: Vec<(String, f64)>,
    /// `(method name, % of consumers that departed)`.
    pub consumer_departures_pct: Vec<(String, f64)>,
}

/// Result of a workload sweep (captive or autonomous).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSweepResult {
    /// Human-readable description of the sweep.
    pub title: String,
    /// One row per workload level.
    pub rows: Vec<WorkloadRow>,
}

impl WorkloadSweepResult {
    /// Renders the response-time columns (Figures 4(i), 5(a), 5(b)).
    pub fn response_times_to_text(&self) -> String {
        self.render(|row| &row.response_times, "mean_response_time_s")
    }

    /// Renders the provider-departure columns (Figure 5(c)).
    pub fn provider_departures_to_text(&self) -> String {
        self.render(|row| &row.provider_departures_pct, "provider_departures_%")
    }

    /// Renders the consumer-departure columns (Figure 6).
    pub fn consumer_departures_to_text(&self) -> String {
        self.render(|row| &row.consumer_departures_pct, "consumer_departures_%")
    }

    fn render<'a>(
        &'a self,
        field: impl Fn(&'a WorkloadRow) -> &'a Vec<(String, f64)>,
        what: &str,
    ) -> String {
        let mut out = format!("# {} — {}\n", self.title, what);
        if let Some(first) = self.rows.first() {
            let _ = write!(out, "{:>12}", "workload_%");
            for (name, _) in field(first) {
                let _ = write!(out, " {:>18}", name);
            }
            out.push('\n');
        }
        for row in &self.rows {
            let _ = write!(out, "{:>12.0}", row.workload * 100.0);
            for (_, value) in field(row) {
                let _ = write!(out, " {:>18.3}", value);
            }
            out.push('\n');
        }
        out
    }
}

/// Which autonomy setting a workload sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutonomySetting {
    /// Captive participants (Figure 4(i)).
    Captive,
    /// Providers may leave by dissatisfaction or starvation
    /// (Figure 5(a)).
    DissatisfactionAndStarvation,
    /// Providers may leave by dissatisfaction, starvation or
    /// overutilization; consumers may leave by dissatisfaction
    /// (Figures 5(b), 5(c), 6 and Table 3).
    AllReasons,
}

impl AutonomySetting {
    fn title(self) -> &'static str {
        match self {
            AutonomySetting::Captive => "Captive participants",
            AutonomySetting::DissatisfactionAndStarvation => {
                "Providers may leave by dissatisfaction or starvation"
            }
            AutonomySetting::AllReasons => {
                "Providers may leave by dissatisfaction, starvation, or overutilization"
            }
        }
    }

    fn apply(self, config: SimulationConfig) -> SimulationConfig {
        match self {
            AutonomySetting::Captive => config,
            AutonomySetting::DissatisfactionAndStarvation => config.with_provider_departures(
                ProviderDepartureRule::with_enabled(EnabledReasons::DISSATISFACTION_AND_STARVATION),
            ),
            AutonomySetting::AllReasons => config
                .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL))
                .with_consumer_departures(Default::default()),
        }
    }
}

/// The workload levels the paper sweeps (Figures 4(i), 5 and 6 plot 10 % to
/// 100 % of the total system capacity).
pub const PAPER_WORKLOADS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Runs a workload sweep for the three paper methods under the given
/// autonomy setting, and returns mean response times and departure
/// percentages per workload level.
pub fn workload_sweep(
    scale: ExperimentScale,
    workloads: &[f64],
    setting: AutonomySetting,
) -> Result<WorkloadSweepResult, SqlbError> {
    let mut rows = Vec::with_capacity(workloads.len());
    for &workload in workloads {
        let mut response_times = Vec::new();
        let mut provider_departures = Vec::new();
        let mut consumer_departures = Vec::new();
        for method in Method::PAPER_METHODS {
            let mut rt_sum = 0.0;
            let mut pd_sum = 0.0;
            let mut cd_sum = 0.0;
            let reps = scale.repetitions.max(1);
            for rep in 0..reps {
                let config = setting.apply(
                    scale
                        .config(rep)
                        .with_workload(WorkloadPattern::Fixed(workload)),
                );
                let report = run_simulation(config, method)?;
                rt_sum += report.mean_response_time();
                pd_sum += report.provider_departure_fraction() * 100.0;
                cd_sum += report.consumer_departure_fraction() * 100.0;
            }
            response_times.push((method.name().to_string(), rt_sum / reps as f64));
            provider_departures.push((method.name().to_string(), pd_sum / reps as f64));
            consumer_departures.push((method.name().to_string(), cd_sum / reps as f64));
        }
        rows.push(WorkloadRow {
            workload,
            response_times,
            provider_departures_pct: provider_departures,
            consumer_departures_pct: consumer_departures,
        });
    }
    Ok(WorkloadSweepResult {
        title: setting.title().to_string(),
        rows,
    })
}

// ---------------------------------------------------------------------------
// Table 3: departure-reason breakdown at 80 % workload.
// ---------------------------------------------------------------------------

/// One cell group of Table 3: for a method, a departure reason and a class
/// dimension, the percentage of the initial provider population that left,
/// split by low/medium/high class value.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Allocation method.
    pub method: String,
    /// Departure reason.
    pub reason: DepartureReason,
    /// Class dimension ("consumer interest", "adaptation", "capacity").
    pub dimension: &'static str,
    /// Percentage of providers with the low class value that left for this
    /// reason.
    pub low: f64,
    /// Percentage with the medium class value.
    pub medium: f64,
    /// Percentage with the high class value.
    pub high: f64,
}

impl Table3Row {
    /// Total percentage across the three class values.
    pub fn total(&self) -> f64 {
        self.low + self.medium + self.high
    }
}

/// Result of the Table 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// The workload fraction the analysis ran at (paper: 0.8).
    pub workload: f64,
    /// All rows (method × reason × dimension).
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// Renders the table in a layout close to the paper's Table 3.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# Table 3: provider departure reasons at {:.0}% of the total system capacity\n",
            self.workload * 100.0
        );
        let _ = writeln!(
            out,
            "{:<16} {:<18} {:<18} {:>7} {:>7} {:>7} {:>7}",
            "method", "reason", "dimension", "low%", "med%", "high%", "total%"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<18} {:<18} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
                row.method,
                row.reason.to_string(),
                row.dimension,
                row.low,
                row.medium,
                row.high,
                row.total()
            );
        }
        out
    }
}

/// Runs the Table 3 analysis: the three paper methods at the given workload
/// with all departure reasons enabled, and a breakdown of provider
/// departures per reason and class dimension.
pub fn table3_departure_breakdown(
    scale: ExperimentScale,
    workload: f64,
) -> Result<Table3Result, SqlbError> {
    let mut rows = Vec::new();
    for method in Method::PAPER_METHODS {
        // Use the first repetition only: Table 3 is a per-run breakdown.
        let config = AutonomySetting::AllReasons.apply(
            scale
                .config(0)
                .with_workload(WorkloadPattern::Fixed(workload)),
        );
        let report = run_simulation(config, method)?;
        let total = report.initial_providers.max(1) as f64;
        for reason in [
            DepartureReason::Dissatisfaction,
            DepartureReason::Starvation,
            DepartureReason::Overutilization,
        ] {
            let departures: Vec<_> = report
                .provider_departures
                .iter()
                .filter(|d| d.reason == reason)
                .collect();
            let pct = |count: usize| count as f64 / total * 100.0;

            let by_interest = |class: InterestClass| {
                pct(departures
                    .iter()
                    .filter(|d| d.profile.interest == class)
                    .count())
            };
            rows.push(Table3Row {
                method: method.name().to_string(),
                reason,
                dimension: "consumer interest",
                low: by_interest(InterestClass::Low),
                medium: by_interest(InterestClass::Medium),
                high: by_interest(InterestClass::High),
            });

            let by_adaptation = |class: AdaptationClass| {
                pct(departures
                    .iter()
                    .filter(|d| d.profile.adaptation == class)
                    .count())
            };
            rows.push(Table3Row {
                method: method.name().to_string(),
                reason,
                dimension: "adaptation",
                low: by_adaptation(AdaptationClass::Low),
                medium: by_adaptation(AdaptationClass::Medium),
                high: by_adaptation(AdaptationClass::High),
            });

            let by_capacity = |class: CapacityClass| {
                pct(departures
                    .iter()
                    .filter(|d| d.profile.capacity == class)
                    .count())
            };
            rows.push(Table3Row {
                method: method.name().to_string(),
                reason,
                dimension: "capacity",
                low: by_capacity(CapacityClass::Low),
                medium: by_capacity(CapacityClass::Medium),
                high: by_capacity(CapacityClass::High),
            });
        }
    }
    Ok(Table3Result { workload, rows })
}

// ---------------------------------------------------------------------------
// Cross-shard load migration: skewed-workload rebalancing comparison.
// ---------------------------------------------------------------------------

/// Shard-balance measurements of one run of the migration experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBalanceSummary {
    /// Routing policy of the run.
    pub routing: String,
    /// Whether cross-shard provider migration ran.
    pub migration_enabled: bool,
    /// Allocations mediated per shard.
    pub shard_allocations: Vec<u64>,
    /// `max / min` of the per-shard allocation counts.
    pub allocation_imbalance: f64,
    /// Mean per-shard utilization spread over the steady-state tail
    /// (samples after one third of the run).
    pub utilization_spread: f64,
    /// Provider migrations performed.
    pub migrations: usize,
}

/// Result of [`migration_skew`]: the same skewed workload mediated four
/// ways, showing what routing and migration each contribute.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationSkewResult {
    /// Mediator shard count of every run.
    pub shards: usize,
    /// Consumers in the population (deliberately not a multiple of the
    /// shard count, so static routing is skewed).
    pub consumers: u32,
    /// Static routing, no migration: the skew left alone.
    pub baseline: ShardBalanceSummary,
    /// Static routing with migration: capacity follows demand (shrinks
    /// the utilization spread), mediation stays skewed.
    pub migrated: ShardBalanceSummary,
    /// Least-loaded routing, no migration: arrivals follow backlog, but
    /// allocation counts track each shard's fixed drain rate.
    pub routed: ShardBalanceSummary,
    /// Least-loaded routing with migration: provider throughput migrates
    /// until mediation load balances.
    pub adaptive: ShardBalanceSummary,
}

impl MigrationSkewResult {
    /// Renders the comparison as a text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# Cross-shard load migration under a skewed workload ({} consumers over {} shards)\n",
            self.consumers, self.shards
        );
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>26} {:>16} {:>12} {:>11}",
            "routing",
            "migration",
            "allocations/shard",
            "alloc_imbalance",
            "util_spread",
            "migrations"
        );
        for s in [&self.baseline, &self.migrated, &self.routed, &self.adaptive] {
            let allocations = s
                .shard_allocations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join("/");
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>26} {:>16.3} {:>12.4} {:>11}",
                s.routing,
                if s.migration_enabled { "on" } else { "off" },
                allocations,
                s.allocation_imbalance,
                s.utilization_spread,
                s.migrations
            );
        }
        out
    }
}

fn shard_balance_summary(
    report: &SimulationReport,
    migration_enabled: bool,
    tail_from_secs: f64,
) -> ShardBalanceSummary {
    ShardBalanceSummary {
        routing: report.routing_policy.clone(),
        migration_enabled,
        shard_allocations: report.shard_allocations.clone(),
        allocation_imbalance: report.shard_allocation_imbalance(),
        utilization_spread: report.mean_shard_utilization_spread_after(tail_from_secs),
        migrations: report.migrations.len(),
    }
}

/// Runs the skewed-workload migration experiment: a deliberately small
/// consumer population that does not divide evenly across `shards`
/// mediator shards (static routing therefore overloads the low-index
/// shards by a ~1.5× demand ratio), mediated by SQLB under a fixed
/// `workload`, in four configurations — every combination of
/// static/least-loaded routing and migration off/on.
///
/// The skew needs few consumers: with many consumers, `consumer % K`
/// spreads demand almost evenly and there is nothing to rebalance. The
/// scale therefore only contributes providers, duration and seed.
pub fn migration_skew(
    scale: ExperimentScale,
    shards: usize,
    workload: f64,
) -> Result<MigrationSkewResult, SqlbError> {
    // `3K + K/2` consumers: the low `K/2` shard indices serve four
    // consumers each, the rest three.
    let consumers = 3 * shards as u32 + shards as u32 / 2;
    let base_config = SimulationConfig::scaled(
        consumers,
        scale.providers.max(shards as u32 * 2),
        scale.duration_secs,
        scale.seed,
    )
    .with_workload(WorkloadPattern::Fixed(workload))
    .with_mediator_shards(shards);
    let tail = scale.duration_secs / 3.0;

    let run = |routing: RoutingPolicyKind, migration: bool| -> Result<_, SqlbError> {
        let report = run_simulation(
            base_config.with_routing(routing).with_migration(migration),
            Method::Sqlb,
        )?;
        Ok(shard_balance_summary(&report, migration, tail))
    };
    Ok(MigrationSkewResult {
        shards,
        consumers,
        baseline: run(RoutingPolicyKind::Static, false)?,
        migrated: run(RoutingPolicyKind::Static, true)?,
        routed: run(RoutingPolicyKind::LeastLoaded, false)?,
        adaptive: run(RoutingPolicyKind::LeastLoaded, true)?,
    })
}

// ---------------------------------------------------------------------------
// Table 2: the simulation parameters.
// ---------------------------------------------------------------------------

/// Renders the Table 2 parameter listing for a configuration.
pub fn table2_parameters(config: &SimulationConfig) -> String {
    let mut out = String::from("# Table 2: simulation parameters\n");
    let rows: Vec<(&str, &str, String)> = vec![
        (
            "nbConsumers",
            "Number of consumers",
            config.population.consumers.to_string(),
        ),
        (
            "nbProviders",
            "Number of providers",
            config.population.providers.to_string(),
        ),
        ("nbMediators", "Number of mediators", "1".to_string()),
        (
            "qDistribution",
            "Query arrival distribution",
            "Poisson".to_string(),
        ),
        (
            "iniSatisfaction",
            "Initial satisfaction",
            format!("{}", config.population.provider_config.initial_satisfaction),
        ),
        (
            "conSatSize",
            "k last issued queries",
            config.population.consumer_config.memory.to_string(),
        ),
        (
            "proSatSize",
            "k last treated queries",
            config
                .population
                .provider_config
                .performed_memory
                .to_string(),
        ),
        ("nbRepeat", "Repetition of simulations", "10".to_string()),
    ];
    let _ = writeln!(
        out,
        "{:<18} {:<34} {:>10}",
        "Parameter", "Definition", "Value"
    );
    for (name, definition, value) in rows {
        let _ = writeln!(out, "{:<18} {:<34} {:>10}", name, definition, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_surface_covers_the_grid_and_matches_definition_8() {
        let points = fig2_provider_intention_surface(0.5, 5);
        assert_eq!(points.len(), 25);
        // Corner checks: fully preferred and idle → intention 1; fully
        // preferred but at Ut = 2 → the negative branch.
        let best = points
            .iter()
            .find(|p| (p.preference - 1.0).abs() < 1e-9 && p.utilization.abs() < 1e-9)
            .unwrap();
        assert!((best.intention - 1.0).abs() < 1e-9);
        let overloaded = points
            .iter()
            .find(|p| (p.preference - 1.0).abs() < 1e-9 && (p.utilization - 2.0).abs() < 1e-9)
            .unwrap();
        assert!(overloaded.intention < 0.0);
        let text = fig2_to_text(&points);
        assert!(text.contains("# preference"));
        assert!(text.lines().count() > 25);
    }

    #[test]
    fn fig3_surface_matches_equation_6() {
        let points = fig3_omega_surface(3);
        assert_eq!(points.len(), 9);
        for p in &points {
            assert!(
                (p.omega - ((p.consumer_satisfaction - p.provider_satisfaction) + 1.0) / 2.0).abs()
                    < 1e-12
            );
        }
        assert!(fig3_to_text(&points).contains("omega"));
    }

    #[test]
    fn fig4_panels_round_trip_letters() {
        for panel in Fig4Panel::ALL {
            assert_eq!(Fig4Panel::from_letter(panel.letter()), Some(panel));
        }
        assert_eq!(Fig4Panel::from_letter('z'), None);
        assert_eq!(
            Fig4Panel::from_letter('A'),
            Some(Fig4Panel::ProviderSatisfactionIntention)
        );
    }

    #[test]
    fn fig4_experiment_produces_all_panels_and_methods() {
        let result = fig4_captive_ramp(ExperimentScale::quick()).unwrap();
        assert_eq!(result.panels.len(), 8);
        for panel in Fig4Panel::ALL {
            let set = &result.panels[&panel];
            assert_eq!(set.len(), 3, "one series per paper method");
            for name in ["SQLB", "Capacity based", "Mariposa-like"] {
                assert!(!set.series(name).unwrap().is_empty());
            }
            let text = result.panel_to_text(panel);
            assert!(text.contains("Figure 4"));
            assert!(text.contains("SQLB"));
        }
    }

    #[test]
    fn workload_sweep_captive_produces_rows() {
        let result = workload_sweep(
            ExperimentScale::quick(),
            &[0.4, 0.8],
            AutonomySetting::Captive,
        )
        .unwrap();
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert_eq!(row.response_times.len(), 3);
            // Captive runs never record departures.
            assert!(row.provider_departures_pct.iter().all(|(_, v)| *v == 0.0));
            assert!(row.consumer_departures_pct.iter().all(|(_, v)| *v == 0.0));
        }
        let text = result.response_times_to_text();
        assert!(text.contains("workload_%"));
        assert!(text.contains("SQLB"));
    }

    #[test]
    fn autonomous_sweep_records_departures() {
        let result = workload_sweep(
            ExperimentScale::quick(),
            &[0.8],
            AutonomySetting::AllReasons,
        )
        .unwrap();
        let row = &result.rows[0];
        // At least one of the baselines should lose providers at 80 %.
        let max_departure = row
            .provider_departures_pct
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        assert!(max_departure > 0.0, "expected provider departures at 80%");
        assert!(result.provider_departures_to_text().contains("departures"));
        assert!(result.consumer_departures_to_text().contains("departures"));
    }

    #[test]
    fn table3_breakdown_has_all_cells() {
        let result = table3_departure_breakdown(ExperimentScale::quick(), 0.8).unwrap();
        // 3 methods × 3 reasons × 3 dimensions.
        assert_eq!(result.rows.len(), 27);
        let text = result.to_text();
        assert!(text.contains("Table 3"));
        assert!(text.contains("dissatisfaction"));
        assert!(text.contains("capacity"));
        for row in &result.rows {
            assert!(row.total() >= 0.0 && row.total() <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn migration_skew_produces_all_four_runs() {
        let result = migration_skew(ExperimentScale::quick(), 4, 0.7).unwrap();
        assert_eq!(result.shards, 4);
        assert_ne!(
            result.consumers % 4,
            0,
            "the experiment must actually skew static routing"
        );
        assert_eq!(result.baseline.routing, "static");
        assert!(!result.baseline.migration_enabled);
        assert_eq!(result.baseline.migrations, 0);
        assert_eq!(result.migrated.routing, "static");
        assert!(result.migrated.migration_enabled);
        assert_eq!(result.routed.routing, "least-loaded");
        assert_eq!(result.routed.migrations, 0);
        assert_eq!(result.adaptive.routing, "least-loaded");
        for s in [
            &result.baseline,
            &result.migrated,
            &result.routed,
            &result.adaptive,
        ] {
            assert_eq!(s.shard_allocations.len(), 4);
            assert!(s.allocation_imbalance >= 1.0);
        }
        let text = result.to_text();
        assert!(text.contains("least-loaded"));
        assert!(text.contains("alloc_imbalance"));
    }

    #[test]
    fn table2_lists_paper_parameters() {
        let text = table2_parameters(&SimulationConfig::paper(0));
        assert!(text.contains("nbConsumers"));
        assert!(text.contains("200"));
        assert!(text.contains("400"));
        assert!(text.contains("Poisson"));
        assert!(text.contains("proSatSize"));
    }

    #[test]
    fn average_series_is_pointwise_mean() {
        let mut a = TimeSeries::new();
        let mut b = TimeSeries::new();
        for i in 0..5 {
            a.push_raw(i as f64, 1.0);
            b.push_raw(i as f64, 3.0);
        }
        let avg = average_series(&[&a, &b]);
        assert_eq!(avg.len(), 5);
        assert!(avg.values().iter().all(|v| (*v - 2.0).abs() < 1e-12));
        assert!(average_series(&[]).is_empty());
    }

    #[test]
    fn scales_produce_valid_configs() {
        for scale in [
            ExperimentScale::quick(),
            ExperimentScale::default_scaled(),
            ExperimentScale::paper(),
        ] {
            assert!(scale.config(0).validate().is_ok());
            assert!(scale.config(3).validate().is_ok());
        }
        assert_eq!(
            ExperimentScale::default(),
            ExperimentScale::default_scaled()
        );
    }
}
