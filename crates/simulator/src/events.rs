//! The event queue of the discrete-event engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sqlb_types::{ProviderId, QueryId, SimTime, WorkUnits};

/// An event scheduled in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The next query arrives at the mediator.
    QueryArrival,
    /// A provider finishes treating a query.
    QueryCompletion {
        /// The provider that performed the query.
        provider: ProviderId,
        /// The completed query.
        query: QueryId,
        /// When the query entered the system (to compute the response
        /// time).
        issued_at: SimTime,
        /// The work the query consumed on that provider.
        work: WorkUnits,
    },
    /// Periodic metrics snapshot.
    Sample,
    /// Periodic departure assessment.
    Assessment,
    /// Periodic satisfaction-view synchronization between mediator shards
    /// (only scheduled when the engine runs more than one shard).
    SyncViews,
    /// Periodic cross-shard load rebalancing: per-shard load and
    /// satisfaction imbalance is measured and providers migrate between
    /// shards to shrink it (only scheduled when the engine runs more than
    /// one shard *and* migration is enabled in the configuration).
    Rebalance,
    /// A scenario churn group leaves the system (correlated provider
    /// churn, compiled from [`crate::scenario::Scenario`] at start-up).
    ChurnDepart {
        /// Index of the churn group in the scenario description.
        group: usize,
    },
    /// A scenario churn group re-joins the system; the re-join semantics
    /// (satisfaction history resumes or resets) are the group's
    /// [`crate::scenario::RejoinPolicy`].
    ChurnRejoin {
        /// Index of the churn group in the scenario description.
        group: usize,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest (time, seq)
        // comes out first. The sequence number makes ordering total and
        // deterministic for simultaneous events.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue ordered by `(time, insertion sequence)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event at the given time.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The earliest scheduled event and its time, without removing it —
    /// exactly what [`EventQueue::pop`] would return next. Lets the
    /// engine coalesce same-instant arrivals into one mediation wave
    /// without disturbing the (time, insertion-sequence) pop order.
    pub fn peek(&self) -> Option<(SimTime, &Event)> {
        self.heap.peek().map(|s| (s.time, &s.event))
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), Event::Sample);
        q.schedule(t(1.0), Event::QueryArrival);
        q.schedule(t(3.0), Event::Assessment);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), Event::Sample);
        q.schedule(t(2.0), Event::QueryArrival);
        q.schedule(t(2.0), Event::Assessment);
        assert_eq!(q.pop().unwrap().1, Event::Sample);
        assert_eq!(q.pop().unwrap().1, Event::QueryArrival);
        assert_eq!(q.pop().unwrap().1, Event::Assessment);
    }

    #[test]
    fn peek_reports_earliest_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9.0), Event::Sample);
        q.schedule(t(4.0), Event::Sample);
        assert_eq!(q.peek_time().unwrap().as_secs(), 4.0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn completion_events_carry_their_payload() {
        let mut q = EventQueue::new();
        q.schedule(
            t(1.5),
            Event::QueryCompletion {
                provider: ProviderId::new(3),
                query: QueryId::new(7),
                issued_at: t(1.0),
                work: WorkUnits::new(130.0),
            },
        );
        match q.pop().unwrap().1 {
            Event::QueryCompletion {
                provider,
                query,
                issued_at,
                work,
            } => {
                assert_eq!(provider, ProviderId::new(3));
                assert_eq!(query, QueryId::new(7));
                assert_eq!(issued_at.as_secs(), 1.0);
                assert_eq!(work.value(), 130.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_non_decreasing(times in proptest::collection::vec(0.0f64..1000.0, 0..200)) {
            let mut q = EventQueue::new();
            for &time in &times {
                q.schedule(t(time), Event::QueryArrival);
            }
            let mut last = -1.0;
            while let Some((time, _)) = q.pop() {
                prop_assert!(time.as_secs() >= last);
                last = time.as_secs();
            }
        }
    }
}
