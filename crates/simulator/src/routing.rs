//! Consumer-routing policies: which mediator shard mediates a query.
//!
//! The paper's mono-mediator system has no routing decision at all; with
//! `K > 1` shards the engine must pick the shard that mediates each
//! arriving query. [`RoutingPolicy`] abstracts that choice:
//!
//! * [`StaticRouting`] — `consumer % K`, the original policy. A pure
//!   function of the consumer id: never consumes randomness, never reacts
//!   to load, and pins every consumer's history to one shard (good for
//!   satisfaction-view locality, blind to skew).
//! * [`LeastLoadedRouting`] — routes to the shard with the lowest recent
//!   utilization, measured as outstanding work per unit of shard
//!   capacity. This reacts to skewed workloads (e.g. a consumer
//!   population that does not divide evenly across shards) at the cost of
//!   spreading a consumer's allocations over several shards, which the
//!   periodic digest synchronization then re-aggregates.
//!
//! Both policies are deterministic: ties break toward the lowest shard
//! index, so a run's routing sequence is a pure function of observed state
//! and the seed, never of map iteration order.

use serde::{Deserialize, Serialize};
use sqlb_types::{ConsumerId, StableId};

use crate::shard::ShardRouter;

/// Per-shard load observations the engine maintains for routing: both
/// slices are indexed by shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardLoadView<'a> {
    /// Outstanding work (in work units) currently enqueued at providers of
    /// each shard. Floating-point residue can leave a value fractionally
    /// negative, which is harmless for an ordering signal; readers clamp
    /// at zero.
    pub backlog: &'a [f64],
    /// Total provider capacity of each shard, in work units per second.
    /// `backlog / capacity` is therefore the shard's backlog in seconds —
    /// its recent utilization.
    pub capacity: &'a [f64],
}

/// A consumer-routing decision procedure.
///
/// `route` picks the *preferred* shard for a query of `consumer` given the
/// current shard topology and the engine's per-shard load observations.
/// The engine still falls over to the next non-empty shard when the
/// preferred one has no providers left.
pub trait RoutingPolicy: std::fmt::Debug + Send {
    /// Preferred shard for the given consumer. Must be deterministic in
    /// `(consumer, router, loads)` and must return a value below
    /// `router.shard_count()`.
    fn route(&self, consumer: ConsumerId, router: &ShardRouter, loads: ShardLoadView<'_>) -> usize;

    /// Whether routed demand follows shard capacity. When true, moving a
    /// provider between shards also moves future mediation load, so the
    /// rebalancer may migrate providers to equalize per-shard *allocation*
    /// counts; under a load-blind policy such moves would change nothing
    /// (and the rebalancer skips them).
    fn reacts_to_load(&self) -> bool {
        false
    }

    /// Display name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// `consumer % K`: the original, load-blind policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticRouting;

impl RoutingPolicy for StaticRouting {
    fn route(
        &self,
        consumer: ConsumerId,
        router: &ShardRouter,
        _loads: ShardLoadView<'_>,
    ) -> usize {
        consumer.slot() % router.shard_count()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Routes to the shard with the lowest outstanding work per unit of
/// capacity — the shard whose backlog would drain soonest, i.e. the one
/// with the lowest recent utilization. Normalizing by capacity rather
/// than provider count matters because provider capacities span 7×
/// (Table 2's class mix): a shard of few large providers drains far more
/// load than a shard of many small ones.
///
/// Ties break toward the consumer's static home shard (`consumer % K`),
/// continuing in wrap-around order: when the system is idle — backlogs
/// are frequently all zero at moderate workloads — the policy therefore
/// degrades to [`StaticRouting`]'s uniform spread instead of dog-piling
/// every tied arrival onto shard 0.
///
/// Shards that currently own no providers (or no capacity) are skipped (a
/// query routed there could not be mediated anyway); if every shard is
/// empty the policy falls back to the static shard and the engine's
/// fall-over logic reports the query unallocated.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedRouting;

impl RoutingPolicy for LeastLoadedRouting {
    fn route(&self, consumer: ConsumerId, router: &ShardRouter, loads: ShardLoadView<'_>) -> usize {
        let shard_count = router.shard_count();
        let home = consumer.slot() % shard_count;
        let mut best = home;
        let mut best_load = f64::INFINITY;
        for offset in 0..shard_count {
            let shard = (home + offset) % shard_count;
            if router.providers_of_shard(shard).is_empty() {
                continue;
            }
            let capacity = loads.capacity.get(shard).copied().unwrap_or(0.0);
            if capacity <= 0.0 {
                continue;
            }
            // Clamp at zero: incremental add/subtract bookkeeping can
            // leave floating-point residue fractionally below it.
            let backlog = loads.backlog.get(shard).copied().unwrap_or(0.0).max(0.0);
            let load = backlog / capacity;
            if load < best_load {
                best_load = load;
                best = shard;
            }
        }
        best
    }

    fn reacts_to_load(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Configuration-level selector for the routing policy (the trait objects
/// themselves are not serializable).
///
/// Select a policy on the simulation configuration and the engine builds
/// it for the run:
///
/// ```
/// use sqlb_sim::engine::run_simulation;
/// use sqlb_sim::{Method, RoutingPolicyKind, SimulationConfig};
///
/// let config = SimulationConfig::scaled(8, 16, 60.0, 7)
///     .with_mediator_shards(2)
///     .with_routing(RoutingPolicyKind::LeastLoaded);
/// let report = run_simulation(config, Method::Sqlb).unwrap();
/// assert_eq!(report.routing_policy, "least-loaded");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicyKind {
    /// [`StaticRouting`]: `consumer % K`.
    #[default]
    Static,
    /// [`LeastLoadedRouting`]: lowest outstanding work per unit of
    /// capacity.
    LeastLoaded,
}

impl RoutingPolicyKind {
    /// Builds the policy instance.
    pub fn build(self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingPolicyKind::Static => Box::new(StaticRouting),
            RoutingPolicyKind::LeastLoaded => Box::new(LeastLoadedRouting),
        }
    }

    /// Display name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicyKind::Static => "static",
            RoutingPolicyKind::LeastLoaded => "least-loaded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Method;
    use sqlb_core::mediator_state::MediatorStateConfig;
    use sqlb_types::ProviderId;

    fn router(k: usize, providers: u32) -> ShardRouter {
        ShardRouter::new(
            k,
            Method::Sqlb,
            42,
            MediatorStateConfig::default(),
            (0..providers).map(ProviderId::new),
        )
    }

    fn loads<'a>(backlog: &'a [f64], capacity: &'a [f64]) -> ShardLoadView<'a> {
        ShardLoadView { backlog, capacity }
    }

    #[test]
    fn static_routing_is_consumer_mod_k() {
        let r = router(4, 8);
        let policy = StaticRouting;
        for c in 0..12u32 {
            assert_eq!(
                policy.route(
                    ConsumerId::new(c),
                    &r,
                    loads(&[0.0, 0.0, 0.0, 0.0], &[1.0, 1.0, 1.0, 1.0])
                ),
                c as usize % 4
            );
        }
        assert_eq!(policy.name(), "static");
        assert!(!policy.reacts_to_load());
    }

    #[test]
    fn least_loaded_picks_lowest_backlog_per_capacity() {
        let r = router(4, 8); // 2 providers per shard
        let policy = LeastLoadedRouting;
        let c = ConsumerId::new(0);
        let capacity = [100.0, 100.0, 100.0, 100.0];
        // Shard 2 has the least outstanding work per unit of capacity.
        assert_eq!(
            policy.route(c, &r, loads(&[400.0, 300.0, 100.0, 500.0], &capacity)),
            2
        );
        // Capacity matters: the same backlog on a much larger shard means
        // a lighter relative load.
        assert_eq!(
            policy.route(
                c,
                &r,
                loads(&[400.0, 300.0, 100.0, 500.0], &[800.0, 100.0, 100.0, 100.0])
            ),
            0
        );
        // Negative backlogs (post-migration drift) clamp to zero; among
        // the tied shards 1 and 2, the first in wrap-around order from the
        // consumer's home shard wins.
        assert_eq!(
            policy.route(c, &r, loads(&[100.0, -300.0, 0.0, 100.0], &capacity)),
            1
        );
        assert_eq!(policy.name(), "least-loaded");
        assert!(policy.reacts_to_load());
    }

    #[test]
    fn least_loaded_ties_degrade_to_static_routing() {
        // All shards equally loaded: each consumer keeps its static home
        // shard, so an idle system spreads arrivals uniformly instead of
        // piling them on shard 0.
        let r = router(4, 8);
        let policy = LeastLoadedRouting;
        for c in 0..12u32 {
            assert_eq!(
                policy.route(
                    ConsumerId::new(c),
                    &r,
                    loads(&[200.0, 200.0, 200.0, 200.0], &[50.0, 50.0, 50.0, 50.0])
                ),
                c as usize % 4
            );
        }
    }

    #[test]
    fn least_loaded_skips_empty_shards() {
        let mut r = router(2, 4);
        r.remove_provider(ProviderId::new(0));
        r.remove_provider(ProviderId::new(2));
        // Shard 0 is empty: even with zero load it must not be preferred.
        assert_eq!(
            LeastLoadedRouting.route(ConsumerId::new(0), &r, loads(&[0.0, 1000.0], &[0.0, 100.0])),
            1
        );
    }

    #[test]
    fn kind_builds_matching_policy() {
        assert_eq!(RoutingPolicyKind::Static.build().name(), "static");
        assert_eq!(
            RoutingPolicyKind::LeastLoaded.build().name(),
            "least-loaded"
        );
        assert_eq!(RoutingPolicyKind::default(), RoutingPolicyKind::Static);
        assert_eq!(RoutingPolicyKind::Static.name(), "static");
        assert_eq!(RoutingPolicyKind::LeastLoaded.name(), "least-loaded");
    }
}
