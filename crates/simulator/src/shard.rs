//! The sharding router: mediator-count-agnostic mediation.
//!
//! The paper evaluates a mono-mediator system, but its model allows many
//! mediators (Section 2). [`ShardRouter`] partitions the providers across
//! `K` [`Mediator`] shards (round-robin by provider id, so the partition
//! is stable and seed-independent) and routes each query to the shard
//! responsible for it. With `K = 1` every provider lands in shard 0 and
//! every query routes there, reproducing the mono-mediator pipeline
//! bit-for-bit under the same seed.
//!
//! Each shard only observes the allocations it performs, so consumer
//! satisfaction views drift apart between shards; [`ShardRouter::sync_views`]
//! runs the periodic all-to-all digest exchange
//! ([`Mediator::export_digest`] / [`Mediator::absorb_digests`]) that blends
//! them back together.

use std::collections::BTreeMap;

use sqlb_core::mediator_state::{MediatorStateConfig, ProviderTracker};
use sqlb_core::{Allocation, CandidateInfo, Mediator};
use sqlb_types::ProviderId;
use sqlb_types::{ConsumerId, MediatorId, ParticipantTable, Query, StableId};

use crate::config::Method;

/// Routes queries to mediator shards and owns the shard set.
#[derive(Debug)]
pub struct ShardRouter {
    shards: Vec<Mediator>,
    /// Which shard owns each (still-present) provider.
    assignment: ParticipantTable<ProviderId, usize>,
    /// Per-shard provider lists in ascending id order, maintained on
    /// removal. The arrival hot path borrows these directly — resolving a
    /// shard's candidate set is O(1) instead of a filter over the whole
    /// assignment table (which is O(P) per arrival, not O(P/K)).
    shard_providers: Vec<Vec<ProviderId>>,
    /// Mediator-side satisfaction trackers of providers that churned out
    /// of the system but may re-join ([`ShardRouter::churn_depart`]).
    /// Under the `Resume` re-join policy [`ShardRouter::readmit_provider`]
    /// absorbs the parked tracker back, so the mediator's view of a
    /// re-joining provider continues where it left off.
    parked: BTreeMap<ProviderId, ProviderTracker>,
    /// Completed synchronization rounds.
    sync_rounds: u64,
}

/// Derives the method seed of shard `i` from the run seed.
///
/// Shard 0 keeps the raw seed so a mono-mediator router consumes exactly
/// the random stream of the pre-sharding engine (the bit-identity pin).
/// Higher shards mix the seed through splitmix64's finalizer instead of
/// the old `seed + i`: plain addition collides with every other component
/// seeded at `seed + constant` (the engine's arrival RNG, repetition `i`
/// of an experiment at `seed + i`, ...), correlating streams that must be
/// independent.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        return seed;
    }
    // splitmix64: advance the state by `shard` golden-gamma steps, then
    // apply the output mix.
    let mut z = seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Smallest participant-id space (max raw id) for which per-shard state
/// uses residue-class compaction ([`StridedTable`]-backed, `O(P/K)` per
/// shard). Below this, every shard keeps identity-mapped dense tables:
/// `K` full-width tables over a sub-64Ki id space cost at most a few
/// megabytes, while the compacted mapping costs a subtract, mask, and
/// shift on every access of the allocation hot path (~5% of K=8
/// allocation throughput at bench scale). At or above it — the 10⁵/10⁶
/// scale configurations — the memory blow-up dominates and compaction
/// wins. Allocations are bit-identical under both layouts.
///
/// [`StridedTable`]: sqlb_types::StridedTable
pub const STRIDED_STATE_MIN_IDS: usize = 1 << 16;

/// One provider re-assignment performed by [`ShardRouter::migrate_provider`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The provider that moved.
    pub provider: ProviderId,
    /// The shard that owned it.
    pub from: usize,
    /// The shard that owns it now.
    pub to: usize,
}

impl ShardRouter {
    /// Builds `shard_count` mediators running `method` and partitions the
    /// given providers across them round-robin by id. Each shard's method
    /// instance is seeded via [`shard_seed`], so shard 0 of a
    /// mono-mediator router behaves exactly like the pre-sharding engine.
    pub fn new(
        shard_count: usize,
        method: Method,
        seed: u64,
        state_config: MediatorStateConfig,
        providers: impl IntoIterator<Item = ProviderId>,
    ) -> Self {
        let shard_count = shard_count.max(1);
        let assignment: ParticipantTable<ProviderId, usize> = providers
            .into_iter()
            .map(|p| (p, p.slot() % shard_count))
            .collect();
        // Residue-class compaction trades O(K × P) mostly-empty dense
        // slots for a sub+mask+shift on every table access — a clear win
        // at 10⁵–10⁶ participants, pure per-access overhead when the id
        // space is small enough that even K full-width tables are a few
        // hundred kilobytes. Pick the layout from the id space: the
        // storage is keyed by global id and iterated in ascending global
        // order either way, so allocations are bit-identical under both.
        let max_slot = assignment.keys().map(StableId::slot).max().unwrap_or(0);
        let compact = max_slot >= STRIDED_STATE_MIN_IDS;
        let shards = (0..shard_count)
            .map(|i| {
                // Shard `i` owns providers (and serves consumers) with
                // `id ≡ i (mod K)`, so its satisfaction tables are
                // stride-compacted to that residue class: per-shard state
                // stays O(P/K) no matter how many shards exist.
                let (offset, stride) = if compact { (i, shard_count) } else { (0, 1) };
                let mut mediator = Mediator::with_slot_stride(
                    MediatorId::new(i as u32),
                    method.build(shard_seed(seed, i)),
                    state_config,
                    offset,
                    stride,
                );
                // The engine never reads the per-allocation ranking
                // diagnostic; skipping it keeps the hot path free of the
                // full sort + clone it would cost. The *selected*
                // providers are identical either way.
                mediator.set_record_ranking(false);
                mediator
            })
            .collect();
        let mut shard_providers = vec![Vec::new(); shard_count];
        for (p, &shard) in assignment.iter() {
            // `ParticipantTable::iter` is ascending by id, so each
            // per-shard list starts sorted.
            shard_providers[shard].push(p);
        }
        ShardRouter {
            shards,
            assignment,
            shard_providers,
            parked: BTreeMap::new(),
            sync_rounds: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Propagates the scoring-kernel thread count to every shard's
    /// method. Deterministic at any value, so this is a performance knob,
    /// not a semantics knob.
    pub fn set_scoring_threads(&mut self, threads: usize) {
        for shard in &mut self.shards {
            shard.set_scoring_threads(threads);
        }
    }

    /// The shard that mediates queries of the given consumer. Routing is a
    /// pure function of the consumer id, so it never consumes randomness
    /// and stays stable across departures.
    pub fn shard_for_consumer(&self, consumer: ConsumerId) -> usize {
        consumer.slot() % self.shards.len()
    }

    /// The shard that owns a provider, if the provider is still present.
    pub fn shard_of_provider(&self, provider: ProviderId) -> Option<usize> {
        self.assignment.get(provider).copied()
    }

    /// The providers a shard owns, in ascending id order. Borrows the
    /// incrementally maintained per-shard list — no per-call scan or
    /// allocation.
    pub fn providers_of_shard(&self, shard: usize) -> &[ProviderId] {
        &self.shard_providers[shard]
    }

    /// The mediator of a shard.
    pub fn mediator(&self, shard: usize) -> &Mediator {
        &self.shards[shard]
    }

    /// Mutable access to the mediator of a shard.
    pub fn mediator_mut(&mut self, shard: usize) -> &mut Mediator {
        &mut self.shards[shard]
    }

    /// Runs the allocation decision on the given shard and records it in
    /// that shard's satisfaction state.
    pub fn allocate(
        &mut self,
        shard: usize,
        query: &Query,
        candidates: &[CandidateInfo],
    ) -> Allocation {
        self.shards[shard].allocate(query, candidates)
    }

    /// Removes a departed provider from its shard's assignment, provider
    /// list and satisfaction state.
    pub fn remove_provider(&mut self, provider: ProviderId) {
        if let Some(shard) = self.assignment.remove(provider) {
            let list = &mut self.shard_providers[shard];
            if let Ok(pos) = list.binary_search(&provider) {
                list.remove(pos);
            }
            self.shards[shard].state_mut().remove_provider(provider);
        }
    }

    /// Removes a churning-out provider like [`ShardRouter::remove_provider`],
    /// but parks its mediator-side satisfaction tracker so a later
    /// [`ShardRouter::readmit_provider`] can resume it. A provider the
    /// shard never observed has no tracker to park; re-admission then
    /// registers it fresh, exactly as a first allocation would.
    pub fn churn_depart(&mut self, provider: ProviderId) {
        if let Some(shard) = self.assignment.remove(provider) {
            let list = &mut self.shard_providers[shard];
            if let Ok(pos) = list.binary_search(&provider) {
                list.remove(pos);
            }
            if let Some(tracker) = self.shards[shard].state_mut().export_provider(provider) {
                self.parked.insert(provider, tracker);
            }
        }
    }

    /// Re-admits a churned-out provider on its home residue shard
    /// (`slot % K` — always compatible with the stride-compacted state
    /// layout, whichever shard it had migrated to before departing).
    /// `resume` absorbs the tracker parked by
    /// [`ShardRouter::churn_depart`] (the `Resume` re-join policy);
    /// otherwise — `Reset`, or nothing was parked — the provider
    /// registers fresh. Returns the shard it now lives on, or `None`
    /// when the provider is already present.
    pub fn readmit_provider(&mut self, provider: ProviderId, resume: bool) -> Option<usize> {
        if self.assignment.get(provider).is_some() {
            return None;
        }
        let shard = provider.slot() % self.shards.len();
        self.assignment.insert(provider, shard);
        let list = &mut self.shard_providers[shard];
        if let Err(pos) = list.binary_search(&provider) {
            list.insert(pos, provider);
        }
        let parked = self.parked.remove(&provider);
        match parked.filter(|_| resume) {
            Some(tracker) => self.shards[shard]
                .state_mut()
                .absorb_provider(provider, tracker),
            None => self.shards[shard].state_mut().register_provider(provider),
        }
        Some(shard)
    }

    /// Removes a departed consumer from every shard's satisfaction state.
    pub fn remove_consumer(&mut self, consumer: ConsumerId) {
        for shard in &mut self.shards {
            shard.state_mut().remove_consumer(consumer);
        }
    }

    /// Re-assigns a provider to the shard `to`, carrying its full
    /// satisfaction history across via
    /// [`sqlb_core::mediator_state::MediatorState::export_provider`] /
    /// [`absorb_provider`](sqlb_core::mediator_state::MediatorState::absorb_provider),
    /// so the move loses no observations. Returns the performed
    /// [`Migration`], or `None` when the provider has departed, `to` is
    /// out of range, or the provider already lives on `to`.
    pub fn migrate_provider(&mut self, provider: ProviderId, to: usize) -> Option<Migration> {
        let from = *self.assignment.get(provider)?;
        if to >= self.shards.len() || from == to {
            return None;
        }
        let source = &mut self.shard_providers[from];
        if let Ok(pos) = source.binary_search(&provider) {
            source.remove(pos);
        }
        let destination = &mut self.shard_providers[to];
        if let Err(pos) = destination.binary_search(&provider) {
            destination.insert(pos, provider);
        }
        *self.assignment.get_mut(provider)? = to;
        match self.shards[from].state_mut().export_provider(provider) {
            Some(tracker) => self.shards[to]
                .state_mut()
                .absorb_provider(provider, tracker),
            // Never observed on the donor shard: start fresh on the
            // receiver, as a first allocation there would.
            None => self.shards[to].state_mut().register_provider(provider),
        }
        Some(Migration { provider, from, to })
    }

    /// One all-to-all satisfaction-view synchronization round.
    pub fn sync_views(&mut self) {
        if self.shards.len() < 2 {
            return;
        }
        let digests: Vec<_> = self.shards.iter().map(Mediator::export_digest).collect();
        for shard in &mut self.shards {
            shard.absorb_digests(&digests);
        }
        self.sync_rounds += 1;
    }

    /// Completed synchronization rounds.
    pub fn sync_rounds(&self) -> u64 {
        self.sync_rounds
    }

    /// Allocations performed per shard, in shard order.
    pub fn allocations_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|m| m.state().allocations())
            .collect()
    }

    /// Total allocations across all shards.
    pub fn total_allocations(&self) -> u64 {
        self.allocations_per_shard().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::allocation::MediatorView;
    use sqlb_types::{QueryClass, QueryId, SimTime};

    fn router(k: usize, providers: u32) -> ShardRouter {
        ShardRouter::new(
            k,
            Method::Sqlb,
            42,
            MediatorStateConfig::default(),
            (0..providers).map(ProviderId::new),
        )
    }

    #[test]
    fn k1_owns_everything_in_shard_zero() {
        let r = router(1, 5);
        assert_eq!(r.shard_count(), 1);
        for p in 0..5 {
            assert_eq!(r.shard_of_provider(ProviderId::new(p)), Some(0));
        }
        assert_eq!(r.shard_for_consumer(ConsumerId::new(17)), 0);
        assert_eq!(
            r.providers_of_shard(0).len(),
            5,
            "shard 0 sees every provider"
        );
    }

    #[test]
    fn partition_is_round_robin_and_total() {
        let r = router(4, 10);
        for p in 0..10u32 {
            assert_eq!(
                r.shard_of_provider(ProviderId::new(p)),
                Some(p as usize % 4)
            );
        }
        let total: usize = (0..4).map(|s| r.providers_of_shard(s).len()).sum();
        assert_eq!(total, 10);
        // Each per-shard list is ascending by id.
        for s in 0..4 {
            let list = r.providers_of_shard(s);
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn removal_forgets_the_provider_everywhere() {
        let mut r = router(2, 4);
        r.remove_provider(ProviderId::new(2));
        assert_eq!(r.shard_of_provider(ProviderId::new(2)), None);
        assert!(r
            .providers_of_shard(0)
            .iter()
            .all(|&p| p != ProviderId::new(2)));
        // Removing again is a no-op.
        r.remove_provider(ProviderId::new(2));
        assert_eq!(r.providers_of_shard(0).len(), 1);
    }

    #[test]
    fn sync_propagates_consumer_views_across_shards() {
        let mut r = router(2, 4);
        let consumer = ConsumerId::new(0);
        let query = Query::single(QueryId::new(1), consumer, QueryClass::Light, SimTime::ZERO);
        // Shard 0 repeatedly sees the consumer perfectly served.
        for i in 0..10 {
            let q = Query::single(QueryId::new(i), consumer, QueryClass::Light, SimTime::ZERO);
            let infos = vec![CandidateInfo::new(ProviderId::new(0))
                .with_consumer_intention(1.0)
                .with_provider_intention(1.0)];
            r.allocate(0, &q, &infos);
        }
        let _ = query;
        let before = r.mediator(1).state().consumer_satisfaction(consumer);
        assert_eq!(before, 0.5);
        r.sync_views();
        let after = r.mediator(1).state().consumer_satisfaction(consumer);
        assert!(after > 0.9, "sync should carry the view over, got {after}");
        assert_eq!(r.sync_rounds(), 1);
    }

    #[test]
    fn k1_sync_is_a_no_op() {
        let mut r = router(1, 2);
        r.sync_views();
        assert_eq!(r.sync_rounds(), 0);
    }

    #[test]
    fn shard_zero_keeps_the_raw_seed() {
        // The K=1 bit-identity contract: shard 0's method must consume
        // exactly the stream the pre-sharding engine did.
        assert_eq!(shard_seed(42, 0), 42);
        assert_eq!(shard_seed(u64::MAX, 0), u64::MAX);
    }

    #[test]
    fn shard_seeds_do_not_collide_with_additive_seeding() {
        // The old scheme was `seed + i`, which collided with any component
        // seeded at `seed + constant` (e.g. experiment repetition `i`).
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            for i in 1..16usize {
                let mixed = shard_seed(seed, i);
                assert_ne!(mixed, seed.wrapping_add(i as u64), "seed {seed}, shard {i}");
                // And distinct shards get distinct seeds.
                for j in 1..i {
                    assert_ne!(mixed, shard_seed(seed, j));
                }
            }
        }
    }

    #[test]
    fn migration_moves_ownership_and_history() {
        let mut r = router(2, 4);
        let provider = ProviderId::new(0); // shard 0
        let q = Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        for _ in 0..8 {
            let infos = vec![CandidateInfo::new(provider)
                .with_consumer_intention(1.0)
                .with_provider_intention(1.0)];
            r.allocate(0, &q, &infos);
        }
        let history = r.mediator(0).state().provider_satisfaction(provider);
        assert!(history > 0.9);

        let migration = r.migrate_provider(provider, 1).unwrap();
        assert_eq!(
            migration,
            Migration {
                provider,
                from: 0,
                to: 1
            }
        );
        assert_eq!(r.shard_of_provider(provider), Some(1));
        assert!(r.providers_of_shard(0).binary_search(&provider).is_err());
        assert!(r.providers_of_shard(1).binary_search(&provider).is_ok());
        // The per-shard lists stay sorted after the insertion.
        assert!(r.providers_of_shard(1).windows(2).all(|w| w[0] < w[1]));
        // The satisfaction history moved with the provider.
        assert_eq!(
            r.mediator(1).state().provider_satisfaction(provider),
            history
        );
        assert!(r.mediator(0).state().provider_tracker(provider).is_none());

        // Degenerate moves are rejected.
        assert_eq!(r.migrate_provider(provider, 1), None, "already there");
        assert_eq!(r.migrate_provider(provider, 9), None, "out of range");
        r.remove_provider(provider);
        assert_eq!(r.migrate_provider(provider, 0), None, "departed");
    }

    #[test]
    fn migrating_an_unobserved_provider_registers_it_fresh() {
        let mut r = router(2, 4);
        let provider = ProviderId::new(2); // shard 0, never allocated to
        r.migrate_provider(provider, 1).unwrap();
        assert_eq!(r.shard_of_provider(provider), Some(1));
        assert!(r.mediator(1).state().provider_tracker(provider).is_some());
        assert_eq!(r.mediator(1).state().provider_satisfaction(provider), 0.5);
    }

    #[test]
    fn churn_parks_history_and_resume_restores_it() {
        let mut r = router(2, 4);
        let provider = ProviderId::new(0); // shard 0
        let q = Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        for _ in 0..8 {
            let infos = vec![CandidateInfo::new(provider)
                .with_consumer_intention(1.0)
                .with_provider_intention(1.0)];
            r.allocate(0, &q, &infos);
        }
        let history = r.mediator(0).state().provider_satisfaction(provider);
        assert!(history > 0.9);

        r.churn_depart(provider);
        assert_eq!(r.shard_of_provider(provider), None);
        assert!(r.mediator(0).state().provider_tracker(provider).is_none());

        // Resume: the mediator's view continues where it left off, on the
        // home residue shard.
        assert_eq!(r.readmit_provider(provider, true), Some(0));
        assert_eq!(r.shard_of_provider(provider), Some(0));
        assert!(r.providers_of_shard(0).binary_search(&provider).is_ok());
        assert!(r.providers_of_shard(0).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            r.mediator(0).state().provider_satisfaction(provider),
            history
        );
        // Re-admitting a present provider is rejected.
        assert_eq!(r.readmit_provider(provider, true), None);
    }

    #[test]
    fn churn_reset_registers_the_provider_fresh() {
        let mut r = router(2, 4);
        let provider = ProviderId::new(1); // shard 1
        let q = Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        for _ in 0..8 {
            let infos = vec![CandidateInfo::new(provider)
                .with_consumer_intention(1.0)
                .with_provider_intention(1.0)];
            r.allocate(1, &q, &infos);
        }
        assert!(r.mediator(1).state().provider_satisfaction(provider) > 0.9);
        r.churn_depart(provider);
        assert_eq!(r.readmit_provider(provider, false), Some(1));
        // Reset: back to the tracker's initial satisfaction.
        assert_eq!(r.mediator(1).state().provider_satisfaction(provider), 0.5);
        // The parked tracker was discarded, so a later resume cannot
        // resurrect it either.
        r.churn_depart(provider);
        assert_eq!(r.readmit_provider(provider, true), Some(1));
        assert_eq!(r.mediator(1).state().provider_satisfaction(provider), 0.5);
    }

    #[test]
    fn churn_of_an_unobserved_provider_readmits_fresh() {
        let mut r = router(2, 4);
        let provider = ProviderId::new(3); // shard 1, never allocated to
        r.churn_depart(provider);
        assert_eq!(r.readmit_provider(provider, true), Some(1));
        assert_eq!(r.mediator(1).state().provider_satisfaction(provider), 0.5);
    }

    #[test]
    fn allocation_counters_aggregate() {
        let mut r = router(2, 2);
        let q = Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let infos = vec![CandidateInfo::new(ProviderId::new(0))
            .with_consumer_intention(0.5)
            .with_provider_intention(0.5)];
        r.allocate(0, &q, &infos);
        r.allocate(1, &q, &infos);
        r.allocate(1, &q, &infos);
        assert_eq!(r.allocations_per_shard(), vec![1, 2]);
        assert_eq!(r.total_allocations(), 3);
    }
}
