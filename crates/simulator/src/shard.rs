//! The sharding router: mediator-count-agnostic mediation.
//!
//! The paper evaluates a mono-mediator system, but its model allows many
//! mediators (Section 2). [`ShardRouter`] partitions the providers across
//! `K` [`Mediator`] shards (round-robin by provider id, so the partition
//! is stable and seed-independent) and routes each query to the shard
//! responsible for it. With `K = 1` every provider lands in shard 0 and
//! every query routes there, reproducing the mono-mediator pipeline
//! bit-for-bit under the same seed.
//!
//! Each shard only observes the allocations it performs, so consumer
//! satisfaction views drift apart between shards; [`ShardRouter::sync_views`]
//! runs the periodic all-to-all digest exchange
//! ([`Mediator::export_digest`] / [`Mediator::absorb_digests`]) that blends
//! them back together.

use sqlb_core::mediator_state::MediatorStateConfig;
use sqlb_core::{Allocation, CandidateInfo, Mediator};
use sqlb_types::ProviderId;
use sqlb_types::{ConsumerId, MediatorId, ParticipantTable, Query, StableId};

use crate::config::Method;

/// Routes queries to mediator shards and owns the shard set.
#[derive(Debug)]
pub struct ShardRouter {
    shards: Vec<Mediator>,
    /// Which shard owns each (still-present) provider.
    assignment: ParticipantTable<ProviderId, usize>,
    /// Per-shard provider lists in ascending id order, maintained on
    /// removal. The arrival hot path borrows these directly — resolving a
    /// shard's candidate set is O(1) instead of a filter over the whole
    /// assignment table (which is O(P) per arrival, not O(P/K)).
    shard_providers: Vec<Vec<ProviderId>>,
    /// Completed synchronization rounds.
    sync_rounds: u64,
}

impl ShardRouter {
    /// Builds `shard_count` mediators running `method` and partitions the
    /// given providers across them round-robin by id. Each shard's method
    /// instance is seeded with `seed + shard index`, so shard 0 of a
    /// mono-mediator router behaves exactly like the pre-sharding engine.
    pub fn new(
        shard_count: usize,
        method: Method,
        seed: u64,
        state_config: MediatorStateConfig,
        providers: impl IntoIterator<Item = ProviderId>,
    ) -> Self {
        let shard_count = shard_count.max(1);
        let shards = (0..shard_count)
            .map(|i| {
                let mut mediator = Mediator::new(
                    MediatorId::new(i as u32),
                    method.build(seed.wrapping_add(i as u64)),
                    state_config,
                );
                // The engine never reads the per-allocation ranking
                // diagnostic; skipping it keeps the hot path free of the
                // full sort + clone it would cost. The *selected*
                // providers are identical either way.
                mediator.set_record_ranking(false);
                mediator
            })
            .collect();
        let assignment: ParticipantTable<ProviderId, usize> = providers
            .into_iter()
            .map(|p| (p, p.slot() % shard_count))
            .collect();
        let mut shard_providers = vec![Vec::new(); shard_count];
        for (p, &shard) in assignment.iter() {
            // `ParticipantTable::iter` is ascending by id, so each
            // per-shard list starts sorted.
            shard_providers[shard].push(p);
        }
        ShardRouter {
            shards,
            assignment,
            shard_providers,
            sync_rounds: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that mediates queries of the given consumer. Routing is a
    /// pure function of the consumer id, so it never consumes randomness
    /// and stays stable across departures.
    pub fn shard_for_consumer(&self, consumer: ConsumerId) -> usize {
        consumer.slot() % self.shards.len()
    }

    /// The shard that owns a provider, if the provider is still present.
    pub fn shard_of_provider(&self, provider: ProviderId) -> Option<usize> {
        self.assignment.get(provider).copied()
    }

    /// The providers a shard owns, in ascending id order. Borrows the
    /// incrementally maintained per-shard list — no per-call scan or
    /// allocation.
    pub fn providers_of_shard(&self, shard: usize) -> &[ProviderId] {
        &self.shard_providers[shard]
    }

    /// The mediator of a shard.
    pub fn mediator(&self, shard: usize) -> &Mediator {
        &self.shards[shard]
    }

    /// Mutable access to the mediator of a shard.
    pub fn mediator_mut(&mut self, shard: usize) -> &mut Mediator {
        &mut self.shards[shard]
    }

    /// Runs the allocation decision on the given shard and records it in
    /// that shard's satisfaction state.
    pub fn allocate(
        &mut self,
        shard: usize,
        query: &Query,
        candidates: &[CandidateInfo],
    ) -> Allocation {
        self.shards[shard].allocate(query, candidates)
    }

    /// Removes a departed provider from its shard's assignment, provider
    /// list and satisfaction state.
    pub fn remove_provider(&mut self, provider: ProviderId) {
        if let Some(shard) = self.assignment.remove(provider) {
            let list = &mut self.shard_providers[shard];
            if let Ok(pos) = list.binary_search(&provider) {
                list.remove(pos);
            }
            self.shards[shard].state_mut().remove_provider(provider);
        }
    }

    /// Removes a departed consumer from every shard's satisfaction state.
    pub fn remove_consumer(&mut self, consumer: ConsumerId) {
        for shard in &mut self.shards {
            shard.state_mut().remove_consumer(consumer);
        }
    }

    /// One all-to-all satisfaction-view synchronization round.
    pub fn sync_views(&mut self) {
        if self.shards.len() < 2 {
            return;
        }
        let digests: Vec<_> = self.shards.iter().map(Mediator::export_digest).collect();
        for shard in &mut self.shards {
            shard.absorb_digests(&digests);
        }
        self.sync_rounds += 1;
    }

    /// Completed synchronization rounds.
    pub fn sync_rounds(&self) -> u64 {
        self.sync_rounds
    }

    /// Allocations performed per shard, in shard order.
    pub fn allocations_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|m| m.state().allocations())
            .collect()
    }

    /// Total allocations across all shards.
    pub fn total_allocations(&self) -> u64 {
        self.allocations_per_shard().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::allocation::MediatorView;
    use sqlb_types::{QueryClass, QueryId, SimTime};

    fn router(k: usize, providers: u32) -> ShardRouter {
        ShardRouter::new(
            k,
            Method::Sqlb,
            42,
            MediatorStateConfig::default(),
            (0..providers).map(ProviderId::new),
        )
    }

    #[test]
    fn k1_owns_everything_in_shard_zero() {
        let r = router(1, 5);
        assert_eq!(r.shard_count(), 1);
        for p in 0..5 {
            assert_eq!(r.shard_of_provider(ProviderId::new(p)), Some(0));
        }
        assert_eq!(r.shard_for_consumer(ConsumerId::new(17)), 0);
        assert_eq!(
            r.providers_of_shard(0).len(),
            5,
            "shard 0 sees every provider"
        );
    }

    #[test]
    fn partition_is_round_robin_and_total() {
        let r = router(4, 10);
        for p in 0..10u32 {
            assert_eq!(
                r.shard_of_provider(ProviderId::new(p)),
                Some(p as usize % 4)
            );
        }
        let total: usize = (0..4).map(|s| r.providers_of_shard(s).len()).sum();
        assert_eq!(total, 10);
        // Each per-shard list is ascending by id.
        for s in 0..4 {
            let list = r.providers_of_shard(s);
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn removal_forgets_the_provider_everywhere() {
        let mut r = router(2, 4);
        r.remove_provider(ProviderId::new(2));
        assert_eq!(r.shard_of_provider(ProviderId::new(2)), None);
        assert!(r
            .providers_of_shard(0)
            .iter()
            .all(|&p| p != ProviderId::new(2)));
        // Removing again is a no-op.
        r.remove_provider(ProviderId::new(2));
        assert_eq!(r.providers_of_shard(0).len(), 1);
    }

    #[test]
    fn sync_propagates_consumer_views_across_shards() {
        let mut r = router(2, 4);
        let consumer = ConsumerId::new(0);
        let query = Query::single(QueryId::new(1), consumer, QueryClass::Light, SimTime::ZERO);
        // Shard 0 repeatedly sees the consumer perfectly served.
        for i in 0..10 {
            let q = Query::single(QueryId::new(i), consumer, QueryClass::Light, SimTime::ZERO);
            let infos = vec![CandidateInfo::new(ProviderId::new(0))
                .with_consumer_intention(1.0)
                .with_provider_intention(1.0)];
            r.allocate(0, &q, &infos);
        }
        let _ = query;
        let before = r.mediator(1).state().consumer_satisfaction(consumer);
        assert_eq!(before, 0.5);
        r.sync_views();
        let after = r.mediator(1).state().consumer_satisfaction(consumer);
        assert!(after > 0.9, "sync should carry the view over, got {after}");
        assert_eq!(r.sync_rounds(), 1);
    }

    #[test]
    fn k1_sync_is_a_no_op() {
        let mut r = router(1, 2);
        r.sync_views();
        assert_eq!(r.sync_rounds(), 0);
    }

    #[test]
    fn allocation_counters_aggregate() {
        let mut r = router(2, 2);
        let q = Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let infos = vec![CandidateInfo::new(ProviderId::new(0))
            .with_consumer_intention(0.5)
            .with_provider_intention(0.5)];
        r.allocate(0, &q, &infos);
        r.allocate(1, &q, &infos);
        r.allocate(1, &q, &infos);
        assert_eq!(r.allocations_per_shard(), vec![1, 2]);
        assert_eq!(r.total_allocations(), 3);
    }
}
