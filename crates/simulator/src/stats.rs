//! Measurement collection and the simulation report.

use serde::{Deserialize, Serialize};
use sqlb_agents::{DepartureReason, ProviderProfile};
use sqlb_metrics::{Histogram, Summary, TimeSeries};
use sqlb_types::{ConsumerId, ProviderId};

/// All metric time series recorded during a run. Each series is sampled at
/// the configured sampling interval over the *active* (non-departed)
/// participants, which is what the paper's Figure 4 plots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Figure 4(a): providers' satisfaction mean, based on intentions
    /// ("what a query allocation method can see").
    pub provider_satisfaction_intention_mean: TimeSeries,
    /// Figure 4(b): providers' satisfaction mean, based on preferences
    /// ("what providers really feel").
    pub provider_satisfaction_preference_mean: TimeSeries,
    /// Figure 4(c): providers' allocation-satisfaction mean, based on
    /// preferences.
    pub provider_allocation_satisfaction_preference_mean: TimeSeries,
    /// Providers' allocation-satisfaction mean based on intentions
    /// (not plotted in the paper but useful for diagnostics).
    pub provider_allocation_satisfaction_intention_mean: TimeSeries,
    /// Figure 4(d): provider satisfaction fairness (intention-based).
    pub provider_satisfaction_fairness: TimeSeries,
    /// Figure 4(e): consumers' allocation-satisfaction mean.
    pub consumer_allocation_satisfaction_mean: TimeSeries,
    /// Consumers' satisfaction mean (diagnostic).
    pub consumer_satisfaction_mean: TimeSeries,
    /// Figure 4(f): consumer satisfaction fairness.
    pub consumer_satisfaction_fairness: TimeSeries,
    /// Figure 4(g): query load (utilization) mean.
    pub utilization_mean: TimeSeries,
    /// Figure 4(h): query load (utilization) fairness.
    pub utilization_fairness: TimeSeries,
    /// The workload fraction applied over time (the x-axis of several
    /// figures when re-plotted against workload).
    pub workload_fraction: TimeSeries,
    /// Number of providers still in the system.
    pub active_providers: TimeSeries,
    /// Number of consumers still in the system.
    pub active_consumers: TimeSeries,
    /// Per-shard mean provider utilization, one series per mediator shard
    /// (index = shard). This is the load signal cross-shard migration acts
    /// on; its spread is what rebalancing shrinks.
    pub shard_utilization: Vec<TimeSeries>,
    /// Per-shard mean provider satisfaction (smoothed, intention-agnostic
    /// reading), one series per mediator shard.
    pub shard_satisfaction: Vec<TimeSeries>,
    /// Per-shard *cumulative* allocation counts over time, one series per
    /// mediator shard. Differencing two samples gives the mediation load
    /// of any window, free of start-up transients.
    pub shard_allocation_counts: Vec<TimeSeries>,
    /// Spread (max − min) of the per-shard mean utilizations at each
    /// sample: the imbalance rebalancing is judged on.
    pub shard_utilization_spread: TimeSeries,
}

/// A provider departure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepartureRecord {
    /// The provider that left.
    pub provider: ProviderId,
    /// When it left (seconds of virtual time).
    pub time_secs: f64,
    /// Why it left.
    pub reason: DepartureReason,
    /// Its class profile (used by Table 3's breakdown).
    pub profile: ProviderProfile,
}

/// One cross-shard provider migration performed by a rebalancing round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The provider that moved.
    pub provider: ProviderId,
    /// When it moved (seconds of virtual time).
    pub time_secs: f64,
    /// The shard that owned it before the move.
    pub from_shard: usize,
    /// The shard that owns it after the move.
    pub to_shard: usize,
    /// Imbalance observed by the rebalancing round that decided the move,
    /// before the move took effect: the per-shard mean-utilization spread
    /// under static routing, or the busiest/idlest allocation ratio under
    /// load-adaptive routing.
    pub spread_before: f64,
    /// The donor shard's mediator-side satisfaction reading for the
    /// provider at the moment of the move. The load-adaptive donor rule
    /// prefers under-served donors (low reading — their proposals mostly
    /// lose on the contended shard, so they stand to gain the most on the
    /// receiving one); recording the value makes that preference
    /// observable in the migration log.
    pub donor_satisfaction: f64,
}

/// A consumer departure (always by dissatisfaction in the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumerDepartureRecord {
    /// The consumer that left.
    pub consumer: ConsumerId,
    /// When it left (seconds of virtual time).
    pub time_secs: f64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Display name of the allocation method under test.
    pub method: String,
    /// Seed the run used.
    pub seed: u64,
    /// All sampled metric series.
    pub series: MetricSeries,
    /// Queries issued by consumers.
    pub issued_queries: u64,
    /// Queries whose results were delivered before the end of the run.
    pub completed_queries: u64,
    /// Queries that could not be allocated because no provider remained in
    /// the system.
    pub unallocated_queries: u64,
    /// Response-time distribution of completed queries (seconds).
    pub response_times: Histogram,
    /// Provider departures, in chronological order.
    pub provider_departures: Vec<DepartureRecord>,
    /// Consumer departures, in chronological order.
    pub consumer_departures: Vec<ConsumerDepartureRecord>,
    /// Number of providers at the start of the run.
    pub initial_providers: usize,
    /// Number of consumers at the start of the run.
    pub initial_consumers: usize,
    /// Number of mediator shards the run used (1 = the paper's setup).
    pub mediator_shards: usize,
    /// Allocations performed per mediator shard, in shard order.
    pub shard_allocations: Vec<u64>,
    /// Satisfaction-view synchronization rounds completed between shards.
    pub sync_rounds: u64,
    /// Consumer-routing policy name the run used (`"static"` in the
    /// paper's setup).
    pub routing_policy: String,
    /// Cross-shard provider migrations, in chronological order. Empty when
    /// migration is disabled or `mediator_shards == 1`.
    pub migrations: Vec<MigrationRecord>,
    /// Rebalancing rounds evaluated (a round may decide not to migrate).
    pub rebalance_rounds: u64,
    /// Summary of provider utilization at the end of the run.
    pub final_utilization: Summary,
    /// Summary of provider (intention-based) satisfaction at the end of the
    /// run.
    pub final_provider_satisfaction: Summary,
    /// Summary of consumer satisfaction at the end of the run.
    pub final_consumer_satisfaction: Summary,
    /// Name of the scenario the run executed (empty: the plain paper
    /// setup with no scenario attached). Descriptive only — not part of
    /// [`SimulationReport::digest`], whose fixed series list keeps
    /// digests comparable across report-schema revisions.
    #[serde(default)]
    pub scenario: String,
    /// Providers taken out by scenario churn groups. Kept separate from
    /// [`SimulationReport::provider_departures`]: churn is injected, not
    /// a behavioral outcome, so Table-3-style retention metrics stay
    /// clean (the digest still reflects churn through the
    /// `active_providers` series).
    #[serde(default)]
    pub churn_departures: u64,
    /// Providers brought back by scenario churn groups.
    #[serde(default)]
    pub churn_rejoins: u64,
    /// Mediation replies degraded to indifference by the run's transport
    /// (missed wave deadlines, dead connections) or modeled as such by
    /// the in-process fault hooks. Zero in fault-free runs on every
    /// backend.
    #[serde(default)]
    pub indifferent_replies: u64,
    /// Mediation waves that completed with at least one reply degraded
    /// to indifference — the wave-granular companion of
    /// [`SimulationReport::indifferent_replies`] (one degraded wave may
    /// account for many indifferent replies). Diagnostic only: like the
    /// scenario name, it is not folded into [`SimulationReport::digest`].
    #[serde(default)]
    pub degraded_waves: u64,
}

/// FNV-1a, 64-bit — the fold behind [`SimulationReport::digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    fn write_series(&mut self, series: &TimeSeries) {
        for point in series.points() {
            self.write_f64(point.time);
            self.write_f64(point.value);
        }
    }
}

impl SimulationReport {
    /// Mean response time of completed queries, in seconds.
    pub fn mean_response_time(&self) -> f64 {
        self.response_times.mean()
    }

    /// A bit-exact digest of the report: the raw IEEE-754 bits of every
    /// primary metric series (plus the query counters) folded into an
    /// FNV-1a hash. Two runs produce the same digest if and only if their
    /// engines were bit-identical for that configuration — this is the
    /// value behind the "K=1 must stay bit-identical across PRs" and "all
    /// mediation backends must agree" acceptance bars (the `report_digest`
    /// binary prints it over a fixed configuration matrix).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.issued_queries);
        h.write_u64(self.completed_queries);
        h.write_u64(self.unallocated_queries);
        h.write_u64(self.provider_departures.len() as u64);
        h.write_u64(self.consumer_departures.len() as u64);
        h.write_f64(self.mean_response_time());
        let s = &self.series;
        for series in [
            &s.provider_satisfaction_intention_mean,
            &s.provider_satisfaction_preference_mean,
            &s.provider_allocation_satisfaction_preference_mean,
            &s.provider_allocation_satisfaction_intention_mean,
            &s.provider_satisfaction_fairness,
            &s.consumer_allocation_satisfaction_mean,
            &s.consumer_satisfaction_mean,
            &s.consumer_satisfaction_fairness,
            &s.utilization_mean,
            &s.utilization_fairness,
            &s.workload_fraction,
            &s.active_providers,
            &s.active_consumers,
        ] {
            h.write_series(series);
        }
        h.0
    }

    /// Fraction of providers that departed during the run.
    pub fn provider_departure_fraction(&self) -> f64 {
        if self.initial_providers == 0 {
            0.0
        } else {
            self.provider_departures.len() as f64 / self.initial_providers as f64
        }
    }

    /// Fraction of consumers that departed during the run.
    pub fn consumer_departure_fraction(&self) -> f64 {
        if self.initial_consumers == 0 {
            0.0
        } else {
            self.consumer_departures.len() as f64 / self.initial_consumers as f64
        }
    }

    /// Fraction of the initial providers still active at the last metric
    /// sample — the retention reading of the campaign matrix. Unlike
    /// `1 − provider_departure_fraction()` this also reflects scenario
    /// churn (departures *and* re-joins), since it reads the sampled
    /// `active_providers` series.
    pub fn provider_retention(&self) -> f64 {
        if self.initial_providers == 0 {
            return 1.0;
        }
        let active = self
            .series
            .active_providers
            .last_value()
            .unwrap_or(self.initial_providers as f64 - self.provider_departures.len() as f64);
        active / self.initial_providers as f64
    }

    /// Fraction of issued queries that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.issued_queries == 0 {
            1.0
        } else {
            self.completed_queries as f64 / self.issued_queries as f64
        }
    }

    /// Number of provider departures with the given reason.
    pub fn departures_by_reason(&self, reason: DepartureReason) -> usize {
        self.provider_departures
            .iter()
            .filter(|d| d.reason == reason)
            .count()
    }

    /// Ratio between the busiest and the idlest shard's allocation count
    /// (`max / min`). `1` means perfectly balanced mediation load;
    /// `infinity` means at least one shard mediated nothing. Reports `1`
    /// for a mono-mediator run.
    pub fn shard_allocation_imbalance(&self) -> f64 {
        let max = self.shard_allocations.iter().copied().max().unwrap_or(0);
        let min = self.shard_allocations.iter().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Mean per-shard utilization spread over the samples taken at or
    /// after `from_secs` — the steady-state imbalance rebalancing is
    /// judged on.
    pub fn mean_shard_utilization_spread_after(&self, from_secs: f64) -> f64 {
        self.series.shard_utilization_spread.mean_after(from_secs)
    }

    /// `max / min` of the per-shard allocations mediated *after*
    /// `from_secs` (from the cumulative per-shard counts, differenced at
    /// the first sample at or after `from_secs`). This is the steady-state
    /// variant of [`SimulationReport::shard_allocation_imbalance`], free
    /// of the start-up transient a run needs before routing and migration
    /// converge. Falls back to the whole-run ratio when the series are
    /// missing or the window contains no allocation at all (including
    /// `from_secs` at or past the final sample, where every window is
    /// empty by construction).
    pub fn shard_allocation_imbalance_after(&self, from_secs: f64) -> f64 {
        let counts = &self.series.shard_allocation_counts;
        if counts.is_empty() {
            return self.shard_allocation_imbalance();
        }
        let mut max = 0.0f64;
        let mut min = f64::INFINITY;
        for series in counts {
            let start = series.value_at(from_secs).unwrap_or(0.0);
            let end = series.last_value().unwrap_or(0.0);
            let window = (end - start).max(0.0);
            max = max.max(window);
            min = min.min(window);
        }
        if max == 0.0 {
            // Nothing was mediated in the window — there is no tail
            // imbalance to report, so answer with the whole-run ratio
            // rather than claiming perfect balance.
            self.shard_allocation_imbalance()
        } else if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_agents::{AdaptationClass, CapacityClass, InterestClass};

    fn profile() -> ProviderProfile {
        ProviderProfile {
            interest: InterestClass::High,
            adaptation: AdaptationClass::Medium,
            capacity: CapacityClass::Low,
        }
    }

    fn empty_report() -> SimulationReport {
        SimulationReport {
            method: "test".into(),
            seed: 0,
            series: MetricSeries::default(),
            issued_queries: 0,
            completed_queries: 0,
            unallocated_queries: 0,
            response_times: Histogram::new(0.0, 60.0, 60),
            provider_departures: Vec::new(),
            consumer_departures: Vec::new(),
            initial_providers: 0,
            initial_consumers: 0,
            mediator_shards: 1,
            shard_allocations: Vec::new(),
            sync_rounds: 0,
            routing_policy: "static".into(),
            migrations: Vec::new(),
            rebalance_rounds: 0,
            final_utilization: Summary::of(&[]),
            final_provider_satisfaction: Summary::of(&[]),
            final_consumer_satisfaction: Summary::of(&[]),
            scenario: String::new(),
            churn_departures: 0,
            churn_rejoins: 0,
            indifferent_replies: 0,
            degraded_waves: 0,
        }
    }

    #[test]
    fn empty_report_has_neutral_ratios() {
        let r = empty_report();
        assert_eq!(r.mean_response_time(), 0.0);
        assert_eq!(r.provider_departure_fraction(), 0.0);
        assert_eq!(r.consumer_departure_fraction(), 0.0);
        assert_eq!(r.completion_rate(), 1.0);
    }

    #[test]
    fn ratios_and_reason_counts() {
        let mut r = empty_report();
        r.initial_providers = 10;
        r.initial_consumers = 4;
        r.issued_queries = 100;
        r.completed_queries = 80;
        r.provider_departures = vec![
            DepartureRecord {
                provider: ProviderId::new(0),
                time_secs: 10.0,
                reason: DepartureReason::Dissatisfaction,
                profile: profile(),
            },
            DepartureRecord {
                provider: ProviderId::new(1),
                time_secs: 20.0,
                reason: DepartureReason::Overutilization,
                profile: profile(),
            },
        ];
        r.consumer_departures = vec![ConsumerDepartureRecord {
            consumer: ConsumerId::new(0),
            time_secs: 5.0,
        }];
        assert!((r.provider_departure_fraction() - 0.2).abs() < 1e-12);
        assert!((r.consumer_departure_fraction() - 0.25).abs() < 1e-12);
        assert!((r.completion_rate() - 0.8).abs() < 1e-12);
        assert_eq!(r.departures_by_reason(DepartureReason::Dissatisfaction), 1);
        assert_eq!(r.departures_by_reason(DepartureReason::Overutilization), 1);
        assert_eq!(r.departures_by_reason(DepartureReason::Starvation), 0);
    }

    #[test]
    fn response_time_mean_reflects_records() {
        let mut r = empty_report();
        r.response_times.record(2.0);
        r.response_times.record(4.0);
        assert!((r.mean_response_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shard_allocation_imbalance_is_max_over_min() {
        let mut r = empty_report();
        assert_eq!(r.shard_allocation_imbalance(), 1.0, "no shards: neutral");
        r.shard_allocations = vec![100, 50, 200, 100];
        assert!((r.shard_allocation_imbalance() - 4.0).abs() < 1e-12);
        r.shard_allocations = vec![80, 80];
        assert!((r.shard_allocation_imbalance() - 1.0).abs() < 1e-12);
        r.shard_allocations = vec![80, 0];
        assert!(r.shard_allocation_imbalance().is_infinite());
    }

    #[test]
    fn tail_imbalance_windows_the_cumulative_counts() {
        let mut r = empty_report();
        r.shard_allocations = vec![300, 100];
        // Cumulative counts: shard 0 mediates 200 then 100 more; shard 1
        // mediates 50 then 50 more.
        let mut s0 = TimeSeries::new();
        s0.push_raw(100.0, 200.0);
        s0.push_raw(200.0, 300.0);
        let mut s1 = TimeSeries::new();
        s1.push_raw(100.0, 50.0);
        s1.push_raw(200.0, 100.0);
        r.series.shard_allocation_counts = vec![s0, s1];
        // Tail from t=100: windows are 100 and 50 → ratio 2.
        assert!((r.shard_allocation_imbalance_after(100.0) - 2.0).abs() < 1e-12);
        // A window past the final sample holds no allocations: fall back
        // to the whole-run ratio (3.0), never report perfect balance.
        assert!((r.shard_allocation_imbalance_after(500.0) - 3.0).abs() < 1e-12);
        // No series at all: whole-run ratio too.
        r.series.shard_allocation_counts.clear();
        assert!((r.shard_allocation_imbalance_after(100.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shard_spread_summary_reads_the_series() {
        let mut r = empty_report();
        r.series.shard_utilization_spread.push_raw(50.0, 0.4);
        r.series.shard_utilization_spread.push_raw(150.0, 0.2);
        r.series.shard_utilization_spread.push_raw(250.0, 0.1);
        assert!((r.mean_shard_utilization_spread_after(100.0) - 0.15).abs() < 1e-12);
    }
}
