//! # sqlb-matchmaking
//!
//! The matchmaking substrate of the SQLB system.
//!
//! The paper assumes the existence of a sound and complete matchmaking
//! procedure that, given the description `q.d` of a query, returns the set
//! `P_q` of providers able to treat it (Section 2: "There is a large body
//! of work on matchmaking … so we do not focus on this problem and we
//! assume there exists one in the system that is sound and complete").
//!
//! This crate provides that substrate:
//!
//! * [`CapabilityRegistry`] — providers declare their capabilities
//!   ("Providers declare their capabilities for performing queries to the
//!   mediator", Section 1) as a set of topics and attributes;
//! * the [`Matchmaker`] trait — anything that maps a query description to a
//!   candidate set;
//! * [`TopicMatchmaker`] — matches on topic prefixes and required
//!   attributes;
//! * [`UniversalMatchmaker`] — the degenerate matcher used by the paper's
//!   evaluation, where "all the providers in the system are able to perform
//!   all the incoming queries" (Section 6.1).

#![warn(missing_docs)]

pub mod registry;

pub use registry::{Capability, CapabilityRegistry};

use sqlb_types::{ProviderId, Query};

/// Computes the set `P_q` of providers able to treat a query.
///
/// Implementations must be *sound* (no provider in the result is unable to
/// treat the query, given the declared capabilities) and *complete* (every
/// capable provider is returned).
pub trait Matchmaker {
    /// Returns the identifiers of the providers able to treat `query`, in
    /// ascending identifier order.
    fn candidates(&self, query: &Query) -> Vec<ProviderId>;

    /// Returns `true` if the query is feasible, i.e. at least one provider
    /// can treat it. The paper only considers feasible queries; the
    /// simulator uses this to filter the workload it generates.
    fn is_feasible(&self, query: &Query) -> bool {
        !self.candidates(query).is_empty()
    }
}

/// The matcher used by the paper's experiments: every registered provider
/// matches every query.
#[derive(Debug, Clone, Default)]
pub struct UniversalMatchmaker {
    providers: Vec<ProviderId>,
}

impl UniversalMatchmaker {
    /// Creates a universal matcher over `n` providers with identifiers
    /// `0..n`.
    pub fn with_providers(n: u32) -> Self {
        UniversalMatchmaker {
            providers: (0..n).map(ProviderId::new).collect(),
        }
    }

    /// Creates a universal matcher over an explicit provider set.
    pub fn new(mut providers: Vec<ProviderId>) -> Self {
        providers.sort_unstable();
        providers.dedup();
        UniversalMatchmaker { providers }
    }

    /// Removes a provider (used when it departs from the system).
    pub fn remove(&mut self, provider: ProviderId) {
        self.providers.retain(|p| *p != provider);
    }

    /// Adds a provider (used when it registers with the mediator).
    pub fn add(&mut self, provider: ProviderId) {
        if let Err(pos) = self.providers.binary_search(&provider) {
            self.providers.insert(pos, provider);
        }
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether no provider is registered.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

impl Matchmaker for UniversalMatchmaker {
    fn candidates(&self, _query: &Query) -> Vec<ProviderId> {
        self.providers.clone()
    }
}

/// A topic- and attribute-based matchmaker backed by a
/// [`CapabilityRegistry`].
///
/// A provider matches a query when it declares a capability whose topic is
/// a prefix of the query topic (hierarchical topics, e.g. a provider
/// declaring `shipping` matches `shipping/international`) and which covers
/// every attribute required by the query.
#[derive(Debug, Clone, Default)]
pub struct TopicMatchmaker {
    registry: CapabilityRegistry,
}

impl TopicMatchmaker {
    /// Creates a matcher over an existing registry.
    pub fn new(registry: CapabilityRegistry) -> Self {
        TopicMatchmaker { registry }
    }

    /// Access to the underlying registry (e.g. to register or deregister
    /// providers at run time).
    pub fn registry_mut(&mut self) -> &mut CapabilityRegistry {
        &mut self.registry
    }

    /// Read access to the underlying registry.
    pub fn registry(&self) -> &CapabilityRegistry {
        &self.registry
    }
}

impl Matchmaker for TopicMatchmaker {
    fn candidates(&self, query: &Query) -> Vec<ProviderId> {
        self.registry.matching_providers(&query.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::{ConsumerId, QueryClass, QueryDescription, QueryId, SimTime};

    fn query_with_topic(topic: &str) -> Query {
        Query {
            id: QueryId::new(0),
            consumer: ConsumerId::new(0),
            description: QueryDescription::with_topic(topic, QueryClass::Light),
            n: 1,
            issued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn universal_matcher_returns_everyone() {
        let m = UniversalMatchmaker::with_providers(5);
        let q = query_with_topic("anything");
        assert_eq!(m.candidates(&q).len(), 5);
        assert!(m.is_feasible(&q));
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn universal_matcher_add_remove() {
        let mut m = UniversalMatchmaker::with_providers(3);
        m.remove(ProviderId::new(1));
        assert_eq!(m.len(), 2);
        let q = query_with_topic("t");
        assert!(!m.candidates(&q).contains(&ProviderId::new(1)));
        m.add(ProviderId::new(1));
        m.add(ProviderId::new(1)); // idempotent
        assert_eq!(m.len(), 3);
        assert!(m.candidates(&q).contains(&ProviderId::new(1)));
    }

    #[test]
    fn universal_matcher_empty_is_infeasible() {
        let m = UniversalMatchmaker::new(vec![]);
        assert!(m.is_empty());
        assert!(!m.is_feasible(&query_with_topic("t")));
    }

    #[test]
    fn universal_matcher_dedups_explicit_providers() {
        let m = UniversalMatchmaker::new(vec![
            ProviderId::new(2),
            ProviderId::new(0),
            ProviderId::new(2),
        ]);
        assert_eq!(m.len(), 2);
        let c = m.candidates(&query_with_topic("t"));
        assert_eq!(c, vec![ProviderId::new(0), ProviderId::new(2)]);
    }

    #[test]
    fn topic_matcher_filters_by_capability() {
        let mut registry = CapabilityRegistry::new();
        registry.register(
            ProviderId::new(0),
            Capability::new("shipping").with_attribute("origin:FR"),
        );
        registry.register(ProviderId::new(1), Capability::new("computing"));
        let m = TopicMatchmaker::new(registry);

        let q = query_with_topic("shipping/international");
        let candidates = m.candidates(&q);
        assert_eq!(candidates, vec![ProviderId::new(0)]);

        let q = query_with_topic("computing/cpu");
        assert_eq!(m.candidates(&q), vec![ProviderId::new(1)]);

        let q = query_with_topic("catering");
        assert!(m.candidates(&q).is_empty());
        assert!(!m.is_feasible(&q));
    }

    #[test]
    fn topic_matcher_requires_attributes() {
        let mut registry = CapabilityRegistry::new();
        registry.register(
            ProviderId::new(0),
            Capability::new("shipping")
                .with_attribute("origin:FR")
                .with_attribute("destination:US"),
        );
        registry.register(ProviderId::new(1), Capability::new("shipping"));
        let m = TopicMatchmaker::new(registry);

        let mut q = query_with_topic("shipping");
        q.description = q.description.clone().attribute("origin:FR");
        // Only p0 declares the required attribute.
        assert_eq!(m.candidates(&q), vec![ProviderId::new(0)]);
    }
}
