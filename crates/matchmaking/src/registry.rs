//! Provider capability declarations.

use serde::{Deserialize, Serialize};
use sqlb_types::{ProviderId, QueryDescription};
use std::collections::BTreeMap;

/// A capability a provider declares to the mediator: a topic it can handle
/// and the attributes it supports for that topic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capability {
    /// Topic handled by the provider (hierarchical, `/`-separated).
    pub topic: String,
    /// Attributes supported under that topic.
    pub attributes: Vec<String>,
}

impl Capability {
    /// Creates a capability for a topic with no attributes.
    pub fn new(topic: impl Into<String>) -> Self {
        Capability {
            topic: topic.into(),
            attributes: Vec::new(),
        }
    }

    /// Adds a supported attribute and returns the updated capability.
    pub fn with_attribute(mut self, attribute: impl Into<String>) -> Self {
        self.attributes.push(attribute.into());
        self
    }

    /// Returns `true` when this capability covers the given description:
    /// the capability topic is a (path-)prefix of the description topic and
    /// every required attribute is supported.
    pub fn covers(&self, description: &QueryDescription) -> bool {
        let topic_matches = description.topic == self.topic
            || description
                .topic
                .strip_prefix(&self.topic)
                .is_some_and(|rest| rest.starts_with('/'))
            || self.topic.is_empty();
        if !topic_matches {
            return false;
        }
        description
            .attributes
            .iter()
            .all(|required| self.attributes.iter().any(|a| a == required))
    }
}

/// The mediator-side registry of provider capabilities.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CapabilityRegistry {
    capabilities: BTreeMap<ProviderId, Vec<Capability>>,
}

impl CapabilityRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CapabilityRegistry {
            capabilities: BTreeMap::new(),
        }
    }

    /// Registers an additional capability for a provider.
    pub fn register(&mut self, provider: ProviderId, capability: Capability) {
        self.capabilities
            .entry(provider)
            .or_default()
            .push(capability);
    }

    /// Removes a provider and all of its capabilities (e.g. when it departs
    /// from the system). Returns `true` if the provider was registered.
    pub fn deregister(&mut self, provider: ProviderId) -> bool {
        self.capabilities.remove(&provider).is_some()
    }

    /// Returns the capabilities declared by a provider.
    pub fn capabilities_of(&self, provider: ProviderId) -> &[Capability] {
        self.capabilities
            .get(&provider)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Returns the providers whose declared capabilities cover the given
    /// description, in ascending identifier order.
    pub fn matching_providers(&self, description: &QueryDescription) -> Vec<ProviderId> {
        self.capabilities
            .iter()
            .filter(|(_, caps)| caps.iter().any(|c| c.covers(description)))
            .map(|(p, _)| *p)
            .collect()
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.capabilities.len()
    }

    /// Whether no provider is registered.
    pub fn is_empty(&self) -> bool {
        self.capabilities.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::QueryClass;

    #[test]
    fn capability_covers_topic_prefixes() {
        let cap = Capability::new("shipping");
        let exact = QueryDescription::with_topic("shipping", QueryClass::Light);
        let nested = QueryDescription::with_topic("shipping/international", QueryClass::Light);
        let sibling = QueryDescription::with_topic("shippingco", QueryClass::Light);
        assert!(cap.covers(&exact));
        assert!(cap.covers(&nested));
        assert!(!cap.covers(&sibling), "prefix must end at a path boundary");
    }

    #[test]
    fn empty_topic_capability_covers_everything() {
        let cap = Capability::new("");
        let d = QueryDescription::with_topic("anything/at/all", QueryClass::Heavy);
        assert!(cap.covers(&d));
    }

    #[test]
    fn capability_checks_required_attributes() {
        let cap = Capability::new("shipping").with_attribute("origin:FR");
        let ok = QueryDescription::with_topic("shipping", QueryClass::Light).attribute("origin:FR");
        let missing =
            QueryDescription::with_topic("shipping", QueryClass::Light).attribute("origin:DE");
        assert!(cap.covers(&ok));
        assert!(!cap.covers(&missing));
    }

    #[test]
    fn registry_register_and_match() {
        let mut r = CapabilityRegistry::new();
        assert!(r.is_empty());
        r.register(ProviderId::new(1), Capability::new("a"));
        r.register(ProviderId::new(0), Capability::new("b"));
        r.register(ProviderId::new(0), Capability::new("a/x"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.capabilities_of(ProviderId::new(0)).len(), 2);

        let d = QueryDescription::with_topic("a/x/deep", QueryClass::Light);
        let matches = r.matching_providers(&d);
        assert_eq!(matches, vec![ProviderId::new(0), ProviderId::new(1)]);
    }

    #[test]
    fn registry_deregister() {
        let mut r = CapabilityRegistry::new();
        r.register(ProviderId::new(0), Capability::new("a"));
        assert!(r.deregister(ProviderId::new(0)));
        assert!(!r.deregister(ProviderId::new(0)));
        let d = QueryDescription::with_topic("a", QueryClass::Light);
        assert!(r.matching_providers(&d).is_empty());
        assert!(r.capabilities_of(ProviderId::new(0)).is_empty());
    }
}
