//! Virtual time for the discrete-event simulator.
//!
//! The paper's experiments run for 10 000 simulated seconds (Figure 4). The
//! simulator keeps time as `f64` seconds wrapped in [`SimTime`] /
//! [`SimDuration`] newtypes so arithmetic mistakes between instants and
//! durations are caught at compile time.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of virtual time, in seconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of virtual time, in seconds (always non-negative).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds. Negative or non-finite inputs are
    /// clamped to zero.
    pub fn from_secs(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimTime(secs)
        } else {
            SimTime(0.0)
        }
    }

    /// Returns the instant as seconds since the start of the simulation.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }

    /// Total ordering usable in priority queues (NaN never occurs by
    /// construction).
    pub fn total_cmp(&self, other: &SimTime) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds. Negative or non-finite inputs are
    /// clamped to zero.
    pub fn from_secs(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimDuration(secs)
        } else {
            SimDuration(0.0)
        }
    }

    /// Returns the duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns `true` when the duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_clamps_negative_and_nan() {
        assert_eq!(SimTime::from_secs(-1.0).as_secs(), 0.0);
        assert_eq!(SimTime::from_secs(f64::NAN).as_secs(), 0.0);
        assert_eq!(SimDuration::from_secs(-1.0).as_secs(), 0.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(2.5);
        assert_eq!(t.as_secs(), 12.5);
        assert_eq!((t - SimTime::from_secs(10.0)).as_secs(), 2.5);
        assert_eq!(
            (SimTime::from_secs(1.0) - SimTime::from_secs(5.0)).as_secs(),
            0.0,
            "time differences saturate at zero"
        );
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(3.0);
        assert_eq!((d + d).as_secs(), 6.0);
        assert_eq!((d - SimDuration::from_secs(1.0)).as_secs(), 2.0);
        assert_eq!((d * 2.0).as_secs(), 6.0);
        assert_eq!((d / 2.0).as_secs(), 1.5);
        assert_eq!(d / SimDuration::from_secs(1.5), 2.0);
        let sum: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(sum.as_secs(), 9.0);
    }

    #[test]
    fn since_matches_sub() {
        let a = SimTime::from_secs(7.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!(a.since(b).as_secs(), 3.0);
        assert_eq!(b.since(a).as_secs(), 0.0);
    }

    #[test]
    fn total_cmp_orders_times() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(b.total_cmp(&a), std::cmp::Ordering::Greater);
        assert_eq!(a.total_cmp(&a), std::cmp::Ordering::Equal);
    }

    proptest! {
        #[test]
        fn prop_time_plus_duration_monotone(t in 0.0f64..1e6, d in 0.0f64..1e6) {
            let t0 = SimTime::from_secs(t);
            let t1 = t0 + SimDuration::from_secs(d);
            prop_assert!(t1.as_secs() >= t0.as_secs());
        }

        #[test]
        fn prop_durations_never_negative(a in proptest::num::f64::ANY, b in proptest::num::f64::ANY) {
            let da = SimDuration::from_secs(a);
            let db = SimDuration::from_secs(b);
            prop_assert!(da.as_secs() >= 0.0);
            prop_assert!((da - db).as_secs() >= 0.0);
        }
    }
}
