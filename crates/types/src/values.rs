//! Bounded numeric domains used throughout the framework.
//!
//! The paper works with several bounded quantities:
//!
//! * **intentions** and **preferences** take values in `[-1, 1]`
//!   (Section 2): a positive value means a participant intends to
//!   allocate/perform a query, a negative one that it does not, and zero
//!   denotes indifference;
//! * **reputation** also lives in `[-1, 1]` (Definition 7);
//! * **adequation** and **satisfaction** live in `[0, 1]` (Section 3);
//! * **allocation satisfaction** lives in `[0, ∞)` and is represented by a
//!   plain `f64`.
//!
//! The newtypes in this module make those domains explicit at API
//! boundaries. Constructors either clamp (`new`) or validate (`try_new`).
//! Raw intention values produced by Definitions 7–9 with `ε = 1` can fall
//! below `-1` (the paper's own Figure 2 plots values down to ≈ `-2.5`); the
//! scoring code therefore works on raw `f64`s and only converts to
//! [`Intention`] (clamping) when feeding the Section 3 satisfaction model.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::SqlbError;

/// A value in the closed unit interval `[0, 1]`.
///
/// Used for adequation, satisfaction, utilization fractions, fairness
/// indexes and every other quantity the paper constrains to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct UnitInterval(f64);

impl UnitInterval {
    /// The value `0`.
    pub const ZERO: UnitInterval = UnitInterval(0.0);
    /// The value `1`.
    pub const ONE: UnitInterval = UnitInterval(1.0);
    /// The value `0.5` (the paper's initial satisfaction, Table 2).
    pub const HALF: UnitInterval = UnitInterval(0.5);

    /// Creates a value, clamping the input into `[0, 1]`. Non-finite inputs
    /// are mapped to `0`.
    pub fn new(value: f64) -> Self {
        if value.is_finite() {
            UnitInterval(value.clamp(0.0, 1.0))
        } else {
            UnitInterval(0.0)
        }
    }

    /// Creates a value, returning an error when the input lies outside
    /// `[0, 1]` or is not finite.
    pub fn try_new(value: f64) -> Result<Self, SqlbError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(UnitInterval(value))
        } else {
            Err(SqlbError::OutOfRange {
                what: "unit-interval value",
                value,
                min: 0.0,
                max: 1.0,
            })
        }
    }

    /// Returns the inner `f64`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for UnitInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<UnitInterval> for f64 {
    fn from(v: UnitInterval) -> Self {
        v.0
    }
}

macro_rules! signed_unit_type {
    ($(#[$doc:meta])* $name:ident, $what:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The neutral value `0` (indifference).
            pub const NEUTRAL: $name = $name(0.0);
            /// The maximal value `1`.
            pub const MAX: $name = $name(1.0);
            /// The minimal value `-1`.
            pub const MIN: $name = $name(-1.0);

            /// Creates a value, clamping the input into `[-1, 1]`.
            /// Non-finite inputs are mapped to `0` (indifference).
            pub fn new(value: f64) -> Self {
                if value.is_finite() {
                    $name(value.clamp(-1.0, 1.0))
                } else {
                    $name(0.0)
                }
            }

            /// Creates a value, returning an error when the input lies
            /// outside `[-1, 1]` or is not finite.
            pub fn try_new(value: f64) -> Result<Self, SqlbError> {
                if value.is_finite() && (-1.0..=1.0).contains(&value) {
                    Ok($name(value))
                } else {
                    Err(SqlbError::OutOfRange {
                        what: $what,
                        value,
                        min: -1.0,
                        max: 1.0,
                    })
                }
            }

            /// Returns the inner `f64`.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Maps the value from `[-1, 1]` to `[0, 1]` via `(x + 1) / 2`,
            /// the transformation the satisfaction model applies before
            /// averaging (Equations 1–2, Definitions 4–5).
            #[inline]
            pub fn to_unit(self) -> UnitInterval {
                UnitInterval::new((self.0 + 1.0) / 2.0)
            }

            /// Returns `true` when the value is strictly positive, i.e. the
            /// participant intends to allocate/perform the query.
            #[inline]
            pub fn is_positive(self) -> bool {
                self.0 > 0.0
            }

            /// Returns `true` when the value is strictly negative.
            #[inline]
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:+.4}", self.0)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> Self {
                v.0
            }
        }
    };
}

signed_unit_type!(
    /// An intention value in `[-1, 1]` (Section 2).
    ///
    /// A consumer expresses its intention `ci_c(q, p)` for allocating query
    /// `q` to provider `p`; a provider expresses its intention `pi_p(q)` for
    /// performing `q`. A positive value means the participant wants the
    /// allocation, a negative one that it does not, zero is indifference.
    /// Note that expressing a negative intention does *not* allow a
    /// participant to refuse the query (footnote 2 of the paper).
    Intention,
    "intention"
);

signed_unit_type!(
    /// A preference value in `[-1, 1]`.
    ///
    /// Preferences are long-term, private inputs from which participants
    /// derive their (public) intentions: `prf_c(q, p)` for consumers and
    /// `prf_p(q)` for providers (Definitions 7 and 8).
    Preference,
    "preference"
);

signed_unit_type!(
    /// A reputation value in `[-1, 1]` as used by Definition 7 (`rep(p)`).
    Reputation,
    "reputation"
);

/// A satisfaction/adequation level in `[0, 1]` (Section 3).
///
/// This is a semantic alias distinguishing the Section 3 quantities from
/// arbitrary unit-interval values at API boundaries.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Satisfaction(UnitInterval);

impl Satisfaction {
    /// The paper's initial satisfaction (`iniSatisfaction = 0.5`, Table 2).
    pub const INITIAL: Satisfaction = Satisfaction(UnitInterval::HALF);

    /// Creates a satisfaction value, clamping into `[0, 1]`.
    pub fn new(value: f64) -> Self {
        Satisfaction(UnitInterval::new(value))
    }

    /// Creates a satisfaction value, validating the range.
    pub fn try_new(value: f64) -> Result<Self, SqlbError> {
        UnitInterval::try_new(value).map(Satisfaction)
    }

    /// Returns the inner `f64`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0.value()
    }
}

impl fmt::Display for Satisfaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Satisfaction> for f64 {
    fn from(v: Satisfaction) -> Self {
        v.value()
    }
}

impl From<UnitInterval> for Satisfaction {
    fn from(v: UnitInterval) -> Self {
        Satisfaction(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_interval_clamps() {
        assert_eq!(UnitInterval::new(-0.3).value(), 0.0);
        assert_eq!(UnitInterval::new(1.7).value(), 1.0);
        assert_eq!(UnitInterval::new(0.42).value(), 0.42);
        assert_eq!(UnitInterval::new(f64::NAN).value(), 0.0);
        assert_eq!(UnitInterval::new(f64::INFINITY).value(), 0.0);
    }

    #[test]
    fn unit_interval_try_new_rejects_out_of_range() {
        assert!(UnitInterval::try_new(0.0).is_ok());
        assert!(UnitInterval::try_new(1.0).is_ok());
        assert!(UnitInterval::try_new(-0.001).is_err());
        assert!(UnitInterval::try_new(1.001).is_err());
        assert!(UnitInterval::try_new(f64::NAN).is_err());
    }

    #[test]
    fn intention_clamps_and_validates() {
        assert_eq!(Intention::new(-3.0).value(), -1.0);
        assert_eq!(Intention::new(2.0).value(), 1.0);
        assert_eq!(Intention::new(0.25).value(), 0.25);
        assert!(Intention::try_new(-1.0).is_ok());
        assert!(Intention::try_new(1.0).is_ok());
        assert!(Intention::try_new(1.1).is_err());
        assert!(Intention::try_new(f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn intention_to_unit_maps_endpoints() {
        assert_eq!(Intention::MIN.to_unit().value(), 0.0);
        assert_eq!(Intention::MAX.to_unit().value(), 1.0);
        assert_eq!(Intention::NEUTRAL.to_unit().value(), 0.5);
    }

    #[test]
    fn intention_sign_predicates() {
        assert!(Intention::new(0.1).is_positive());
        assert!(!Intention::new(0.0).is_positive());
        assert!(Intention::new(-0.1).is_negative());
        assert!(!Intention::new(0.0).is_negative());
    }

    #[test]
    fn satisfaction_initial_is_half() {
        assert_eq!(Satisfaction::INITIAL.value(), 0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(UnitInterval::new(0.5).to_string(), "0.5000");
        assert_eq!(Intention::new(-0.25).to_string(), "-0.2500");
        assert_eq!(Intention::new(0.25).to_string(), "+0.2500");
    }

    proptest! {
        #[test]
        fn prop_unit_interval_always_in_range(x in proptest::num::f64::ANY) {
            let v = UnitInterval::new(x).value();
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn prop_intention_always_in_range(x in proptest::num::f64::ANY) {
            let v = Intention::new(x).value();
            prop_assert!((-1.0..=1.0).contains(&v));
        }

        #[test]
        fn prop_to_unit_in_range(x in -1.0f64..=1.0) {
            let u = Intention::new(x).to_unit().value();
            prop_assert!((0.0..=1.0).contains(&u));
            prop_assert!((u - (x + 1.0) / 2.0).abs() < 1e-12);
        }

        #[test]
        fn prop_try_new_accepts_valid(x in -1.0f64..=1.0) {
            prop_assert!(Preference::try_new(x).is_ok());
            prop_assert!(Reputation::try_new(x).is_ok());
        }
    }
}
