//! Identifiers for the entities of the mediation system.
//!
//! The paper's system consists of a mediator `m`, a set of consumers `C` and
//! a set of providers `P` (Section 2). Entities are identified by small
//! integer identifiers so that they can be used as direct indexes into dense
//! per-participant tables (preference matrices, satisfaction trackers, ...).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates a new identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value of the identifier.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, suitable for indexing
            /// dense per-entity tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> Self {
                id.0
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> Self {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a consumer `c ∈ C`.
    ConsumerId,
    "c"
);
id_type!(
    /// Identifier of a provider `p ∈ P`.
    ProviderId,
    "p"
);
id_type!(
    /// Identifier of a query issued by a consumer.
    QueryId,
    "q"
);
id_type!(
    /// Identifier of a mediator. The paper's evaluation uses a single
    /// mediator, but the model allows several competing mediators.
    MediatorId,
    "m"
);

/// An entity that can participate in the system either as a consumer, a
/// provider, or both ("These sets are not necessarily disjoint, an entity may
/// play more than one role", Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParticipantId {
    /// A consumer participant.
    Consumer(ConsumerId),
    /// A provider participant.
    Provider(ProviderId),
}

impl ParticipantId {
    /// Returns the consumer identifier if this participant is a consumer.
    pub fn as_consumer(self) -> Option<ConsumerId> {
        match self {
            ParticipantId::Consumer(c) => Some(c),
            ParticipantId::Provider(_) => None,
        }
    }

    /// Returns the provider identifier if this participant is a provider.
    pub fn as_provider(self) -> Option<ProviderId> {
        match self {
            ParticipantId::Provider(p) => Some(p),
            ParticipantId::Consumer(_) => None,
        }
    }

    /// Returns `true` when this participant is a consumer.
    pub fn is_consumer(self) -> bool {
        matches!(self, ParticipantId::Consumer(_))
    }

    /// Returns `true` when this participant is a provider.
    pub fn is_provider(self) -> bool {
        matches!(self, ParticipantId::Provider(_))
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParticipantId::Consumer(c) => write!(f, "{c}"),
            ParticipantId::Provider(p) => write!(f, "{p}"),
        }
    }
}

impl From<ConsumerId> for ParticipantId {
    fn from(c: ConsumerId) -> Self {
        ParticipantId::Consumer(c)
    }
}

impl From<ProviderId> for ParticipantId {
    fn from(p: ProviderId) -> Self {
        ParticipantId::Provider(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ConsumerId::new(3).to_string(), "c3");
        assert_eq!(ProviderId::new(7).to_string(), "p7");
        assert_eq!(QueryId::new(42).to_string(), "q42");
        assert_eq!(MediatorId::new(0).to_string(), "m0");
    }

    #[test]
    fn ids_round_trip_through_u32() {
        let p = ProviderId::from(9u32);
        assert_eq!(u32::from(p), 9);
        assert_eq!(p.raw(), 9);
        assert_eq!(p.index(), 9usize);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ProviderId::new(1));
        set.insert(ProviderId::new(1));
        set.insert(ProviderId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ProviderId::new(1) < ProviderId::new(2));
    }

    #[test]
    fn participant_id_role_accessors() {
        let c: ParticipantId = ConsumerId::new(5).into();
        let p: ParticipantId = ProviderId::new(6).into();
        assert!(c.is_consumer());
        assert!(!c.is_provider());
        assert_eq!(c.as_consumer(), Some(ConsumerId::new(5)));
        assert_eq!(c.as_provider(), None);
        assert!(p.is_provider());
        assert_eq!(p.as_provider(), Some(ProviderId::new(6)));
        assert_eq!(p.as_consumer(), None);
        assert_eq!(c.to_string(), "c5");
        assert_eq!(p.to_string(), "p6");
    }
}
