//! Stride-compacted participant tables for sharded mediators.
//!
//! [`ParticipantTable`](crate::ParticipantTable) indexes a dense slot
//! vector by the *global* raw id. That is the right layout for the
//! engine's population tables (one copy, fully occupied), but it is
//! catastrophic for per-shard mediator state: the shard router partitions
//! participants round-robin (`slot % K`), so every one of `K` shards
//! would grow a vector spanning the *whole* id space to hold its `1/K`
//! share — `O(K × P)` mostly-empty slots, which at 10⁶ participants and
//! thousands of shards is gigabytes of zeroed pages and the page-fault
//! storm that comes with touching them.
//!
//! [`StridedTable`] and [`StridedColumn`] keep the O(1) arithmetic
//! indexing but store only a shard's own residue class: a participant
//! with raw id `slot` such that `slot ≡ offset (mod stride)` lives at
//! dense local index `(slot - offset) / stride`, so a shard's table is
//! `O(P / K)` no matter how many shards exist. Ids outside the residue
//! class — providers migrated in from another shard, consumer views
//! absorbed from peer digests — land in a small sorted overflow vector
//! (binary-searched, merged into iteration by id). With `stride == 1`
//! the mapping is the identity and the types behave exactly like their
//! dense counterparts, which is what keeps mono-mediator runs
//! bit-identical.
//!
//! Iteration is in ascending *global* id order in every case: the main
//! storage is ascending by construction (`slot = offset + i · stride` is
//! monotonic in `i`), the overflow is kept sorted, and the two are
//! merged — so digest exports and any order-sensitive float accumulation
//! see the same sequence a dense table would produce.

use std::iter::Peekable;
use std::marker::PhantomData;

use crate::table::StableId;

/// Merges two iterators that are each ascending in their `usize` slot,
/// preserving global ascending order. The slot sets are disjoint by
/// construction (an off-stride id can never equal an on-stride id), so
/// ties need no policy.
struct MergeBySlot<A: Iterator, B: Iterator> {
    a: Peekable<A>,
    b: Peekable<B>,
}

/// `log2(stride)` for power-of-two strides, zero otherwise. Zero doubles
/// as the "use hardware division" sentinel: stride 1 short-circuits
/// before the shift is consulted, and no other power of two maps to it.
fn pow2_shift(stride: usize) -> u32 {
    if stride.is_power_of_two() {
        stride.trailing_zeros()
    } else {
        0
    }
}

impl<T, A, B> Iterator for MergeBySlot<A, B>
where
    A: Iterator<Item = (usize, T)>,
    B: Iterator<Item = (usize, T)>,
{
    type Item = (usize, T);

    fn next(&mut self) -> Option<Self::Item> {
        match (self.a.peek(), self.b.peek()) {
            (Some(&(sa, _)), Some(&(sb, _))) => {
                if sa <= sb {
                    self.a.next()
                } else {
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

/// A map from stable identifiers to per-participant state, compacted for
/// a single residue class `slot ≡ offset (mod stride)`.
///
/// See the [module documentation](self) for the layout rationale. The
/// API mirrors the subset of [`ParticipantTable`](crate::ParticipantTable)
/// the mediator state needs; `stride == 1` (the [`StridedTable::new`]
/// default) is the identity mapping and matches the dense table's
/// behavior exactly.
#[derive(Debug, Clone)]
pub struct StridedTable<K: StableId, V> {
    offset: usize,
    stride: usize,
    /// `log2(stride)` when the stride is a power of two, so the per-access
    /// residue test and local-index computation strength-reduce to mask
    /// and shift (hardware division by a runtime stride costs tens of
    /// cycles and sits on the allocation hot path — one `local` per
    /// candidate per query). Zero means "not a power of two"; stride 1
    /// never consults it (the identity short-circuit fires first).
    shift: u32,
    /// Dense storage of the residue class: local index `i` holds the
    /// participant with raw id `offset + i · stride`.
    slots: Vec<Option<V>>,
    /// Off-stride entries (migrated providers, absorbed foreign consumer
    /// views), sorted by raw id. Expected to stay small — it only grows
    /// through explicit cross-shard traffic, never through a shard's own
    /// allocation work.
    overflow: Vec<(usize, V)>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: StableId, V> StridedTable<K, V> {
    /// Creates an empty identity-mapped table (`offset 0, stride 1`).
    pub fn new() -> Self {
        StridedTable::with_stride(0, 1)
    }

    /// Creates an empty table for the residue class
    /// `slot ≡ offset (mod stride)`.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero or `offset >= stride` — such a
    /// mapping has no dense image.
    pub fn with_stride(offset: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        assert!(
            offset < stride,
            "offset {offset} out of range for stride {stride}"
        );
        StridedTable {
            offset,
            stride,
            shift: pow2_shift(stride),
            slots: Vec::new(),
            overflow: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// The residue-class parameters `(offset, stride)` of this table.
    pub fn stride_params(&self) -> (usize, usize) {
        (self.offset, self.stride)
    }

    /// Number of present entries (main storage plus overflow).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of entries living in the off-stride overflow.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// The dense local index of `slot`, or `None` when the id lies
    /// outside this table's residue class (it then belongs in the
    /// overflow).
    #[inline]
    fn local(&self, slot: usize) -> Option<usize> {
        // `stride == 1` is the mono-mediator / dense case: keep it a
        // single predictable branch on the allocation hot path.
        if self.stride == 1 {
            return Some(slot);
        }
        let d = slot.checked_sub(self.offset)?;
        if self.shift != 0 {
            if d & (self.stride - 1) == 0 {
                Some(d >> self.shift)
            } else {
                None
            }
        } else if d % self.stride == 0 {
            Some(d / self.stride)
        } else {
            None
        }
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// The entry for `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => self.slots.get(i).and_then(Option::as_ref),
            None => self
                .overflow
                .binary_search_by_key(&slot, |entry| entry.0)
                .ok()
                .map(|i| &self.overflow[i].1),
        }
    }

    /// Mutable access to the entry for `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => self.slots.get_mut(i).and_then(Option::as_mut),
            None => match self.overflow.binary_search_by_key(&slot, |entry| entry.0) {
                Ok(i) => Some(&mut self.overflow[i].1),
                Err(_) => None,
            },
        }
    }

    /// Returns a mutable reference to the entry for `key`, inserting the
    /// result of `default` first if absent. The on-stride path is a
    /// single probe of the dense local storage — this sits on the
    /// allocation hot path (one call per candidate per query).
    pub fn or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => {
                if i >= self.slots.len() {
                    self.slots.resize_with(i + 1, || None);
                }
                let entry = &mut self.slots[i];
                if entry.is_none() {
                    *entry = Some(default());
                    self.len += 1;
                }
                entry.as_mut().expect("entry just ensured")
            }
            None => match self.overflow.binary_search_by_key(&slot, |entry| entry.0) {
                Ok(i) => &mut self.overflow[i].1,
                Err(i) => {
                    self.overflow.insert(i, (slot, default()));
                    self.len += 1;
                    &mut self.overflow[i].1
                }
            },
        }
    }

    /// Inserts an entry, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => {
                if i >= self.slots.len() {
                    self.slots.resize_with(i + 1, || None);
                }
                let previous = self.slots[i].replace(value);
                if previous.is_none() {
                    self.len += 1;
                }
                previous
            }
            None => match self.overflow.binary_search_by_key(&slot, |entry| entry.0) {
                Ok(i) => Some(std::mem::replace(&mut self.overflow[i].1, value)),
                Err(i) => {
                    self.overflow.insert(i, (slot, value));
                    self.len += 1;
                    None
                }
            },
        }
    }

    /// Removes the entry for `key`, keeping every other key valid.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let slot = key.slot();
        let removed = match self.local(slot) {
            Some(i) => self.slots.get_mut(i).and_then(Option::take),
            None => match self.overflow.binary_search_by_key(&slot, |entry| entry.0) {
                Ok(i) => Some(self.overflow.remove(i).1),
                Err(_) => None,
            },
        };
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Removes every entry, keeping the residue-class parameters.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.overflow.clear();
        self.len = 0;
    }

    /// Iterates over `(id, value)` pairs in ascending *global* id order,
    /// merging the dense residue-class storage with the overflow.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        let offset = self.offset;
        let stride = self.stride;
        let main = self
            .slots
            .iter()
            .enumerate()
            .filter_map(move |(i, value)| value.as_ref().map(|v| (offset + i * stride, v)));
        let over = self.overflow.iter().map(|(slot, value)| (*slot, value));
        MergeBySlot {
            a: main.peekable(),
            b: over.peekable(),
        }
        .map(|(slot, value)| (K::from_slot(slot), value))
    }

    /// Iterates over present identifiers in ascending global order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over present values in ascending global id order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: StableId, V> Default for StridedTable<K, V> {
    fn default() -> Self {
        StridedTable::new()
    }
}

/// A stride-compacted struct-of-arrays column of plain values: the
/// [`SlotColumn`](crate::SlotColumn) layout (bare `T` per slot, a `fill`
/// value standing in for "absent") over the residue-class mapping of
/// [`StridedTable`]. Off-stride writes land in a sorted overflow;
/// off-stride reads that miss it return the fill, exactly like a
/// never-written dense slot.
#[derive(Debug, Clone)]
pub struct StridedColumn<K: StableId, T> {
    offset: usize,
    stride: usize,
    /// See [`StridedTable::shift`]: mask-and-shift strength reduction for
    /// power-of-two strides, zero when the stride needs real division.
    shift: u32,
    values: Vec<T>,
    overflow: Vec<(usize, T)>,
    fill: T,
    _key: PhantomData<K>,
}

impl<K: StableId, T: Copy> StridedColumn<K, T> {
    /// Creates an empty identity-mapped column whose absent slots read as
    /// `fill`.
    pub fn new(fill: T) -> Self {
        StridedColumn::with_stride(fill, 0, 1)
    }

    /// Creates an empty column for the residue class
    /// `slot ≡ offset (mod stride)`.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero or `offset >= stride`.
    pub fn with_stride(fill: T, offset: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        assert!(
            offset < stride,
            "offset {offset} out of range for stride {stride}"
        );
        StridedColumn {
            offset,
            stride,
            shift: pow2_shift(stride),
            values: Vec::new(),
            overflow: Vec::new(),
            fill,
            _key: PhantomData,
        }
    }

    /// The fill value standing in for absent slots.
    pub fn fill_value(&self) -> T {
        self.fill
    }

    /// Number of materialized dense slots (diagnostic).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no dense slot has been materialized.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[inline]
    fn local(&self, slot: usize) -> Option<usize> {
        if self.stride == 1 {
            return Some(slot);
        }
        let d = slot.checked_sub(self.offset)?;
        if self.shift != 0 {
            if d & (self.stride - 1) == 0 {
                Some(d >> self.shift)
            } else {
                None
            }
        } else if d % self.stride == 0 {
            Some(d / self.stride)
        } else {
            None
        }
    }

    /// The value for `key` (the fill value when the slot was never
    /// written). On-stride this is one bounds-checked load — the batch
    /// scoring gather leans on it.
    #[inline]
    pub fn get(&self, key: K) -> T {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => self.values.get(i).copied().unwrap_or(self.fill),
            None => self
                .overflow
                .binary_search_by_key(&slot, |entry| entry.0)
                .map(|i| self.overflow[i].1)
                .unwrap_or(self.fill),
        }
    }

    /// Writes the value for `key`, growing the dense column with fill
    /// values when an on-stride slot lies past the end.
    pub fn set(&mut self, key: K, value: T) {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => {
                if i >= self.values.len() {
                    self.values.resize(i + 1, self.fill);
                }
                self.values[i] = value;
            }
            None => match self.overflow.binary_search_by_key(&slot, |entry| entry.0) {
                Ok(i) => self.overflow[i].1 = value,
                Err(i) => self.overflow.insert(i, (slot, value)),
            },
        }
    }

    /// Resets `key` to the fill value. Off-stride entries are dropped
    /// from the overflow (a read then finds the fill, same as dense).
    pub fn reset(&mut self, key: K) {
        let slot = key.slot();
        match self.local(slot) {
            Some(i) => {
                if i < self.values.len() {
                    self.values[i] = self.fill;
                }
            }
            None => {
                if let Ok(i) = self.overflow.binary_search_by_key(&slot, |entry| entry.0) {
                    self.overflow.remove(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProviderId;
    use crate::ParticipantTable;

    fn p(raw: u32) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn stride_one_matches_the_dense_table() {
        let mut strided: StridedTable<ProviderId, u32> = StridedTable::new();
        let mut dense: ParticipantTable<ProviderId, u32> = ParticipantTable::new();
        for (id, v) in [(3u32, 30), (0, 0), (7, 70), (3, 31)] {
            assert_eq!(strided.insert(p(id), v), dense.insert(p(id), v));
        }
        strided.remove(p(0));
        dense.remove(p(0));
        assert_eq!(strided.len(), dense.len());
        let a: Vec<(u32, u32)> = strided.iter().map(|(k, v)| (k.raw(), *v)).collect();
        let b: Vec<(u32, u32)> = dense.iter().map(|(k, v)| (k.raw(), *v)).collect();
        assert_eq!(a, b);
        assert_eq!(strided.overflow_len(), 0, "stride 1 never overflows");
    }

    #[test]
    fn residue_class_members_live_in_dense_storage() {
        // Shard 1 of 4: owns ids 1, 5, 9, ...
        let mut table: StridedTable<ProviderId, u32> = StridedTable::with_stride(1, 4);
        table.insert(p(1), 10);
        table.insert(p(9), 90);
        *table.or_insert_with(p(5), || 0) += 50;
        assert_eq!(table.len(), 3);
        assert_eq!(table.overflow_len(), 0);
        assert_eq!(table.get(p(9)), Some(&90));
        assert_eq!(table.get(p(2)), None, "off-stride id, never inserted");
        assert_eq!(table.get(p(13)), None, "on-stride id, never inserted");
        assert_eq!(table.stride_params(), (1, 4));
        // Dense storage spans exactly the residue class: id 9 is local
        // index 2, so three slots — not ten.
        assert!(table.len() <= 3);
    }

    #[test]
    fn off_stride_ids_overflow_and_merge_into_ascending_iteration() {
        let mut table: StridedTable<ProviderId, u32> = StridedTable::with_stride(1, 4);
        table.insert(p(5), 50);
        table.insert(p(2), 20); // off-stride: a migrated-in participant
        table.insert(p(1), 10);
        table.insert(p(8), 80); // off-stride
        assert_eq!(table.overflow_len(), 2);
        assert_eq!(table.len(), 4);
        assert!(table.contains(p(2)));
        assert_eq!(table.get(p(8)), Some(&80));
        *table.get_mut(p(2)).unwrap() += 1;
        let pairs: Vec<(u32, u32)> = table.iter().map(|(k, v)| (k.raw(), *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 21), (5, 50), (8, 80)]);
        assert_eq!(
            table.keys().map(ProviderId::raw).collect::<Vec<_>>(),
            [1, 2, 5, 8]
        );
        assert_eq!(
            table.values().copied().collect::<Vec<_>>(),
            [10, 21, 50, 80]
        );

        assert_eq!(table.remove(p(2)), Some(21));
        assert_eq!(table.remove(p(2)), None);
        assert_eq!(table.overflow_len(), 1);
        assert_eq!(table.len(), 3);

        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.overflow_len(), 0);
        assert_eq!(table.stride_params(), (1, 4), "clear keeps the mapping");
    }

    #[test]
    fn or_insert_with_is_lazy_and_idempotent_on_both_paths() {
        let mut table: StridedTable<ProviderId, Vec<u32>> = StridedTable::with_stride(0, 2);
        table.or_insert_with(p(4), Vec::new).push(1); // on-stride
        table
            .or_insert_with(p(4), || panic!("must not run"))
            .push(2);
        table.or_insert_with(p(3), Vec::new).push(7); // off-stride
        table
            .or_insert_with(p(3), || panic!("must not run"))
            .push(8);
        assert_eq!(table.get(p(4)), Some(&vec![1, 2]));
        assert_eq!(table.get(p(3)), Some(&vec![7, 8]));
    }

    #[test]
    fn insert_replaces_on_both_paths() {
        let mut table: StridedTable<ProviderId, u32> = StridedTable::with_stride(0, 3);
        assert_eq!(table.insert(p(3), 1), None);
        assert_eq!(table.insert(p(3), 2), Some(1));
        assert_eq!(table.insert(p(4), 5), None); // off-stride
        assert_eq!(table.insert(p(4), 6), Some(5));
        assert_eq!(table.len(), 2);
    }

    #[test]
    #[should_panic(expected = "offset 4 out of range")]
    fn offset_must_lie_below_stride() {
        let _: StridedTable<ProviderId, u32> = StridedTable::with_stride(4, 4);
    }

    #[test]
    fn strided_column_reads_fill_everywhere_until_written() {
        let mut column: StridedColumn<ProviderId, f64> = StridedColumn::with_stride(0.5, 2, 3);
        assert!(column.is_empty());
        assert_eq!(column.get(p(2)), 0.5);
        assert_eq!(column.get(p(4)), 0.5, "off-stride reads fill too");
        assert_eq!(column.fill_value(), 0.5);

        column.set(p(8), 0.9); // on-stride: local index 2
        assert_eq!(column.len(), 3, "grown to the residue-class index");
        assert_eq!(column.get(p(8)), 0.9);
        assert_eq!(column.get(p(5)), 0.5, "intermediate on-stride slot");

        column.set(p(4), 0.7); // off-stride: overflow
        assert_eq!(column.get(p(4)), 0.7);
        column.set(p(4), 0.8);
        assert_eq!(column.get(p(4)), 0.8);
        column.reset(p(4));
        assert_eq!(column.get(p(4)), 0.5);
        column.reset(p(8));
        assert_eq!(column.get(p(8)), 0.5);
        column.reset(p(100)); // never written: a no-op on both paths
        assert_eq!(column.get(p(100)), 0.5);
    }

    #[test]
    fn strided_column_stride_one_matches_dense_semantics() {
        let mut column: StridedColumn<ProviderId, f64> = StridedColumn::new(0.25);
        column.set(p(3), 1.0);
        assert_eq!(column.len(), 4);
        assert_eq!(column.get(p(3)), 1.0);
        assert_eq!(column.get(p(0)), 0.25);
        assert_eq!(column.get(p(9)), 0.25);
    }
}
