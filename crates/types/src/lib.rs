//! # sqlb-types
//!
//! Shared vocabulary types for the SQLB query allocation framework, the
//! reproduction of *"SQLB: A Query Allocation Framework for Autonomous
//! Consumers and Providers"* (Quiané-Ruiz, Lamarre, Valduriez — VLDB 2007).
//!
//! This crate defines the identifiers, the query model `q = <c, d, n>`
//! (Section 2 of the paper), the bounded numeric domains used throughout the
//! framework (intentions, preferences, reputation, satisfaction), capacity
//! and utilization types, virtual time, and the crate-spanning error type.
//!
//! All heavier logic (satisfaction bookkeeping, intention functions, the
//! allocation algorithms themselves) lives in the dedicated crates that build
//! on top of these types.

#![deny(missing_docs)]

pub mod capacity;
pub mod error;
pub mod ids;
pub mod query;
pub mod strided;
pub mod table;
pub mod time;
pub mod values;

pub use capacity::{Capacity, Utilization, WorkUnits};
pub use error::{SqlbError, SqlbResult};
pub use ids::{ConsumerId, MediatorId, ParticipantId, ProviderId, QueryId};
pub use query::{Query, QueryClass, QueryDescription};
pub use strided::{StridedColumn, StridedTable};
pub use table::{ParticipantTable, SlotColumn, StableId};
pub use time::{SimDuration, SimTime};
pub use values::{Intention, Preference, Reputation, Satisfaction, UnitInterval};
