//! Stable-identifier participant tables.
//!
//! Simulation and mediation state used to live in parallel `Vec`s indexed
//! by a participant's *initial position*, which silently corrupts once
//! autonomous departures shrink the population: positions shift, but
//! identifiers do not. [`ParticipantTable`] replaces that pattern with a
//! map keyed by the participant's stable identifier ([`ConsumerId`],
//! [`ProviderId`], ...). Lookups stay O(1) (a dense slot vector indexed by
//! the raw id), iteration is always in ascending id order (so seeded runs
//! stay deterministic), and removing a participant never invalidates the
//! keys of the others.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

use crate::ids::{ConsumerId, MediatorId, ProviderId, QueryId};

/// A copyable identifier with a stable, dense raw index.
pub trait StableId: Copy + Eq + fmt::Display {
    /// The raw index of the identifier.
    fn slot(self) -> usize;

    /// Rebuilds the identifier from a raw index.
    fn from_slot(slot: usize) -> Self;
}

macro_rules! stable_id_impls {
    ($($t:ty),*) => {$(
        impl StableId for $t {
            #[inline]
            fn slot(self) -> usize {
                self.index()
            }

            #[inline]
            fn from_slot(slot: usize) -> Self {
                Self::new(slot as u32)
            }
        }
    )*};
}

stable_id_impls!(ConsumerId, ProviderId, MediatorId, QueryId);

/// A map from stable participant identifiers to per-participant state.
///
/// Designed for the small, dense id spaces of the simulator (participants
/// are numbered from 0 at generation time): storage is a slot vector, so
/// `get`/`insert`/`remove` are O(1) and iteration is ordered by id.
#[derive(Debug, Clone)]
pub struct ParticipantTable<K: StableId, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: StableId, V> ParticipantTable<K, V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        ParticipantTable {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Builds a table from values whose identifiers are their positions
    /// (the layout population generators produce).
    pub fn from_values(values: impl IntoIterator<Item = V>) -> Self {
        let slots: Vec<Option<V>> = values.into_iter().map(Some).collect();
        let len = slots.len();
        ParticipantTable {
            slots,
            len,
            _key: PhantomData,
        }
    }

    /// Builds a table with `n` entries produced by `f(id)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(K) -> V) -> Self {
        ParticipantTable::from_values((0..n).map(|i| f(K::from_slot(i))))
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: K) -> bool {
        self.slots.get(key.slot()).is_some_and(Option::is_some)
    }

    /// The entry for `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.slot()).and_then(Option::as_ref)
    }

    /// Mutable access to the entry for `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots.get_mut(key.slot()).and_then(Option::as_mut)
    }

    /// Disjoint mutable access to the entries of `keys`, which must be in
    /// strictly ascending id order (the order candidate lists are kept
    /// in). Yields one `(key, &mut value)` pair per *present* key — absent
    /// keys are skipped — in O(len(keys)), without walking the rest of the
    /// table. The borrows are simultaneous (each yielded reference splits
    /// the remaining slots), which is what lets a caller hand out one
    /// `&mut` participant per task of a batch.
    pub fn iter_mut_of<'a>(
        &'a mut self,
        keys: &'a [K],
    ) -> impl Iterator<Item = (K, &'a mut V)> + 'a {
        debug_assert!(
            keys.windows(2).all(|w| w[0].slot() < w[1].slot()),
            "iter_mut_of requires strictly ascending keys"
        );
        let mut rest: &'a mut [Option<V>] = &mut self.slots;
        let mut consumed = 0usize;
        keys.iter().filter_map(move |&key| {
            // Out-of-order (or duplicate) keys would alias; they are
            // rejected by the debug assertion above and skipped here.
            let offset = key.slot().checked_sub(consumed)?;
            if offset >= rest.len() {
                return None;
            }
            let taken = std::mem::take(&mut rest);
            let (head, tail) = taken.split_at_mut(offset + 1);
            rest = tail;
            consumed = key.slot() + 1;
            head[offset].as_mut().map(|value| (key, value))
        })
    }

    /// Inserts an entry, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let slot = key.slot();
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        let previous = self.slots[slot].replace(value);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Returns a mutable reference to the entry for `key`, inserting the
    /// result of `default` first if absent. A single slot probe — this
    /// sits on the allocation hot path (one call per candidate per
    /// query), where the contains/insert/get_mut sequence it replaced
    /// cost three.
    pub fn or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let slot = key.slot();
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        let entry = &mut self.slots[slot];
        if entry.is_none() {
            *entry = Some(default());
            self.len += 1;
        }
        entry.as_mut().expect("entry just ensured")
    }

    /// Removes the entry for `key`, keeping every other key valid.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let removed = self.slots.get_mut(key.slot()).and_then(Option::take);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Iterates over `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, value)| value.as_ref().map(|v| (K::from_slot(slot), v)))
    }

    /// Iterates over `(id, value)` pairs with mutable values.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> + '_ {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, value)| value.as_mut().map(|v| (K::from_slot(slot), v)))
    }

    /// Iterates over present identifiers in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over present values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates over present values mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.iter_mut().map(|(_, v)| v)
    }

    /// Keeps only the entries for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(K, &mut V) -> bool) {
        for slot in 0..self.slots.len() {
            let drop_it = match self.slots[slot].as_mut() {
                Some(value) => !keep(K::from_slot(slot), value),
                None => false,
            };
            if drop_it {
                self.slots[slot] = None;
                self.len -= 1;
            }
        }
    }
}

impl<K: StableId, V> Default for ParticipantTable<K, V> {
    fn default() -> Self {
        ParticipantTable::new()
    }
}

impl<K: StableId, V: PartialEq> PartialEq for ParticipantTable<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<K: StableId, V> Index<K> for ParticipantTable<K, V> {
    type Output = V;

    fn index(&self, key: K) -> &V {
        match self.get(key) {
            Some(value) => value,
            None => panic!("no participant {key} in table"),
        }
    }
}

impl<K: StableId, V> IndexMut<K> for ParticipantTable<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        match self.get_mut(key) {
            Some(value) => value,
            None => panic!("no participant {key} in table"),
        }
    }
}

impl<K: StableId, V> FromIterator<(K, V)> for ParticipantTable<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut table = ParticipantTable::new();
        for (key, value) in iter {
            table.insert(key, value);
        }
        table
    }
}

/// A dense struct-of-arrays column of plain per-participant values,
/// indexed by a stable identifier's slot.
///
/// Where [`ParticipantTable`] stores `Option<V>` per slot (presence is
/// part of the state), a `SlotColumn` stores a bare `T` per slot with a
/// designated `fill` value standing in for "absent": reads past the end
/// or of never-written slots return `fill`, and resetting a slot writes
/// `fill` back. Dropping the `Option` halves the footprint for small `T`
/// and keeps the column a contiguous `&[T]` that batch kernels can stream
/// over — the struct-of-arrays layout the million-participant hot path
/// wants, with the id→slot translation confined to this type.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotColumn<K: StableId, T> {
    values: Vec<T>,
    fill: T,
    _key: PhantomData<K>,
}

impl<K: StableId, T: Copy> SlotColumn<K, T> {
    /// Creates an empty column whose absent slots read as `fill`.
    pub fn new(fill: T) -> Self {
        SlotColumn {
            values: Vec::new(),
            fill,
            _key: PhantomData,
        }
    }

    /// Creates a column of `n` slots, each initialized to `fill`.
    pub fn with_len(n: usize, fill: T) -> Self {
        SlotColumn {
            values: vec![fill; n],
            fill,
            _key: PhantomData,
        }
    }

    /// Creates a column of `n` slots initialized by `f(id)`.
    pub fn from_fn(n: usize, fill: T, mut f: impl FnMut(K) -> T) -> Self {
        SlotColumn {
            values: (0..n).map(|i| f(K::from_slot(i))).collect(),
            fill,
            _key: PhantomData,
        }
    }

    /// Number of materialized slots (reads past this return the fill).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no slot has been materialized.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The fill value standing in for absent slots.
    pub fn fill_value(&self) -> T {
        self.fill
    }

    /// The value for `key` (the fill value when the slot was never
    /// written).
    pub fn get(&self, key: K) -> T {
        self.values.get(key.slot()).copied().unwrap_or(self.fill)
    }

    /// Writes the value for `key`, growing the column with fill values
    /// when the slot lies past the end.
    pub fn set(&mut self, key: K, value: T) {
        *self.slot_mut(key) = value;
    }

    /// Resets `key` to the fill value.
    pub fn reset(&mut self, key: K) {
        let fill = self.fill;
        self.set(key, fill);
    }

    /// Mutable access to the slot for `key`, growing the column as
    /// needed.
    pub fn slot_mut(&mut self, key: K) -> &mut T {
        let slot = key.slot();
        if slot >= self.values.len() {
            self.values.resize(slot + 1, self.fill);
        }
        &mut self.values[slot]
    }

    /// The contiguous backing column, for batch kernels that stream over
    /// slots directly.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }
}

impl<K: StableId, T: Copy> Index<K> for SlotColumn<K, T> {
    type Output = T;

    fn index(&self, key: K) -> &T {
        self.values.get(key.slot()).unwrap_or(&self.fill)
    }
}

impl<K: StableId, T: Copy> IndexMut<K> for SlotColumn<K, T> {
    fn index_mut(&mut self, key: K) -> &mut T {
        self.slot_mut(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(raw: u32) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn keys_survive_removals() {
        let mut table: ParticipantTable<ProviderId, &str> =
            ParticipantTable::from_values(["a", "b", "c", "d"]);
        assert_eq!(table.len(), 4);
        assert_eq!(table.remove(p(1)), Some("b"));
        // The keys of the remaining entries are untouched — this is the
        // property the positional-Vec layout violated.
        assert_eq!(table.get(p(2)), Some(&"c"));
        assert_eq!(table.get(p(3)), Some(&"d"));
        assert_eq!(table.get(p(1)), None);
        assert_eq!(table.len(), 3);
        assert_eq!(table.remove(p(1)), None);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn iter_mut_of_hands_out_disjoint_borrows_for_ascending_keys() {
        let mut table: ParticipantTable<ProviderId, u32> =
            ParticipantTable::from_values([10, 11, 12, 13, 14]);
        table.remove(p(2));

        // Simultaneous &mut to a selection of entries (the absent key is
        // skipped), collected to prove the borrows coexist.
        let keys = [p(0), p(2), p(3)];
        let selected: Vec<(ProviderId, &mut u32)> = table.iter_mut_of(&keys).collect();
        assert_eq!(selected.len(), 2, "the removed key is skipped");
        for (key, value) in selected {
            *value += key.raw();
        }
        assert_eq!(table.get(p(0)), Some(&10));
        assert_eq!(table.get(p(3)), Some(&16));
        assert_eq!(table.get(p(1)), Some(&11), "unselected entries untouched");

        // Keys past the end of the table are skipped, not panicked on.
        assert_eq!(table.iter_mut_of(&[p(99)]).count(), 0);
        // An empty selection is an empty iterator.
        assert_eq!(table.iter_mut_of(&[]).count(), 0);
    }

    #[test]
    fn slot_column_reads_fill_for_absent_slots_and_grows_on_write() {
        let mut column: SlotColumn<ProviderId, f64> = SlotColumn::new(0.5);
        assert!(column.is_empty());
        assert_eq!(column.get(p(7)), 0.5, "absent slots read the fill");
        assert_eq!(column[p(7)], 0.5);

        column.set(p(3), 0.9);
        assert_eq!(column.len(), 4, "grown exactly to the written slot");
        assert_eq!(column.get(p(3)), 0.9);
        assert_eq!(column.get(p(1)), 0.5, "intermediate slots hold the fill");
        assert_eq!(column.get(p(100)), 0.5, "past-the-end still reads fill");

        column[p(3)] += 0.1;
        assert_eq!(column.get(p(3)), 1.0);
        column.reset(p(3));
        assert_eq!(column.get(p(3)), 0.5);
        assert_eq!(column.as_slice(), &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(column.fill_value(), 0.5);
    }

    #[test]
    fn slot_column_constructors_materialize_dense_slots() {
        let column: SlotColumn<ProviderId, u32> = SlotColumn::with_len(3, 0);
        assert_eq!(column.as_slice(), &[0, 0, 0]);

        let column: SlotColumn<ProviderId, u32> =
            SlotColumn::from_fn(4, 0, |id: ProviderId| id.raw() * 2);
        assert_eq!(column.as_slice(), &[0, 2, 4, 6]);
        assert_eq!(column.len(), 4);

        let mut via_index: SlotColumn<ProviderId, u32> = SlotColumn::new(0);
        via_index[p(2)] = 9;
        assert_eq!(via_index.as_slice(), &[0, 0, 9]);
    }

    #[test]
    fn iteration_is_ordered_by_id() {
        let mut table: ParticipantTable<ConsumerId, u32> = ParticipantTable::new();
        table.insert(ConsumerId::new(5), 50);
        table.insert(ConsumerId::new(1), 10);
        table.insert(ConsumerId::new(3), 30);
        let pairs: Vec<(u32, u32)> = table.iter().map(|(k, v)| (k.raw(), *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50)]);
        assert_eq!(
            table.keys().map(ConsumerId::raw).collect::<Vec<_>>(),
            [1, 3, 5]
        );
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut table: ParticipantTable<ProviderId, u32> = ParticipantTable::new();
        assert_eq!(table.insert(p(2), 1), None);
        assert_eq!(table.insert(p(2), 2), Some(1));
        assert_eq!(table.len(), 1);
        assert_eq!(table[p(2)], 2);
        table[p(2)] += 5;
        assert_eq!(table[p(2)], 7);
    }

    #[test]
    fn or_insert_with_is_lazy_and_idempotent() {
        let mut table: ParticipantTable<ConsumerId, Vec<u32>> = ParticipantTable::new();
        table.or_insert_with(ConsumerId::new(0), Vec::new).push(1);
        table
            .or_insert_with(ConsumerId::new(0), || panic!("must not run"))
            .push(2);
        assert_eq!(table[ConsumerId::new(0)], vec![1, 2]);
    }

    #[test]
    fn retain_drops_matching_entries() {
        let mut table: ParticipantTable<ProviderId, u32> =
            ParticipantTable::from_values([0, 1, 2, 3, 4]);
        table.retain(|_, v| v.is_multiple_of(2));
        assert_eq!(table.len(), 3);
        assert_eq!(
            table.keys().map(ProviderId::raw).collect::<Vec<_>>(),
            [0, 2, 4]
        );
    }

    #[test]
    #[should_panic(expected = "no participant p9")]
    fn indexing_a_missing_key_panics_with_the_id() {
        let table: ParticipantTable<ProviderId, u32> = ParticipantTable::from_values([1]);
        let _ = table[p(9)];
    }

    #[test]
    fn equality_compares_contents() {
        let a: ParticipantTable<ProviderId, u32> = ParticipantTable::from_values([1, 2]);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.remove(p(0));
        assert_ne!(a, b);
    }

    #[test]
    fn from_fn_assigns_sequential_ids() {
        let table: ParticipantTable<ConsumerId, u32> =
            ParticipantTable::from_fn(3, |id: ConsumerId| id.raw() * 10);
        assert_eq!(table[ConsumerId::new(2)], 20);
        assert_eq!(table.len(), 3);
    }
}
