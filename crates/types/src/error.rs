//! The error type shared by the SQLB crates.

use std::fmt;

use crate::ids::{ConsumerId, ProviderId, QueryId};

/// Convenient result alias using [`SqlbError`].
pub type SqlbResult<T> = Result<T, SqlbError>;

/// Errors produced by the SQLB framework crates.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlbError {
    /// A numeric value fell outside its documented domain.
    OutOfRange {
        /// Human-readable description of the value.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Lower bound of the accepted domain.
        min: f64,
        /// Upper bound of the accepted domain.
        max: f64,
    },
    /// A query was malformed (e.g. `q.n = 0`).
    InvalidQuery {
        /// The offending query.
        query: QueryId,
        /// Why the query was rejected.
        reason: &'static str,
    },
    /// A query was not feasible: the matchmaker found no provider able to
    /// treat it. The paper only considers feasible queries; the framework
    /// surfaces this condition explicitly instead.
    NoProviderAvailable {
        /// The query that could not be allocated.
        query: QueryId,
    },
    /// A consumer identifier is unknown to the component that received it.
    UnknownConsumer(ConsumerId),
    /// A provider identifier is unknown to the component that received it.
    UnknownProvider(ProviderId),
    /// A participant attempted an operation after having left the system.
    ParticipantDeparted {
        /// Which participant departed (display form, e.g. `"p12"`).
        participant: String,
    },
    /// A configuration value is inconsistent (e.g. class fractions that do
    /// not sum to one).
    InvalidConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
    /// The mediation runtime failed to collect intentions before its
    /// timeout and no fallback was permitted.
    MediationTimeout {
        /// The query whose mediation timed out.
        query: QueryId,
    },
    /// A communication channel between agents was closed unexpectedly.
    ChannelClosed {
        /// Description of the endpoint that disappeared.
        endpoint: &'static str,
    },
}

impl fmt::Display for SqlbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlbError::OutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} out of range: {value} not in [{min}, {max}]"),
            SqlbError::InvalidQuery { query, reason } => {
                write!(f, "invalid query {query}: {reason}")
            }
            SqlbError::NoProviderAvailable { query } => {
                write!(f, "no provider available for query {query}")
            }
            SqlbError::UnknownConsumer(c) => write!(f, "unknown consumer {c}"),
            SqlbError::UnknownProvider(p) => write!(f, "unknown provider {p}"),
            SqlbError::ParticipantDeparted { participant } => {
                write!(f, "participant {participant} has departed from the system")
            }
            SqlbError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SqlbError::MediationTimeout { query } => {
                write!(f, "mediation timed out while allocating query {query}")
            }
            SqlbError::ChannelClosed { endpoint } => {
                write!(f, "communication channel closed: {endpoint}")
            }
        }
    }
}

impl std::error::Error for SqlbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = SqlbError::OutOfRange {
            what: "intention",
            value: 2.0,
            min: -1.0,
            max: 1.0,
        };
        assert!(e.to_string().contains("intention"));
        assert!(e.to_string().contains("2"));

        let e = SqlbError::NoProviderAvailable {
            query: QueryId::new(7),
        };
        assert!(e.to_string().contains("q7"));

        let e = SqlbError::UnknownProvider(ProviderId::new(3));
        assert!(e.to_string().contains("p3"));

        let e = SqlbError::InvalidConfig {
            reason: "fractions must sum to 1".into(),
        };
        assert!(e.to_string().contains("sum to 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<SqlbError>();
    }
}
