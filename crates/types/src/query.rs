//! The query model of Section 2.
//!
//! A query is a triple `q = <c, d, n>` where `q.c` identifies the consumer
//! that issued it, `q.d` describes the task to be done (used only by the
//! matchmaking procedure) and `q.n ∈ N*` is the number of providers to which
//! the consumer wishes to allocate its query.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::capacity::WorkUnits;
use crate::error::SqlbError;
use crate::ids::{ConsumerId, QueryId};
use crate::time::SimTime;

/// The class of a query in the paper's workload model.
///
/// The evaluation generates "two classes of queries that consume,
/// respectively, 130 and 150 treatment units at the high-capacity providers"
/// (Section 6.1). The enum is open-ended through [`QueryClass::Custom`] so
/// that other workloads can be expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// The paper's light query class (130 treatment units).
    Light,
    /// The paper's heavy query class (150 treatment units).
    Heavy,
    /// A custom query class identified by an application-defined tag.
    Custom(u16),
}

impl QueryClass {
    /// Treatment cost of the paper's light class, in work units.
    pub const LIGHT_COST: f64 = 130.0;
    /// Treatment cost of the paper's heavy class, in work units.
    pub const HEAVY_COST: f64 = 150.0;

    /// Returns the default treatment cost of this class in work units.
    ///
    /// Custom classes default to the mean of the two paper classes; callers
    /// that use custom classes normally carry their own cost in the
    /// [`QueryDescription`].
    pub fn default_cost(self) -> WorkUnits {
        match self {
            QueryClass::Light => WorkUnits::new(Self::LIGHT_COST),
            QueryClass::Heavy => WorkUnits::new(Self::HEAVY_COST),
            QueryClass::Custom(_) => WorkUnits::new((Self::LIGHT_COST + Self::HEAVY_COST) / 2.0),
        }
    }

    /// Index used to address per-class tables (0 = light, 1 = heavy,
    /// 2 + tag for custom classes).
    pub fn index(self) -> usize {
        match self {
            QueryClass::Light => 0,
            QueryClass::Heavy => 1,
            QueryClass::Custom(tag) => 2 + tag as usize,
        }
    }
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryClass::Light => write!(f, "light"),
            QueryClass::Heavy => write!(f, "heavy"),
            QueryClass::Custom(tag) => write!(f, "custom({tag})"),
        }
    }
}

/// The description `q.d` of the task to be done.
///
/// The description is intended to be consumed by the matchmaking procedure
/// that computes the set `P_q` of providers able to treat the query
/// (Section 2). Our matchmaker (crate `sqlb-matchmaking`) matches on the
/// `topic` and on required `attributes`; the workload generator additionally
/// tags every description with its [`QueryClass`] and treatment cost so the
/// simulator can model processing times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryDescription {
    /// Topic of the task (e.g. `"shipping/international"`).
    pub topic: String,
    /// Attributes the provider must declare to be able to treat the task.
    pub attributes: Vec<String>,
    /// Workload class of the query.
    pub class: QueryClass,
    /// Treatment cost, in work units, on a reference (high-capacity)
    /// provider.
    pub cost: WorkUnits,
}

impl QueryDescription {
    /// Creates a description for one of the paper's workload classes with
    /// its default cost and an empty attribute list.
    pub fn for_class(class: QueryClass) -> Self {
        QueryDescription {
            topic: String::new(),
            attributes: Vec::new(),
            class,
            cost: class.default_cost(),
        }
    }

    /// Creates a description with an explicit topic.
    pub fn with_topic(topic: impl Into<String>, class: QueryClass) -> Self {
        QueryDescription {
            topic: topic.into(),
            attributes: Vec::new(),
            class,
            cost: class.default_cost(),
        }
    }

    /// Adds a required attribute and returns the updated description.
    pub fn attribute(mut self, attribute: impl Into<String>) -> Self {
        self.attributes.push(attribute.into());
        self
    }

    /// Overrides the treatment cost and returns the updated description.
    pub fn with_cost(mut self, cost: WorkUnits) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for QueryDescription {
    fn default() -> Self {
        QueryDescription::for_class(QueryClass::Light)
    }
}

/// A query `q = <c, d, n>` (Section 2), extended with an identifier and the
/// virtual time at which it was issued (needed to measure response times).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Unique identifier of this query.
    pub id: QueryId,
    /// `q.c`: the consumer that issued the query.
    pub consumer: ConsumerId,
    /// `q.d`: the description of the task to be done.
    pub description: QueryDescription,
    /// `q.n`: the number of providers to which the consumer wishes to
    /// allocate its query. Must be at least 1.
    pub n: u32,
    /// Virtual time at which the query entered the system.
    pub issued_at: SimTime,
}

impl Query {
    /// Builds a query, validating that `q.n ≥ 1`.
    pub fn new(
        id: QueryId,
        consumer: ConsumerId,
        description: QueryDescription,
        n: u32,
        issued_at: SimTime,
    ) -> Result<Self, SqlbError> {
        if n == 0 {
            return Err(SqlbError::InvalidQuery {
                query: id,
                reason: "q.n must be at least 1",
            });
        }
        Ok(Query {
            id,
            consumer,
            description,
            n,
            issued_at,
        })
    }

    /// Convenience constructor used pervasively by the simulator and tests:
    /// a single-result query (`q.n = 1`, the paper's evaluation setting) of
    /// the given class issued at `issued_at`.
    pub fn single(
        id: QueryId,
        consumer: ConsumerId,
        class: QueryClass,
        issued_at: SimTime,
    ) -> Self {
        Query {
            id,
            consumer,
            description: QueryDescription::for_class(class),
            n: 1,
            issued_at,
        }
    }

    /// Treatment cost of the query in work units (on a reference provider).
    pub fn cost(&self) -> WorkUnits {
        self.description.cost
    }

    /// Workload class of the query.
    pub fn class(&self) -> QueryClass {
        self.description.class
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<{}, {}, n={}>",
            self.id, self.consumer, self.description.class, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_class_costs_match_paper() {
        assert_eq!(QueryClass::Light.default_cost().value(), 130.0);
        assert_eq!(QueryClass::Heavy.default_cost().value(), 150.0);
    }

    #[test]
    fn query_class_indexes_are_distinct() {
        assert_eq!(QueryClass::Light.index(), 0);
        assert_eq!(QueryClass::Heavy.index(), 1);
        assert_eq!(QueryClass::Custom(0).index(), 2);
        assert_eq!(QueryClass::Custom(5).index(), 7);
    }

    #[test]
    fn query_rejects_zero_n() {
        let err = Query::new(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryDescription::default(),
            0,
            SimTime::ZERO,
        );
        assert!(err.is_err());
    }

    #[test]
    fn query_single_uses_n_of_one() {
        let q = Query::single(
            QueryId::new(1),
            ConsumerId::new(2),
            QueryClass::Heavy,
            SimTime::from_secs(3.0),
        );
        assert_eq!(q.n, 1);
        assert_eq!(q.class(), QueryClass::Heavy);
        assert_eq!(q.cost().value(), 150.0);
        assert_eq!(q.issued_at.as_secs(), 3.0);
    }

    #[test]
    fn description_builder() {
        let d = QueryDescription::with_topic("shipping/international", QueryClass::Light)
            .attribute("origin:FR")
            .attribute("destination:US")
            .with_cost(WorkUnits::new(200.0));
        assert_eq!(d.topic, "shipping/international");
        assert_eq!(d.attributes.len(), 2);
        assert_eq!(d.cost.value(), 200.0);
    }

    #[test]
    fn query_display_contains_parts() {
        let q = Query::single(
            QueryId::new(9),
            ConsumerId::new(4),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let s = q.to_string();
        assert!(s.contains("q9"));
        assert!(s.contains("c4"));
        assert!(s.contains("light"));
    }
}
