//! Capacity, work and utilization types.
//!
//! "Providers have a finite capacity that may denote e.g. the number of
//! computational units or physical resources they have. Thus, the
//! utilization of a provider `p` at time `t`, `Ut(p)`, denotes how much it is
//! loaded w.r.t. its capacity." (Section 2.)
//!
//! The simulator expresses query costs in abstract *work units* and provider
//! capacities in *work units per second*. With the paper's calibration a
//! high-capacity provider delivers 100 units/s, so the 130/150-unit query
//! classes take ≈1.3 s and ≈1.5 s on it (Section 6.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::error::SqlbError;
use crate::time::SimDuration;

/// An amount of work, in abstract treatment units (non-negative).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct WorkUnits(f64);

impl WorkUnits {
    /// Zero work.
    pub const ZERO: WorkUnits = WorkUnits(0.0);

    /// Creates an amount of work, clamping negative or non-finite values to
    /// zero.
    pub fn new(units: f64) -> Self {
        if units.is_finite() && units > 0.0 {
            WorkUnits(units)
        } else {
            WorkUnits(0.0)
        }
    }

    /// Returns the raw number of units.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if there is no work.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for WorkUnits {
    type Output = WorkUnits;
    fn add(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 + rhs.0)
    }
}

impl AddAssign for WorkUnits {
    fn add_assign(&mut self, rhs: WorkUnits) {
        self.0 += rhs.0;
    }
}

impl Sub for WorkUnits {
    type Output = WorkUnits;
    fn sub(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for WorkUnits {
    type Output = WorkUnits;
    fn mul(self, rhs: f64) -> WorkUnits {
        WorkUnits::new(self.0 * rhs)
    }
}

impl Sum for WorkUnits {
    fn sum<I: Iterator<Item = WorkUnits>>(iter: I) -> Self {
        iter.fold(WorkUnits::ZERO, |acc, w| acc + w)
    }
}

impl fmt::Display for WorkUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}u", self.0)
    }
}

/// A provider's capacity, in work units per second (strictly positive).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Capacity(f64);

impl Capacity {
    /// Creates a capacity, returning an error unless it is finite and
    /// strictly positive.
    pub fn try_new(units_per_sec: f64) -> Result<Self, SqlbError> {
        if units_per_sec.is_finite() && units_per_sec > 0.0 {
            Ok(Capacity(units_per_sec))
        } else {
            Err(SqlbError::OutOfRange {
                what: "capacity (units/s)",
                value: units_per_sec,
                min: f64::MIN_POSITIVE,
                max: f64::INFINITY,
            })
        }
    }

    /// Creates a capacity, panicking on invalid input. Intended for
    /// constants and tests.
    pub fn new(units_per_sec: f64) -> Self {
        Capacity::try_new(units_per_sec).expect("capacity must be finite and > 0")
    }

    /// Returns the capacity in units per second.
    #[inline]
    pub fn units_per_sec(self) -> f64 {
        self.0
    }

    /// Time needed to process `work` at this capacity, assuming the provider
    /// dedicates itself fully to that work.
    pub fn processing_time(self, work: WorkUnits) -> SimDuration {
        SimDuration::from_secs(work.value() / self.0)
    }

    /// Amount of work this capacity can absorb during `window`.
    pub fn work_over(self, window: SimDuration) -> WorkUnits {
        WorkUnits::new(self.0 * window.as_secs())
    }
}

impl Add for Capacity {
    type Output = Capacity;
    fn add(self, rhs: Capacity) -> Capacity {
        Capacity(self.0 + rhs.0)
    }
}

impl Mul<f64> for Capacity {
    type Output = Capacity;
    fn mul(self, rhs: f64) -> Capacity {
        Capacity::new(self.0 * rhs)
    }
}

impl Div for Capacity {
    type Output = f64;
    fn div(self, rhs: Capacity) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}u/s", self.0)
    }
}

/// A utilization level `Ut(p) ∈ [0, ∞)`.
///
/// A value of `1.0` means the provider receives exactly as much work as it
/// can process; values above `1.0` indicate overload. The paper's Figure 2
/// plots provider intentions for utilizations up to `2.0`, and the departure
/// rule of Section 6.3.2 triggers at `2.2 ×` the optimal utilization.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Utilization(f64);

impl Utilization {
    /// An idle provider.
    pub const IDLE: Utilization = Utilization(0.0);
    /// A fully-utilized provider.
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization, clamping negative or non-finite values to 0.
    pub fn new(value: f64) -> Self {
        if value.is_finite() && value > 0.0 {
            Utilization(value)
        } else {
            Utilization(0.0)
        }
    }

    /// Returns the raw utilization value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` when the provider is at or above full utilization
    /// (`Ut(p) ≥ 1`), the condition under which Definition 8 switches to its
    /// negative branch.
    #[inline]
    pub fn is_overloaded(self) -> bool {
        self.0 >= 1.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<Utilization> for f64 {
    fn from(u: Utilization) -> Self {
        u.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn work_units_clamp_negative() {
        assert_eq!(WorkUnits::new(-5.0).value(), 0.0);
        assert_eq!(WorkUnits::new(f64::NAN).value(), 0.0);
        assert!(WorkUnits::new(0.0).is_zero());
    }

    #[test]
    fn work_units_arithmetic() {
        let a = WorkUnits::new(130.0);
        let b = WorkUnits::new(150.0);
        assert_eq!((a + b).value(), 280.0);
        assert_eq!((b - a).value(), 20.0);
        assert_eq!((a - b).value(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.0).value(), 260.0);
        let total: WorkUnits = [a, b, a].into_iter().sum();
        assert_eq!(total.value(), 410.0);
    }

    #[test]
    fn capacity_rejects_non_positive() {
        assert!(Capacity::try_new(0.0).is_err());
        assert!(Capacity::try_new(-1.0).is_err());
        assert!(Capacity::try_new(f64::NAN).is_err());
        assert!(Capacity::try_new(100.0).is_ok());
    }

    #[test]
    fn paper_processing_times() {
        // "High-capacity providers perform both classes of queries in almost
        // 1.3 and 1.5 seconds" with a 100 units/s calibration.
        let high = Capacity::new(100.0);
        assert!((high.processing_time(WorkUnits::new(130.0)).as_secs() - 1.3).abs() < 1e-12);
        assert!((high.processing_time(WorkUnits::new(150.0)).as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_work_over_window() {
        let c = Capacity::new(50.0);
        assert_eq!(c.work_over(SimDuration::from_secs(60.0)).value(), 3000.0);
    }

    #[test]
    fn capacity_ratio() {
        let high = Capacity::new(100.0);
        let medium = Capacity::new(100.0 / 3.0);
        assert!((high / medium - 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_flags_overload() {
        assert!(!Utilization::new(0.99).is_overloaded());
        assert!(Utilization::FULL.is_overloaded());
        assert!(Utilization::new(2.2).is_overloaded());
        assert_eq!(Utilization::new(-3.0).value(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_work_units_never_negative(x in proptest::num::f64::ANY, y in proptest::num::f64::ANY) {
            let a = WorkUnits::new(x);
            let b = WorkUnits::new(y);
            prop_assert!(a.value() >= 0.0);
            prop_assert!((a + b).value() >= 0.0);
            prop_assert!((a - b).value() >= 0.0);
        }

        #[test]
        fn prop_processing_time_scales_inverse_with_capacity(
            work in 1.0f64..10_000.0,
            cap in 1.0f64..1_000.0,
        ) {
            let t = Capacity::new(cap).processing_time(WorkUnits::new(work)).as_secs();
            prop_assert!((t - work / cap).abs() < 1e-9);
        }
    }
}
