//! A public e-marketplace with autonomous participants (Sections 1.1 and
//! 6.3.2): providers and consumers are free to leave the mediator when they
//! are dissatisfied, starved or overutilized.
//!
//! The example runs the three paper methods at 80 % workload with all
//! departure reasons enabled and prints who survived — the experiment
//! behind Figure 5, Figure 6 and Table 3.
//!
//! Run with: `cargo run --release --example emarketplace_autonomy`

use sqlb::prelude::*;
use sqlb::sim::engine::run_simulation;

fn main() {
    let workload = 0.8;
    println!(
        "== Autonomous e-marketplace at {:.0}% of the total system capacity ==\n",
        workload * 100.0
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "method", "resp. (s)", "prov. left", "dissat.", "starved", "overutil.", "cons. left"
    );

    for method in [Method::Sqlb, Method::MariposaLike, Method::CapacityBased] {
        let config = SimulationConfig::scaled(40, 80, 1_200.0, 42)
            .with_workload(WorkloadPattern::Fixed(workload))
            .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL))
            .with_consumer_departures(ConsumerDepartureRule::default());
        let report = run_simulation(config, method).expect("simulation");

        let pct = |count: usize, total: usize| {
            if total == 0 {
                0.0
            } else {
                count as f64 / total as f64 * 100.0
            }
        };
        println!(
            "{:<16} {:>10.2} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            report.method,
            report.mean_response_time(),
            report.provider_departure_fraction() * 100.0,
            pct(
                report.departures_by_reason(DepartureReason::Dissatisfaction),
                report.initial_providers
            ),
            pct(
                report.departures_by_reason(DepartureReason::Starvation),
                report.initial_providers
            ),
            pct(
                report.departures_by_reason(DepartureReason::Overutilization),
                report.initial_providers
            ),
            report.consumer_departure_fraction() * 100.0,
        );
    }

    println!();
    println!("The paper's qualitative result: the baselines lose most of their providers");
    println!("(Capacity based through dissatisfaction, Mariposa-like through overutilization)");
    println!("and more than 20% of their consumers, while SQLB keeps the bulk of both.");
}
