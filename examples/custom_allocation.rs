//! Extending the framework with a custom allocation method.
//!
//! Anything implementing `AllocationMethod` plugs into the same mediator,
//! satisfaction model and simulator as SQLB itself. This example implements
//! a naive "consumer-first" method (always give the consumer its favourite
//! provider, ignore the providers entirely) and compares it against SQLB in
//! the simulator — showing why one-sided allocation is not enough.
//!
//! Run with: `cargo run --release --example custom_allocation`

use sqlb::prelude::*;
use sqlb::sim::engine::run_simulation;

/// Always allocates to the providers the *consumer* prefers, ignoring the
/// providers' intentions and utilization entirely.
#[derive(Debug, Default)]
struct ConsumerFirst;

impl AllocationMethod for ConsumerFirst {
    fn name(&self) -> &'static str {
        "Consumer-first"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        _view: &dyn MediatorView,
    ) -> Allocation {
        let ranking: Vec<RankedProvider> = rank_candidates(
            candidates
                .iter()
                .map(|c| RankedProvider {
                    provider: c.provider,
                    score: c.consumer_intention,
                })
                .collect(),
        );
        let n = (query.n as usize).min(ranking.len());
        Allocation {
            query: query.id,
            selected: ranking.iter().take(n).map(|r| r.provider).collect(),
            ranking,
        }
    }
}

fn main() {
    // First, use the custom method directly on a hand-built candidate set.
    let query = Query::single(
        QueryId::new(0),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    );
    let candidates = vec![
        CandidateInfo::new(ProviderId::new(0))
            .with_consumer_intention(0.9)
            .with_provider_intention(-0.8)
            .with_utilization(1.9),
        CandidateInfo::new(ProviderId::new(1))
            .with_consumer_intention(0.4)
            .with_provider_intention(0.9)
            .with_utilization(0.1),
    ];
    let mut custom = ConsumerFirst;
    let mut sqlb = SqlbAllocator::new();
    let state = MediatorState::paper_default();
    println!(
        "Consumer-first picks {} (the consumer's favourite, overloaded and unwilling).",
        custom.allocate(&query, &candidates, &state).selected[0]
    );
    println!(
        "SQLB picks          {} (wanted by both sides and idle).\n",
        sqlb.allocate(&query, &candidates, &state).selected[0]
    );

    // Then drive the custom method over a stream of queries, letting the
    // mediator-side satisfaction bookkeeping accumulate, to see where a
    // one-sided policy concentrates the load.
    let mut state = MediatorState::paper_default();
    let mut custom_wins_overloaded = 0u32;
    for i in 0..1_000u32 {
        let q = Query::single(
            QueryId::new(i),
            ConsumerId::new(i % 10),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let allocation = custom.allocate(&q, &candidates, &state);
        state.record_allocation(&q, &candidates, &allocation);
        if allocation.selected[0] == ProviderId::new(0) {
            custom_wins_overloaded += 1;
        }
    }
    println!(
        "Over 1000 queries, Consumer-first sent {custom_wins_overloaded} of them to the overloaded,\n\
         unwilling provider p0 — a recipe for p0's departure. SQLB would have spread them."
    );

    // Finally, the full simulator comparison with the built-in methods for
    // context.
    println!("\nFull simulation at 70% workload (built-in methods):");
    for method in [Method::Sqlb, Method::CapacityBased] {
        let config =
            SimulationConfig::scaled(16, 32, 400.0, 7).with_workload(WorkloadPattern::Fixed(0.7));
        let report = run_simulation(config, method).expect("simulation");
        println!(
            "  {:<16} mean response time {:>6.2}s, consumer allocation satisfaction {:>5.2}",
            report.method,
            report.mean_response_time(),
            report
                .series
                .consumer_allocation_satisfaction_mean
                .last_value()
                .unwrap_or(f64::NAN)
        );
    }
}
