//! Live mediation: Algorithm 1 running over real threads.
//!
//! The simulator drives agents synchronously for reproducibility, but the
//! framework also ships a concurrent mediation runtime
//! (`sqlb-mediation`) in which every consumer and provider runs on its own
//! thread and the mediator *forks* intention requests, *waits until* the
//! answers arrive *or a timeout* elapses, and then allocates and notifies
//! everyone — exactly the structure of Algorithm 1.
//!
//! Run with: `cargo run --example live_mediation`

use std::time::Duration;

use sqlb::mediation::{ConsumerEndpoint, MediationRuntime, ProviderEndpoint, RuntimeConfig};
use sqlb::prelude::*;

/// A consumer that likes providers with an even identifier.
struct ParityConsumer;

impl ConsumerEndpoint for ParityConsumer {
    fn intentions(&mut self, _query: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, if p.raw().is_multiple_of(2) { 0.8 } else { -0.4 }))
            .collect()
    }

    fn allocation_result(&mut self, query: QueryId, providers: &[ProviderId]) {
        let names: Vec<String> = providers.iter().map(|p| p.to_string()).collect();
        println!(
            "  consumer: query {query} allocated to [{}]",
            names.join(", ")
        );
    }
}

/// A provider whose eagerness decreases with its identifier, and that takes
/// some time to answer.
struct SlowProvider {
    id: u32,
    answer_delay: Duration,
}

impl ProviderEndpoint for SlowProvider {
    fn intention(&mut self, _query: &Query) -> f64 {
        std::thread::sleep(self.answer_delay);
        1.0 - self.id as f64 * 0.2
    }

    fn allocation_notice(&mut self, query: QueryId, selected: bool) {
        if selected {
            println!("  provider p{}: I will perform query {query}", self.id);
        }
    }
}

fn main() {
    let mut runtime = MediationRuntime::new(RuntimeConfig {
        timeout: Duration::from_millis(100),
        request_bids: false,
    });

    runtime.register_consumer(ConsumerId::new(0), ParityConsumer);
    for id in 0..5u32 {
        runtime.register_provider(
            ProviderId::new(id),
            SlowProvider {
                id,
                // Provider p4 is too slow and will miss the deadline: its
                // intention is read as indifference.
                answer_delay: if id == 4 {
                    Duration::from_millis(500)
                } else {
                    Duration::from_millis(5)
                },
            },
        );
    }

    let mut method = SqlbAllocator::new();
    let mut state = MediatorState::paper_default();
    let candidates: Vec<ProviderId> = (0..5).map(ProviderId::new).collect();

    println!(
        "== Live mediation over {} provider threads ==",
        candidates.len()
    );
    for i in 0..3u32 {
        let query = Query::single(
            QueryId::new(i),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let allocation = runtime.mediate(&query, &candidates, &mut method, &mut state);
        println!(
            "mediator: query {} -> {} (best score {:+.3})",
            query.id,
            allocation.selected[0],
            allocation
                .ranking
                .first()
                .map(|r| r.score)
                .unwrap_or(f64::NAN)
        );
        // Give the asynchronous notifications a moment to print.
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("\np4 never wins despite being eager: its answers miss the 100 ms deadline,");
    println!("so the mediator treats it as indifferent — Algorithm 1's timeout at work.");
}
