//! Live mediation: Algorithm 1 over real threads, then over the reactor.
//!
//! The simulator drives agents synchronously for reproducibility, but the
//! framework also ships two concurrent mediation backends
//! (`sqlb-mediation`): the legacy thread-per-participant runtime, in
//! which every consumer and provider runs on its own thread and the
//! mediator *forks* intention requests, *waits until* the answers arrive
//! *or a timeout* elapses — exactly the structure of Algorithm 1 — and
//! the asynchronous reactor, which drives the same endpoints as polled
//! state machines on one event loop over a virtual clock, scaling one
//! host to tens of thousands of endpoints.
//!
//! Run with: `cargo run --example live_mediation`

use std::time::Duration;

use sqlb::mediation::{
    AsyncMediator, ConsumerEndpoint, Latency, MediationRuntime, ProviderEndpoint, RuntimeConfig,
};
use sqlb::prelude::*;

/// A consumer that likes providers with an even identifier.
struct ParityConsumer;

impl ConsumerEndpoint for ParityConsumer {
    fn intentions(&mut self, _query: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, if p.raw().is_multiple_of(2) { 0.8 } else { -0.4 }))
            .collect()
    }

    fn allocation_result(&mut self, query: QueryId, providers: &[ProviderId]) {
        let names: Vec<String> = providers.iter().map(|p| p.to_string()).collect();
        println!(
            "  consumer: query {query} allocated to [{}]",
            names.join(", ")
        );
    }
}

/// A provider whose eagerness decreases with its identifier, and that takes
/// some time to answer.
struct SlowProvider {
    id: u32,
    answer_delay: Duration,
}

impl ProviderEndpoint for SlowProvider {
    fn intention(&mut self, _query: &Query) -> f64 {
        std::thread::sleep(self.answer_delay);
        1.0 - self.id as f64 * 0.2
    }

    fn allocation_notice(&mut self, query: QueryId, selected: bool) {
        if selected {
            println!("  provider p{}: I will perform query {query}", self.id);
        }
    }
}

fn main() {
    let mut runtime = MediationRuntime::new(RuntimeConfig {
        timeout: Duration::from_millis(100),
        request_bids: false,
    });

    runtime.register_consumer(ConsumerId::new(0), ParityConsumer);
    for id in 0..5u32 {
        runtime.register_provider(
            ProviderId::new(id),
            SlowProvider {
                id,
                // Provider p4 is too slow and will miss the deadline: its
                // intention is read as indifference.
                answer_delay: if id == 4 {
                    Duration::from_millis(500)
                } else {
                    Duration::from_millis(5)
                },
            },
        );
    }

    let mut method = SqlbAllocator::new();
    let mut state = MediatorState::paper_default();
    let candidates: Vec<ProviderId> = (0..5).map(ProviderId::new).collect();

    println!(
        "== Live mediation over {} provider threads ==",
        candidates.len()
    );
    for i in 0..3u32 {
        let query = Query::single(
            QueryId::new(i),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let allocation = runtime.mediate(&query, &candidates, &mut method, &mut state);
        println!(
            "mediator: query {} -> {} (best score {:+.3})",
            query.id,
            allocation.selected[0],
            allocation
                .ranking
                .first()
                .map(|r| r.score)
                .unwrap_or(f64::NAN)
        );
        // Give the asynchronous notifications a moment to print.
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("\np4 never wins despite being eager: its answers miss the 100 ms deadline,");
    println!("so the mediator treats it as indifferent — Algorithm 1's timeout at work.");

    // The same protocol on the asynchronous reactor: endpoints declare
    // their latency instead of sleeping, the event loop advances a
    // virtual clock, and the whole round costs microseconds of wall time
    // no matter the timeout.
    let mut reactor = AsyncMediator::new(RuntimeConfig {
        timeout: Duration::from_millis(100),
        request_bids: false,
    });
    reactor.register_consumer(ConsumerId::new(0), ParityConsumer);
    for id in 0..5u32 {
        reactor.register_provider(
            ProviderId::new(id),
            ModelledProvider {
                id,
                latency: if id == 4 {
                    Latency::Never // partitioned: degrades at the deadline
                } else {
                    Latency::After(Duration::from_millis(5))
                },
            },
        );
    }
    println!("\n== The same mediation on the reactor (virtual time) ==");
    let query = Query::single(
        QueryId::new(100),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    );
    let allocation = reactor.mediate(&query, &candidates, &mut method, &mut state);
    let round = reactor.reactor().last_round();
    println!(
        "mediator: query {} -> {} ({} answered, {} timed out, virtual round {:?})",
        query.id, allocation.selected[0], round.answered, round.timed_out, round.virtual_elapsed,
    );
    println!("p4's silence was detected at exactly the 100 ms virtual deadline,");
    println!("without any thread ever sleeping.");
}

/// A provider whose eagerness decreases with its identifier and whose
/// reply latency is *modelled* (reactor) rather than slept (threads).
struct ModelledProvider {
    id: u32,
    latency: Latency,
}

impl ProviderEndpoint for ModelledProvider {
    fn intention(&mut self, _query: &Query) -> f64 {
        1.0 - self.id as f64 * 0.2
    }

    fn latency(&mut self) -> Latency {
        self.latency
    }

    fn allocation_notice(&mut self, query: QueryId, selected: bool) {
        if selected {
            println!("  provider p{}: I will perform query {query}", self.id);
        }
    }
}
