//! The paper's motivating example (Section 1.1, Table 1): the eWine company
//! asks an e-marketplace mediator for the two best international-shipping
//! providers.
//!
//! Five providers can treat the query. Table 1 gives, for each of them,
//! whether the provider wants the query, whether eWine wants the provider,
//! and the provider's available capacity:
//!
//! | provider | provider's intention | consumer's intention | available capacity |
//! |---|---|---|---|
//! | p1 | yes | no  | 0.85 |
//! | p2 | no  | yes | 0.57 |
//! | p3 | yes | no  | 0.22 |
//! | p4 | no  | yes | 0.15 |
//! | p5 | yes | yes | 0.00 |
//!
//! A pure capacity-based allocator picks p1 and p2 — one provider eWine
//! distrusts and one provider that does not want the job. SQLB instead
//! weighs both sides' intentions and picks p5 first.
//!
//! Run with: `cargo run --example ewine_scenario`

use sqlb::prelude::*;

fn table1_candidates() -> Vec<CandidateInfo> {
    // Binary intentions as in the example (footnote 1 of the paper), and
    // utilization = 1 - available capacity.
    let rows = [
        (1, 1.0, -1.0, 0.85),
        (2, -1.0, 1.0, 0.57),
        (3, 1.0, -1.0, 0.22),
        (4, -1.0, 1.0, 0.15),
        (5, 1.0, 1.0, 0.00),
    ];
    rows.iter()
        .map(|&(id, provider_intention, consumer_intention, available)| {
            CandidateInfo::new(ProviderId::new(id))
                .with_provider_intention(provider_intention)
                .with_consumer_intention(consumer_intention)
                .with_utilization(1.0 - available)
        })
        .collect()
}

fn main() {
    // eWine wants proposals from its two best providers: q.n = 2.
    let mut query = Query::new(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryDescription::with_topic("shipping/international", QueryClass::Light)
            .attribute("origin:FR")
            .attribute("destination:US"),
        2,
        SimTime::ZERO,
    )
    .expect("valid query");
    query.n = 2;

    let candidates = table1_candidates();
    let state = MediatorState::paper_default();

    println!("eWine's query: {query}\n");
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "prov.", "prov. int.", "cons. int.", "avail. cap."
    );
    for c in &candidates {
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>12.2}",
            c.provider.to_string(),
            c.provider_intention,
            c.consumer_intention,
            1.0 - c.utilization
        );
    }

    let methods: Vec<(&str, Box<dyn AllocationMethod>)> = vec![
        ("SQLB", Box::new(SqlbAllocator::new())),
        ("Capacity based", Box::new(CapacityBased::new())),
    ];

    println!();
    for (label, mut method) in methods {
        let allocation = method.allocate(&query, &candidates, &state);
        let picks: Vec<String> = allocation.selected.iter().map(|p| p.to_string()).collect();
        println!("{label:<16} selects: {}", picks.join(", "));
    }

    println!();
    println!("Capacity based hands the query to the most available providers (p4, p2),");
    println!("even though p2 does not want it — both p2 and eWine may leave the system.");
    println!("SQLB's score trades the consumer's intentions for the providers' intentions");
    println!("and selects p5 (wanted by both sides) ahead of the mutually unwanted options.");
}
