//! Quickstart: score one query with SQLB, then run a small simulated
//! e-marketplace and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use sqlb::prelude::*;
use sqlb::sim::engine::run_simulation;

fn main() {
    // -----------------------------------------------------------------
    // 1. Allocate a single query by hand.
    // -----------------------------------------------------------------
    // A consumer issues a query and wants one provider (q.n = 1).
    let query = Query::single(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    );

    // What the mediation step gathered about the candidates: the
    // consumer's intention towards each provider (Definition 7) and each
    // provider's intention towards the query (Definition 8).
    let candidates = vec![
        CandidateInfo::new(ProviderId::new(0))
            .with_consumer_intention(0.9)
            .with_provider_intention(-0.5), // popular provider that is not interested
        CandidateInfo::new(ProviderId::new(1))
            .with_consumer_intention(0.5)
            .with_provider_intention(0.8), // both sides are reasonably happy
        CandidateInfo::new(ProviderId::new(2))
            .with_consumer_intention(-0.7)
            .with_provider_intention(0.9), // eager provider the consumer distrusts
    ];

    let mut sqlb = SqlbAllocator::new();
    let mut state = MediatorState::paper_default();
    let allocation = sqlb.allocate(&query, &candidates, &state);
    state.record_allocation(&query, &candidates, &allocation);

    println!("== Single allocation ==");
    for ranked in &allocation.ranking {
        println!(
            "  {}  score {:+.3}{}",
            ranked.provider,
            ranked.score,
            if allocation.is_selected(ranked.provider) {
                "   <- selected"
            } else {
                ""
            }
        );
    }

    // -----------------------------------------------------------------
    // 2. Run a small simulated system (the paper's evaluation substrate)
    //    and compare SQLB with the Capacity based baseline.
    // -----------------------------------------------------------------
    println!("\n== 20-consumer / 40-provider simulation at 70% workload ==");
    for method in [Method::Sqlb, Method::CapacityBased, Method::MariposaLike] {
        let config =
            SimulationConfig::scaled(20, 40, 600.0, 42).with_workload(WorkloadPattern::Fixed(0.7));
        let report = run_simulation(config, method).expect("simulation");
        println!(
            "  {:<16} response time {:>6.2}s   provider satisfaction {:.3}   consumer alloc. satisfaction {:.3}   load fairness {:.3}",
            report.method,
            report.mean_response_time(),
            report
                .series
                .provider_satisfaction_preference_mean
                .last_value()
                .unwrap_or(f64::NAN),
            report
                .series
                .consumer_allocation_satisfaction_mean
                .last_value()
                .unwrap_or(f64::NAN),
            report.series.utilization_fairness.mean_after(100.0),
        );
    }
    println!("\nSQLB keeps participants satisfied at a modest response-time cost;");
    println!("Capacity based balances load best but ignores what anyone wants.");
}
