//! Keeps `ARCHITECTURE.md`'s `[[path]]` / `[[path:line]]` pointers
//! checkable: every referenced path must exist in the repository and
//! every referenced line must lie inside its file. A refactor that
//! deletes or substantially shrinks a cited file therefore fails the
//! test suite until the document is updated.

use std::path::{Path, PathBuf};

/// One `[[…]]` pointer extracted from the document.
#[derive(Debug)]
struct Pointer {
    path: String,
    line: Option<usize>,
    /// 1-based line of ARCHITECTURE.md the pointer appears on, for
    /// actionable failure messages.
    at: usize,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn extract_pointers(document: &str) -> Vec<Pointer> {
    let mut pointers = Vec::new();
    for (i, line) in document.lines().enumerate() {
        let mut rest = line;
        while let Some(start) = rest.find("[[") {
            let Some(len) = rest[start + 2..].find("]]") else {
                break;
            };
            let inner = &rest[start + 2..start + 2 + len];
            rest = &rest[start + 2 + len + 2..];
            let (path, cited_line) = match inner.rsplit_once(':') {
                Some((path, line)) => match line.parse::<usize>() {
                    Ok(line) => (path, Some(line)),
                    // A colon without a trailing number is part of the
                    // path (not used today, but be liberal).
                    Err(_) => (inner, None),
                },
                None => (inner, None),
            };
            pointers.push(Pointer {
                path: path.to_string(),
                line: cited_line,
                at: i + 1,
            });
        }
    }
    pointers
}

#[test]
fn architecture_doc_pointers_resolve() {
    let root = repo_root();
    let document = std::fs::read_to_string(root.join("ARCHITECTURE.md"))
        .expect("ARCHITECTURE.md exists at the repository root");
    let pointers = extract_pointers(&document);

    assert!(
        pointers.len() >= 40,
        "ARCHITECTURE.md should be densely cross-referenced; \
         found only {} [[…]] pointers",
        pointers.len()
    );

    let mut failures = Vec::new();
    for pointer in &pointers {
        // Paths are repository-relative and must stay inside the repo.
        if pointer.path.contains("..") || Path::new(&pointer.path).is_absolute() {
            failures.push(format!(
                "ARCHITECTURE.md:{}: pointer [[{}]] must be repo-relative",
                pointer.at, pointer.path
            ));
            continue;
        }
        let target = root.join(&pointer.path);
        if !target.exists() {
            failures.push(format!(
                "ARCHITECTURE.md:{}: [[{}]] does not exist",
                pointer.at, pointer.path
            ));
            continue;
        }
        if let Some(cited) = pointer.line {
            if !target.is_file() {
                failures.push(format!(
                    "ARCHITECTURE.md:{}: [[{}:{}]] cites a line of a non-file",
                    pointer.at, pointer.path, cited
                ));
                continue;
            }
            let lines = std::fs::read_to_string(&target)
                .map(|content| content.lines().count())
                .unwrap_or(0);
            if cited == 0 || cited > lines {
                failures.push(format!(
                    "ARCHITECTURE.md:{}: [[{}:{}]] is out of range ({} has {} lines) — \
                     update the pointer after refactoring the cited file",
                    pointer.at, pointer.path, cited, pointer.path, lines
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "stale ARCHITECTURE.md pointers:\n{}",
        failures.join("\n")
    );

    // The contract of the document: at least one pointer into every
    // workspace crate, so no crate's section can silently disappear.
    for crate_dir in [
        "crates/types",
        "crates/metrics",
        "crates/obs",
        "crates/satisfaction",
        "crates/matchmaking",
        "crates/reputation",
        "crates/core",
        "crates/baselines",
        "crates/agents",
        "crates/mediation",
        "crates/simulator",
        "crates/bench",
    ] {
        assert!(
            pointers.iter().any(|p| p.path.starts_with(crate_dir)),
            "ARCHITECTURE.md has no pointer into {crate_dir}"
        );
    }
}

#[test]
fn pointer_extraction_parses_both_forms() {
    let pointers =
        extract_pointers("see [[a/b.rs:12]] and [[c/d.md]] or both [[e.rs:3]] [[f.rs]] here");
    assert_eq!(pointers.len(), 4);
    assert_eq!(pointers[0].path, "a/b.rs");
    assert_eq!(pointers[0].line, Some(12));
    assert_eq!(pointers[1].path, "c/d.md");
    assert_eq!(pointers[1].line, None);
    assert_eq!(pointers[3].path, "f.rs");
}
