//! Cross-backend contract of the mediation layer.
//!
//! Two properties are pinned here:
//!
//! 1. **Timeout-to-indifference is exact.** A participant endpoint that
//!    never answers degrades to indifference at *exactly* the configured
//!    deadline on the reactor (whose clock is virtual, so "exactly" is
//!    bit-for-bit), and before a generous real deadline on the threaded
//!    backend.
//! 2. **Backends are interchangeable.** Same-seed simulation runs produce
//!    identical migration logs and bit-identical report digests whether
//!    the engine gathers intentions inline, over the legacy
//!    thread-per-participant runtime, or through the asynchronous
//!    reactor. (The `report_digest --backends` binary checks the same
//!    property over the full 15-configuration matrix.)

use std::time::Duration;

use sqlb::mediation::{AsyncMediator, ConsumerEndpoint, Latency, ProviderEndpoint, RuntimeConfig};
use sqlb::sim::engine::run_simulation;
use sqlb::sim::{MediationMode, Method, RoutingPolicyKind, SimulationConfig, WorkloadPattern};
use sqlb::types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

struct FlatConsumer(f64);

impl ConsumerEndpoint for FlatConsumer {
    fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates.iter().map(|&p| (p, self.0)).collect()
    }
}

struct LaggyProvider {
    value: f64,
    latency: Latency,
}

impl ProviderEndpoint for LaggyProvider {
    fn intention(&mut self, _q: &Query) -> f64 {
        self.value
    }
    fn latency(&mut self) -> Latency {
        self.latency
    }
}

fn query(id: u32) -> Query {
    Query::single(
        QueryId::new(id),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    )
}

#[test]
fn a_silent_endpoint_degrades_to_indifference_at_exactly_the_deadline() {
    let timeout = Duration::from_millis(120);
    let mut mediator = AsyncMediator::new(RuntimeConfig {
        timeout,
        request_bids: false,
    });
    mediator.register_consumer(ConsumerId::new(0), FlatConsumer(0.9));
    mediator.register_provider(
        ProviderId::new(0),
        LaggyProvider {
            value: 0.7,
            latency: Latency::Immediate,
        },
    );
    mediator.register_provider(
        ProviderId::new(1),
        LaggyProvider {
            value: 1.0,
            latency: Latency::Never,
        },
    );

    let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
    let infos = mediator.gather(&query(1), &candidates);
    assert_eq!(infos[0].provider_intention, 0.7);
    assert_eq!(infos[0].consumer_intention, 0.9);
    assert_eq!(
        infos[1].provider_intention, 0.0,
        "the silent provider is read as indifferent"
    );
    assert_eq!(
        infos[1].consumer_intention, 0.9,
        "the consumer's view of the silent provider still arrives"
    );

    let round = mediator.reactor().last_round();
    assert_eq!(round.timed_out, 1);
    assert!(round.hit_deadline);
    assert_eq!(
        round.virtual_elapsed, timeout,
        "degradation happens at exactly the configured deadline, \
         not a poll interval later"
    );

    // A latency one nanosecond past the deadline also degrades; one at
    // the deadline does not — the boundary is exact.
    let mut late = AsyncMediator::new(RuntimeConfig {
        timeout,
        request_bids: false,
    });
    late.register_consumer(ConsumerId::new(0), FlatConsumer(0.5));
    late.register_provider(
        ProviderId::new(0),
        LaggyProvider {
            value: 0.8,
            latency: Latency::After(timeout + Duration::from_nanos(1)),
        },
    );
    late.register_provider(
        ProviderId::new(1),
        LaggyProvider {
            value: 0.6,
            latency: Latency::After(timeout),
        },
    );
    let infos = late.gather(&query(2), &[ProviderId::new(0), ProviderId::new(1)]);
    assert_eq!(infos[0].provider_intention, 0.0, "1 ns past the deadline");
    assert_eq!(infos[1].provider_intention, 0.6, "exactly at the deadline");
}

/// 14 consumers on 4 shards (deliberately not a multiple, so static
/// routing is skewed) with migration on: the scenario where the mediation
/// layer feeds routing, rebalancing and the migration log.
fn migration_config(seed: u64) -> SimulationConfig {
    SimulationConfig::scaled(14, 24, 400.0, seed)
        .with_workload(WorkloadPattern::Fixed(0.7))
        .with_mediator_shards(4)
        .with_routing(RoutingPolicyKind::LeastLoaded)
        .with_migration(true)
}

#[test]
fn backends_agree_on_migration_logs_and_digests() {
    let inline = run_simulation(migration_config(11), Method::Sqlb).unwrap();
    let threaded = run_simulation(
        migration_config(11).with_mediation(MediationMode::Threaded),
        Method::Sqlb,
    )
    .unwrap();
    let reactor = run_simulation(
        migration_config(11).with_mediation(MediationMode::Reactor),
        Method::Sqlb,
    )
    .unwrap();

    // The run must be interesting enough to discriminate: queries were
    // mediated on every shard and providers actually migrated.
    assert!(inline.issued_queries > 300);
    assert!(inline.rebalance_rounds > 0);
    assert!(
        !inline.migrations.is_empty(),
        "the skew must trigger at least one migration"
    );

    // Identical migration logs, entry for entry…
    assert_eq!(inline.migrations, threaded.migrations);
    assert_eq!(inline.migrations, reactor.migrations);
    assert_eq!(inline.shard_allocations, threaded.shard_allocations);
    assert_eq!(inline.shard_allocations, reactor.shard_allocations);

    // …and bit-identical reports.
    assert_eq!(inline.digest(), threaded.digest());
    assert_eq!(inline.digest(), reactor.digest());
}

#[test]
fn scoring_thread_count_never_changes_the_digest_on_any_backend() {
    // Deterministic intra-shard parallelism: the batch Definition 7/8
    // scoring kernel chunks candidates over a fixed partition, so its
    // result must be bit-identical at any thread count — on every
    // mediation backend. 80 providers over K=2 shards gives 40-candidate
    // sets per query, comfortably past the parallel kernel's engagement
    // threshold, so the parallel code path genuinely runs.
    let base = SimulationConfig::scaled(16, 80, 300.0, 29)
        .with_workload(WorkloadPattern::Fixed(0.6))
        .with_mediator_shards(2);
    let reference = run_simulation(base, Method::Sqlb).unwrap();
    assert!(
        reference.issued_queries > 200,
        "the run must be interesting enough to discriminate"
    );
    let reference_digest = reference.digest();
    for mode in [
        MediationMode::Inline,
        MediationMode::Threaded,
        MediationMode::Reactor,
        MediationMode::Socket,
    ] {
        for threads in [1usize, 2, 8] {
            let report = run_simulation(
                base.with_mediation(mode).with_scoring_threads(threads),
                Method::Sqlb,
            )
            .unwrap();
            assert_eq!(
                report.digest(),
                reference_digest,
                "digest diverged on backend {mode:?} with {threads} scoring threads"
            );
        }
    }
}

#[test]
fn reactor_runs_departures_deterministically() {
    // Provider departures deregister endpoints from the reactor
    // mid-run; the run must stay bit-identical to the inline engine and
    // to a second reactor run.
    use sqlb::prelude::{EnabledReasons, ProviderDepartureRule};
    let config = SimulationConfig::scaled(16, 32, 400.0, 17)
        .with_workload(WorkloadPattern::Fixed(0.8))
        .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL));
    let inline = run_simulation(config, Method::MariposaLike).unwrap();
    let reactor_a = run_simulation(
        config.with_mediation(MediationMode::Reactor),
        Method::MariposaLike,
    )
    .unwrap();
    let reactor_b = run_simulation(
        config.with_mediation(MediationMode::Reactor),
        Method::MariposaLike,
    )
    .unwrap();
    assert!(
        !inline.provider_departures.is_empty(),
        "the scenario needs departures to be meaningful"
    );
    assert_eq!(inline.digest(), reactor_a.digest());
    assert_eq!(reactor_a.digest(), reactor_b.digest());
    assert_eq!(
        inline.provider_departures.len(),
        reactor_a.provider_departures.len()
    );
}
