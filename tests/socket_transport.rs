//! The socket transport's cross-boundary contract, exercised through the
//! facade crate.
//!
//! Pins the PR's acceptance criterion: `MediationMode::Socket` over
//! loopback produces the same allocation decisions as
//! `MediationMode::Reactor` for the same seed when endpoint latencies
//! are deterministic — plus the networked building blocks underneath
//! (a TCP *and* a UDS wave, the one-socket-per-host multiplexing, and
//! timeout-to-indifference over a real socket).

use std::time::Duration;

use sqlb::mediation::{ConsumerEndpoint, Latency, ProviderEndpoint};
use sqlb::sim::engine::run_simulation;
use sqlb::sim::{MediationMode, Method, SimulationConfig, WorkloadPattern};
use sqlb::transport::{ParticipantHost, ServerConfig, WaveServer};
use sqlb::types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

#[test]
fn socket_and_reactor_backends_make_identical_allocation_decisions() {
    // Three seeds, three methods: the socket backend's reports must be
    // bit-identical to the reactor's (and therefore to the inline
    // engine's) every time.
    for (seed, method) in [
        (9u64, Method::Sqlb),
        (13, Method::CapacityBased),
        (21, Method::MariposaLike),
    ] {
        let config = SimulationConfig::scaled(16, 32, 150.0, seed)
            .with_workload(WorkloadPattern::Fixed(0.6));
        let reactor =
            run_simulation(config.with_mediation(MediationMode::Reactor), method).unwrap();
        let socket = run_simulation(config.with_mediation(MediationMode::Socket), method).unwrap();
        assert_eq!(
            socket.digest(),
            reactor.digest(),
            "seed {seed}, {method:?}: socket and reactor runs diverged"
        );
        assert_eq!(socket.issued_queries, reactor.issued_queries);
        assert_eq!(socket.completed_queries, reactor.completed_queries);
        assert_eq!(
            socket.series.consumer_allocation_satisfaction_mean.values(),
            reactor
                .series
                .consumer_allocation_satisfaction_mean
                .values()
        );
    }
}

#[test]
fn a_coalesced_socket_run_matches_the_inline_engine_bit_for_bit() {
    // The PR-7 hot path: same-instant arrivals coalesced into one
    // multi-query socket wave (`socket_wave_coalescing`, on by default).
    // Whether waves carry one query or many must be invisible in the
    // digest — the coalesced socket run, the wave-at-a-time socket run,
    // and the inline engine must agree bit for bit.
    for (seed, method) in [(7u64, Method::Sqlb), (29, Method::CapacityBased)] {
        let config = SimulationConfig::scaled(16, 32, 150.0, seed)
            .with_workload(WorkloadPattern::Fixed(0.6));
        let inline = run_simulation(config, method).unwrap();
        let coalesced = run_simulation(
            config
                .with_mediation(MediationMode::Socket)
                .with_socket_wave_coalescing(true),
            method,
        )
        .unwrap();
        let one_at_a_time = run_simulation(
            config
                .with_mediation(MediationMode::Socket)
                .with_socket_wave_coalescing(false),
            method,
        )
        .unwrap();
        assert_eq!(
            coalesced.digest(),
            inline.digest(),
            "seed {seed}, {method:?}: coalesced socket waves changed the outcome"
        );
        assert_eq!(
            one_at_a_time.digest(),
            inline.digest(),
            "seed {seed}, {method:?}: wave-at-a-time socket run diverged from inline"
        );
    }
}

struct Flat(f64);

impl ConsumerEndpoint for Flat {
    fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates.iter().map(|&p| (p, self.0)).collect()
    }
}

impl ProviderEndpoint for Flat {
    fn intention(&mut self, _q: &Query) -> f64 {
        self.0
    }
}

struct Silent;

impl ProviderEndpoint for Silent {
    fn intention(&mut self, _q: &Query) -> f64 {
        1.0
    }
    fn latency(&mut self) -> Latency {
        Latency::Never
    }
}

#[test]
fn a_tcp_wave_multiplexes_hosts_and_degrades_timeouts_to_indifference() {
    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_millis(400),
        request_bids: false,
    });
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    // Host A: the consumer and two healthy providers. Host B: a provider
    // that never answers. Two sockets, four endpoints.
    let a = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Flat(0.5));
        host.add_provider(ProviderId::new(0), Flat(0.9));
        host.add_provider(ProviderId::new(1), Flat(0.2));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    let b = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_provider(ProviderId::new(2), Silent);
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(2, Duration::from_secs(10)).unwrap();

    let query = Query::single(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    );
    let candidates: Vec<ProviderId> = (0..3).map(ProviderId::new).collect();
    let infos = server.gather(&[(query, candidates)]);
    assert_eq!(infos[0][0].provider_intention, 0.9);
    assert_eq!(infos[0][1].provider_intention, 0.2);
    assert_eq!(
        infos[0][2].provider_intention, 0.0,
        "the silent host's provider degrades to indifference at the deadline"
    );
    assert_eq!(infos[0][0].consumer_intention, 0.5);
    let round = server.last_round();
    assert_eq!(round.delivered, 4);
    assert_eq!(round.answered, 3);
    assert_eq!(round.timed_out, 1);

    server.shutdown();
    assert!(a.join().unwrap().clean_shutdown);
    assert!(b.join().unwrap().clean_shutdown);
}

#[cfg(unix)]
#[test]
fn a_unix_domain_wave_works_like_the_tcp_one() {
    let path = std::env::temp_dir().join(format!("sqlb-facade-{}.sock", std::process::id()));
    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_secs(5),
        request_bids: false,
    });
    server.listen_uds(&path).unwrap();
    let uds = path.clone();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_uds(&uds).unwrap();
        host.add_consumer(ConsumerId::new(0), Flat(0.25));
        host.add_provider(ProviderId::new(0), Flat(0.75));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(10)).unwrap();
    let query = Query::single(
        QueryId::new(2),
        ConsumerId::new(0),
        QueryClass::Heavy,
        SimTime::ZERO,
    );
    let infos = server.gather(&[(query, vec![ProviderId::new(0)])]);
    assert_eq!(infos[0][0].provider_intention, 0.75);
    assert_eq!(infos[0][0].consumer_intention, 0.25);
    server.shutdown();
    assert!(handle.join().unwrap().clean_shutdown);
}
