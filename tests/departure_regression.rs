//! Regression tests for the departure-indexing bug class.
//!
//! The engine used to keep per-participant state (`busy_until`, departure
//! strikes) in `Vec`s indexed by each participant's *initial position*.
//! That layout silently corrupts once autonomous departures shrink the
//! population: state updates meant for one survivor land on another. All
//! such state now lives in `ParticipantTable`s keyed by stable ids; these
//! tests run autonomy experiments well past the first departure — in both
//! the mono-mediator and the sharded configuration — and check that every
//! recorded metric stays finite and attributable to a real participant.

use std::collections::HashSet;

use proptest::prelude::*;
use sqlb::prelude::*;
use sqlb::sim::engine::run_simulation;
use sqlb::sim::shard::ShardRouter;
use sqlb::sim::{Method, SimulationConfig, SimulationReport, WorkloadPattern};
use sqlb_core::mediator_state::MediatorStateConfig;
use sqlb_types::{ConsumerId, ProviderId};

fn autonomous_config(seed: u64) -> SimulationConfig {
    SimulationConfig::scaled(24, 48, 900.0, seed)
        .with_workload(WorkloadPattern::Fixed(0.8))
        .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL))
        .with_consumer_departures(ConsumerDepartureRule::default())
}

fn assert_series_finite(report: &SimulationReport) {
    let series = [
        (
            "provider_satisfaction_intention_mean",
            &report.series.provider_satisfaction_intention_mean,
        ),
        (
            "provider_satisfaction_preference_mean",
            &report.series.provider_satisfaction_preference_mean,
        ),
        (
            "consumer_allocation_satisfaction_mean",
            &report.series.consumer_allocation_satisfaction_mean,
        ),
        (
            "consumer_satisfaction_mean",
            &report.series.consumer_satisfaction_mean,
        ),
        ("utilization_mean", &report.series.utilization_mean),
        ("utilization_fairness", &report.series.utilization_fairness),
        ("active_providers", &report.series.active_providers),
        ("active_consumers", &report.series.active_consumers),
    ];
    for (name, ts) in series {
        assert!(!ts.is_empty(), "{name} recorded no samples");
        assert!(
            ts.values().iter().all(|v| v.is_finite()),
            "{name} contains a non-finite sample after departures"
        );
    }
}

fn check_departure_integrity(report: &SimulationReport) {
    assert!(
        !report.provider_departures.is_empty(),
        "this configuration must produce at least one provider departure \
         for the regression to be exercised"
    );

    assert_series_finite(report);

    // Each departure is attributed to a distinct, real provider of the
    // initial population — a positional mix-up would eventually record the
    // same survivor twice or point past the population.
    let mut seen = HashSet::new();
    for d in &report.provider_departures {
        assert!(
            (d.provider.index()) < report.initial_providers,
            "departure record points outside the population: {}",
            d.provider
        );
        assert!(
            seen.insert(d.provider),
            "provider {} was recorded as departing twice",
            d.provider
        );
        assert!(d.time_secs.is_finite() && d.time_secs >= 0.0);
    }
    let mut seen_consumers = HashSet::new();
    for d in &report.consumer_departures {
        assert!((d.consumer.index()) < report.initial_consumers);
        assert!(seen_consumers.insert(d.consumer));
    }

    // The active-provider series must march down in lockstep with the
    // departure log and end exactly at initial - departed.
    let active = report.series.active_providers.values();
    assert!(
        active.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "active-provider series must be non-increasing"
    );
    let expected = report.initial_providers - report.provider_departures.len();
    assert_eq!(*active.last().unwrap() as usize, expected);

    // Query accounting survives the shrinking population.
    assert!(report.completed_queries <= report.issued_queries);
    assert!(report.mean_response_time().is_finite());
}

#[test]
fn metrics_stay_finite_past_departures_mono_mediator() {
    let report = run_simulation(autonomous_config(17), Method::MariposaLike).unwrap();
    check_departure_integrity(&report);
    assert_eq!(report.mediator_shards, 1);
}

#[test]
fn metrics_stay_finite_past_departures_with_shards() {
    // The ISSUE's acceptance bar: a K>1 run completes an autonomy
    // experiment with at least one departure, without panics or index
    // corruption.
    let report = run_simulation(
        autonomous_config(17).with_mediator_shards(2),
        Method::MariposaLike,
    )
    .unwrap();
    check_departure_integrity(&report);
    assert_eq!(report.mediator_shards, 2);
    assert!(report.sync_rounds > 0);
    assert_eq!(
        report.shard_allocations.iter().sum::<u64>(),
        report.issued_queries - report.unallocated_queries
    );
}

// ---------------------------------------------------------------------
// Incremental-index consistency: the active-participant sets maintained
// by `Population` and the per-shard provider lists maintained by
// `ShardRouter` replace per-arrival rescans; these property tests pin
// them against a from-scratch rebuild across arbitrary departure
// sequences.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_population_active_indices_match_departed_flags(
        consumers in 1u32..24,
        providers in 1u32..48,
        seed in 0u64..100,
        departures in proptest::collection::vec((proptest::bool::ANY, 0u32..64), 0..80),
    ) {
        let mut population =
            Population::generate(&PopulationConfig::scaled(consumers, providers, seed)).unwrap();
        for (is_consumer, raw) in departures {
            if is_consumer {
                population.depart_consumer(ConsumerId::new(raw));
            } else {
                population.depart_provider(ProviderId::new(raw));
            }
            // From-scratch rebuild over the departed flags, ascending id —
            // the incremental index must match it after every step.
            let expected_consumers: Vec<ConsumerId> = population
                .consumers
                .iter()
                .filter(|(_, c)| !c.has_departed())
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(population.active_consumer_ids(), expected_consumers.as_slice());
            prop_assert_eq!(population.active_consumer_count(), expected_consumers.len());
            let expected_providers: Vec<ProviderId> = population
                .providers
                .iter()
                .filter(|(_, p)| !p.has_departed())
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(population.active_provider_ids(), expected_providers.as_slice());
            prop_assert_eq!(population.active_provider_count(), expected_providers.len());
        }
    }

    #[test]
    fn prop_shard_provider_lists_match_assignment_rebuild(
        shards in 1usize..6,
        providers in 1u32..48,
        removals in proptest::collection::vec(0u32..64, 0..80),
    ) {
        let mut router = ShardRouter::new(
            shards,
            Method::Sqlb,
            7,
            MediatorStateConfig::default(),
            (0..providers).map(ProviderId::new),
        );
        let mut removed: HashSet<u32> = HashSet::new();
        for raw in removals {
            router.remove_provider(ProviderId::new(raw));
            removed.insert(raw);
            // From-scratch rebuild: round-robin assignment filtered by the
            // removals, ascending id per shard.
            for shard in 0..router.shard_count() {
                let expected: Vec<ProviderId> = (0..providers)
                    .filter(|p| (*p as usize) % router.shard_count() == shard)
                    .filter(|p| !removed.contains(p))
                    .map(ProviderId::new)
                    .collect();
                prop_assert_eq!(router.providers_of_shard(shard), expected.as_slice());
                // The list agrees with the per-provider assignment lookup.
                for &p in router.providers_of_shard(shard) {
                    prop_assert_eq!(router.shard_of_provider(p), Some(shard));
                }
            }
        }
    }
}

#[test]
fn departed_providers_keep_their_identity_in_records() {
    // Cross-check the departure log against the population layout: the
    // recorded profiles must match what the (stable-keyed) population
    // assigned to those ids at generation time.
    let config = autonomous_config(23);
    let population = Population::generate(&config.population).unwrap();
    let report = run_simulation(config, Method::CapacityBased).unwrap();
    for d in &report.provider_departures {
        let expected = population
            .profiles
            .get(d.provider)
            .copied()
            .expect("departed provider must exist in the generated population");
        assert_eq!(
            d.profile, expected,
            "departure record for {} carries another provider's profile",
            d.provider
        );
    }
}
