//! Adversarial byte-stream properties for the wire layer: whatever
//! bytes arrive — arbitrary garbage, truncated encodings, bit-flipped
//! frames, hostile chunk boundaries — the [`FrameAssembler`] and the
//! wave codec must return errors, never panic, and never disagree with
//! a whole-buffer decode. This is the randomized complement of the
//! exhaustive two-chunk split sweep in `sqlb-check`.

use proptest::prelude::*;
use sqlb_mediation::{
    decode_mediator_message, decode_participant_reply, encode_mediator_message,
    encode_participant_reply, FrameAssembler, MediatorMessage, ParticipantReply,
};
use sqlb_transport::{route_reply_frame, WaveLedger};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};
use std::collections::BTreeMap;

fn query(id: u32, consumer: u32) -> Query {
    Query::single(
        QueryId::new(id),
        ConsumerId::new(consumer),
        QueryClass::Light,
        SimTime::from_secs(0.25),
    )
}

/// Builds one mediator message of any wave-path shape, selected and
/// parameterized by the sampled inputs.
fn mediator_message(kind: usize, wave: u64, id: u32, flag: bool, list: &[u32]) -> MediatorMessage {
    match kind % 5 {
        0 => MediatorMessage::ConsumerWaveRequest {
            wave,
            consumer: ConsumerId::new(id % 8),
            requests: vec![(
                query(id, id % 8),
                list.iter().map(|&p| ProviderId::new(p)).collect(),
            )],
        },
        1 => MediatorMessage::ProviderWaveRequest {
            wave,
            provider: ProviderId::new(id % 8),
            queries: list.iter().map(|&q| query(q, 0)).collect(),
            request_bids: flag,
        },
        2 => MediatorMessage::WaveEnd { wave },
        3 => MediatorMessage::AllocationNotice {
            query: QueryId::new(id),
            provider: ProviderId::new(id % 8),
            selected: flag,
        },
        _ => MediatorMessage::Shutdown,
    }
}

/// Builds one participant reply of any wave-path shape.
fn participant_reply(
    kind: usize,
    wave: u64,
    id: u32,
    value: f64,
    list: &[u32],
) -> ParticipantReply {
    match kind % 4 {
        0 => ParticipantReply::ConsumerWaveReply {
            wave,
            consumer: ConsumerId::new(id % 8),
            intentions: list
                .iter()
                .map(|&q| (QueryId::new(q), vec![(ProviderId::new(q % 8), value)]))
                .collect(),
        },
        1 => ParticipantReply::ProviderWaveReply {
            wave,
            provider: ProviderId::new(id % 8),
            utilization: value.abs(),
            intentions: list
                .iter()
                .map(|&q| (QueryId::new(q), value, None))
                .collect(),
        },
        2 => ParticipantReply::Hello {
            consumers: list.iter().map(|&c| ConsumerId::new(c % 8)).collect(),
            providers: vec![ProviderId::new(id % 8)],
        },
        _ => ParticipantReply::Goodbye,
    }
}

/// Drains every complete frame, copied out.
fn drain(assembler: &mut FrameAssembler) -> Result<Vec<Vec<u8>>, String> {
    let mut frames = Vec::new();
    loop {
        match assembler.next_frame() {
            Err(e) => return Err(e.to_string()),
            Ok(None) => return Ok(frames),
            Ok(Some(frame)) => frames.push(frame.to_vec()),
        }
    }
}

/// A ledger with one consumer and two providers planned, for feeding
/// hostile reply frames into the real routing path.
fn planned_ledger() -> WaveLedger {
    let consumer_home = BTreeMap::from([(ConsumerId::new(0), 0)]);
    let provider_home = BTreeMap::from([(ProviderId::new(1), 0), (ProviderId::new(2), 1)]);
    let mut outbox = Vec::new();
    WaveLedger::plan(
        3,
        &[(query(9, 0), vec![ProviderId::new(1), ProviderId::new(2)])],
        &consumer_home,
        &provider_home,
        2,
        |_| true,
        false,
        &mut outbox,
    )
}

/// Asserts the ledger's accounting identity, the invariant the model
/// checker enforces on every explored trace.
fn assert_accounting(ledger: &WaveLedger) -> Result<(), TestCaseError> {
    prop_assert!(ledger.pending_total() <= ledger.delivered());
    prop_assert_eq!(
        ledger.stored_replies(),
        ledger.delivered() - ledger.pending_total()
    );
    Ok(())
}

proptest! {
    /// Arbitrary bytes at arbitrary chunk boundaries: the assembler
    /// may reject the stream or keep waiting for more, but it must not
    /// panic, and it must account for every byte it was fed.
    #[test]
    fn assembler_survives_arbitrary_chunked_garbage(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            1..8,
        )
    ) {
        let mut assembler = FrameAssembler::new();
        let mut fed = 0usize;
        let mut popped = 0usize;
        for chunk in &chunks {
            assembler.extend(chunk);
            fed += chunk.len();
            match drain(&mut assembler) {
                Ok(frames) => popped += frames.iter().map(|f| f.len()).sum::<usize>(),
                Err(_) => return Ok(()), // rejected: fine, as long as no panic
            }
            prop_assert!(assembler.pending_bytes() + popped <= fed);
        }
    }

    /// A valid multi-message burst reassembles to exactly the same
    /// frame sequence no matter where the chunk boundaries fall.
    #[test]
    fn valid_bursts_reassemble_under_any_chunking(
        kinds in proptest::collection::vec((0usize..9, 0u64..50, 0u32..200), 1..7),
        flag in proptest::bool::ANY,
        value in -1.0f64..=1.0,
        list in proptest::collection::vec(0u32..200, 0..4),
        cuts in proptest::collection::vec(0usize..4096, 1..7),
    ) {
        let mut burst = Vec::new();
        let mut expected = Vec::new();
        for &(kind, wave, id) in &kinds {
            let bytes = if kind < 5 {
                encode_mediator_message(&mediator_message(kind, wave, id, flag, &list))
            } else {
                encode_participant_reply(&participant_reply(kind - 5, wave, id, value, &list))
            };
            burst.extend_from_slice(&bytes);
            expected.push(bytes);
        }

        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (burst.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(burst.len());
        boundaries.sort_unstable();

        let mut assembler = FrameAssembler::new();
        let mut frames = Vec::new();
        for pair in boundaries.windows(2) {
            assembler.extend(&burst[pair[0]..pair[1]]);
            frames.extend(drain(&mut assembler).map_err(TestCaseError::fail)?);
        }
        prop_assert_eq!(frames, expected);
        prop_assert_eq!(assembler.pending_bytes(), 0);
    }

    /// Truncating a valid encoding anywhere strictly inside it must
    /// fail to decode — cleanly, never panicking, never inventing a
    /// message out of a partial buffer.
    #[test]
    fn truncated_encodings_fail_cleanly(
        kind in 0usize..20,
        wave in 0u64..50,
        id in 0u32..200,
        value in -1.0f64..=1.0,
        list in proptest::collection::vec(0u32..200, 0..4),
        cut in 0usize..4096,
    ) {
        let bytes = encode_mediator_message(&mediator_message(kind, wave, id, true, &list));
        prop_assert!(decode_mediator_message(&bytes[..cut % bytes.len()]).is_err());

        let bytes = encode_participant_reply(&participant_reply(kind, wave, id, value, &list));
        prop_assert!(decode_participant_reply(&bytes[..cut % bytes.len()]).is_err());
    }

    /// Bit-flipping a valid encoding may still decode (a flipped value
    /// bit is a different, legal message) — but it must never panic,
    /// and whatever decodes must fit inside the buffer it came from.
    #[test]
    fn bit_flipped_encodings_never_panic(
        kind in 0usize..20,
        wave in 0u64..50,
        id in 0u32..200,
        value in -1.0f64..=1.0,
        list in proptest::collection::vec(0u32..200, 0..4),
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_mediator_message(&mediator_message(kind, wave, id, false, &list));
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok((_, consumed)) = decode_mediator_message(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }

        let mut bytes = encode_participant_reply(&participant_reply(kind, wave, id, value, &list));
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok((_, consumed)) = decode_participant_reply(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Hostile frames fed straight into the mediator's reply-routing
    /// seam: any payload wrapped in a coherent frame envelope must be
    /// counted, ignored or rejected — never panic, and never corrupt
    /// the ledger's accounting identity.
    #[test]
    fn reply_routing_survives_arbitrary_frame_payloads(
        payload in proptest::collection::vec(0u8..=255, 0..48),
        slot in 0usize..4,
    ) {
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);

        let mut ledger = planned_ledger();
        let _ = route_reply_frame(&frame, [&mut ledger], slot); // Ok or Err, never panic
        assert_accounting(&ledger)?;
    }

    /// Bit-flipped *real* reply frames through the routing seam: the
    /// accounting identity holds whether the flip lands in the length
    /// prefix, the tag, the wave id or a value.
    #[test]
    fn reply_routing_survives_bit_flipped_replies(
        kind in 0usize..20,
        wave in 0u64..8,
        id in 0u32..8,
        value in -1.0f64..=1.0,
        list in proptest::collection::vec(0u32..16, 0..4),
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_participant_reply(&participant_reply(kind, wave, id, value, &list));
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;

        let mut ledger = planned_ledger();
        let _ = route_reply_frame(&bytes, [&mut ledger], 0);
        assert_accounting(&ledger)?;
    }
}
