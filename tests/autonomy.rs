//! Integration tests of the autonomous setting (Section 6.3.2): departures
//! by dissatisfaction, starvation and overutilization, and their impact on
//! the three allocation methods.

use sqlb::prelude::*;
use sqlb::sim::engine::run_simulation;
use sqlb::sim::{Method, SimulationConfig, WorkloadPattern};

fn autonomous_config(workload: f64, seed: u64, enabled: EnabledReasons) -> SimulationConfig {
    SimulationConfig::scaled(24, 48, 900.0, seed)
        .with_workload(WorkloadPattern::Fixed(workload))
        .with_provider_departures(ProviderDepartureRule::with_enabled(enabled))
        .with_consumer_departures(ConsumerDepartureRule::default())
}

#[test]
fn sqlb_retains_more_providers_than_the_baselines() {
    // Figure 5(c): at high workload the baselines lose most providers while
    // SQLB keeps the bulk of them.
    let workload = 0.8;
    let sqlb = run_simulation(
        autonomous_config(workload, 11, EnabledReasons::ALL),
        Method::Sqlb,
    )
    .unwrap();
    let capacity = run_simulation(
        autonomous_config(workload, 11, EnabledReasons::ALL),
        Method::CapacityBased,
    )
    .unwrap();
    let mariposa = run_simulation(
        autonomous_config(workload, 11, EnabledReasons::ALL),
        Method::MariposaLike,
    )
    .unwrap();

    let sqlb_loss = sqlb.provider_departure_fraction();
    let capacity_loss = capacity.provider_departure_fraction();
    let mariposa_loss = mariposa.provider_departure_fraction();
    assert!(
        sqlb_loss < capacity_loss,
        "SQLB lost {sqlb_loss:.2} vs Capacity based {capacity_loss:.2}"
    );
    assert!(
        sqlb_loss < mariposa_loss,
        "SQLB lost {sqlb_loss:.2} vs Mariposa-like {mariposa_loss:.2}"
    );
    assert!(
        capacity_loss > 0.3,
        "Capacity based should lose a large share of providers, lost {capacity_loss:.2}"
    );
}

#[test]
fn departure_reasons_match_the_paper_qualitatively() {
    // Table 3: Capacity based departures are dominated by dissatisfaction,
    // Mariposa-like shows a clear overutilization component, SQLB shows no
    // overutilization departures.
    let workload = 0.8;
    let capacity = run_simulation(
        autonomous_config(workload, 13, EnabledReasons::ALL),
        Method::CapacityBased,
    )
    .unwrap();
    let mariposa = run_simulation(
        autonomous_config(workload, 13, EnabledReasons::ALL),
        Method::MariposaLike,
    )
    .unwrap();
    let sqlb = run_simulation(
        autonomous_config(workload, 13, EnabledReasons::ALL),
        Method::Sqlb,
    )
    .unwrap();

    assert!(
        capacity.departures_by_reason(DepartureReason::Dissatisfaction)
            >= capacity.departures_by_reason(DepartureReason::Overutilization),
        "Capacity based should lose providers mainly by dissatisfaction"
    );
    assert!(
        mariposa.departures_by_reason(DepartureReason::Overutilization) > 0,
        "Mariposa-like should overutilize some providers"
    );
    // Table 3: SQLB's overutilization departures are marginal (6 % in the
    // paper) while Mariposa-like's dominate its losses (65 %).
    assert!(
        sqlb.departures_by_reason(DepartureReason::Overutilization)
            < mariposa.departures_by_reason(DepartureReason::Overutilization),
        "SQLB providers fold utilization into their intentions; Mariposa-like does not"
    );
}

#[test]
fn sqlb_keeps_its_consumers() {
    // Figure 6: SQLB has (almost) no consumer departures, the baselines
    // lose a significant share.
    let workload = 0.7;
    let sqlb = run_simulation(
        autonomous_config(workload, 17, EnabledReasons::ALL),
        Method::Sqlb,
    )
    .unwrap();
    let capacity = run_simulation(
        autonomous_config(workload, 17, EnabledReasons::ALL),
        Method::CapacityBased,
    )
    .unwrap();

    assert!(
        sqlb.consumer_departure_fraction() < 0.05,
        "SQLB should keep its consumers, lost {:.2}",
        sqlb.consumer_departure_fraction()
    );
    assert!(
        capacity.consumer_departure_fraction() > sqlb.consumer_departure_fraction(),
        "Capacity based should lose more consumers ({:.2}) than SQLB ({:.2})",
        capacity.consumer_departure_fraction(),
        sqlb.consumer_departure_fraction()
    );
}

#[test]
fn restricting_departure_reasons_restricts_recorded_reasons() {
    // Figure 5(a) setting: overutilization departures are disabled, so none
    // may be recorded.
    let report = run_simulation(
        autonomous_config(0.9, 19, EnabledReasons::DISSATISFACTION_AND_STARVATION),
        Method::MariposaLike,
    )
    .unwrap();
    assert_eq!(
        report.departures_by_reason(DepartureReason::Overutilization),
        0
    );
    // The sum over reasons equals the number of departures.
    let total: usize = [
        DepartureReason::Dissatisfaction,
        DepartureReason::Starvation,
        DepartureReason::Overutilization,
    ]
    .into_iter()
    .map(|r| report.departures_by_reason(r))
    .sum();
    assert_eq!(total, report.provider_departures.len());
}

#[test]
fn departures_degrade_response_times() {
    // Figure 5(b) versus Figure 4(i): for the method that loses most of its
    // providers, the autonomous response time is no better than the captive
    // one at the same workload.
    let workload = 0.8;
    let captive = run_simulation(
        SimulationConfig::scaled(24, 48, 900.0, 23).with_workload(WorkloadPattern::Fixed(workload)),
        Method::CapacityBased,
    )
    .unwrap();
    let autonomous = run_simulation(
        autonomous_config(workload, 23, EnabledReasons::ALL),
        Method::CapacityBased,
    )
    .unwrap();
    assert!(autonomous.provider_departure_fraction() > 0.2);
    assert!(
        autonomous.mean_response_time() >= captive.mean_response_time() * 0.9,
        "losing providers should not make the system faster (captive {:.2}s, autonomous {:.2}s)",
        captive.mean_response_time(),
        autonomous.mean_response_time()
    );
}

#[test]
fn departed_providers_receive_no_further_queries() {
    let report = run_simulation(
        autonomous_config(0.8, 29, EnabledReasons::ALL),
        Method::MariposaLike,
    )
    .unwrap();
    if report.provider_departures.is_empty() {
        return; // nothing to check at this seed
    }
    // The active-provider series must be non-increasing and end at
    // initial - departures.
    let values = report.series.active_providers.values();
    assert!(values.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    let expected = report.initial_providers - report.provider_departures.len();
    assert_eq!(*values.last().unwrap() as usize, expected);
}
