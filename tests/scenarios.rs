//! Scenario-campaign contract tests.
//!
//! Four properties of the campaign subsystem are pinned here:
//!
//! 1. **Campaigns are experiments, not anecdotes.** Every named scenario
//!    of the committed matrix is bit-reproducible per seed, and the
//!    smoke subset re-run in CI must match the digests committed in
//!    `BENCH_campaign.json` exactly.
//! 2. **Re-join semantics are the documented ones.** A re-joining
//!    provider's satisfaction history *resumes* under the default
//!    [`RejoinPolicy::Resume`] and starts over under
//!    [`RejoinPolicy::Reset`] — the two policies must produce different
//!    runs when a re-join happens and identical runs when none does.
//! 3. **Hostile transport degrades the same way everywhere.** Churn plus
//!    a stalled host produces bit-identical reports on the inline and
//!    reactor backends (the fault model is virtual-clock exact), and the
//!    socket backend — where the stall is a real silent TCP peer —
//!    degrades the missing replies to indifference and still terminates.
//! 4. **A flash crowd does not starve rebalancing.** Load-reactive
//!    routing under a burst still runs its due `Rebalance` rounds, on
//!    every backend, with identical digests — and wave coalescing under
//!    static routing stays bit-identical through the burst.

use sqlb::sim::campaign;
use sqlb::sim::engine::run_scenario;
use sqlb::sim::{
    ArrivalModifier, ChurnGroup, MediationMode, Method, RejoinPolicy, RoutingPolicyKind, Scenario,
    SimulationConfig, TransportFault, WorkloadPattern,
};

/// A bounded in-process configuration for scenario runs.
fn small_config(seed: u64) -> SimulationConfig {
    SimulationConfig::scaled(16, 32, 150.0, seed).with_workload(WorkloadPattern::Fixed(0.6))
}

/// A churn group taking half the providers down at 40s and back at 90s.
fn churn_group(rejoin: RejoinPolicy) -> ChurnGroup {
    ChurnGroup {
        fraction: 0.5,
        depart_at_secs: 40.0,
        rejoin_at_secs: Some(90.0),
        rejoin,
    }
}

#[test]
fn every_campaign_scenario_is_reproducible_per_seed() {
    for scenario in campaign::scenarios() {
        let run = || {
            run_scenario(campaign::base_config(), Method::Sqlb, &scenario)
                .expect("campaign scenario run")
        };
        let (first, second) = (run(), run());
        assert_eq!(
            first.digest(),
            second.digest(),
            "{}: same-seed runs must be bit-identical",
            scenario.name
        );
        assert_eq!(first.issued_queries, second.issued_queries);
        assert!(first.issued_queries > 0, "{}: no arrivals", scenario.name);
        assert_eq!(first.scenario, scenario.name);
    }
}

#[test]
fn the_smoke_subset_matches_the_committed_campaign_digests() {
    let content = std::fs::read_to_string(campaign::campaign_path())
        .expect("BENCH_campaign.json is committed at the repository root");
    let committed = campaign::parse_campaign(&content);
    assert!(
        committed.len() >= 15,
        "the committed matrix covers at least 5 scenarios x 3 methods"
    );
    let smoke = campaign::run_smoke().expect("smoke campaign");
    let failures = campaign::drift(&smoke, &committed);
    assert!(
        failures.is_empty(),
        "campaign digests drifted from BENCH_campaign.json (re-run \
         `cargo run --release -p sqlb-bench --bin campaign -- --write` if the \
         change is deliberate):\n{}",
        failures.join("\n")
    );
}

#[test]
fn rejoin_policies_follow_the_documented_semantics() {
    let run = |rejoin: Option<ChurnGroup>, name: &str| {
        let mut scenario = Scenario::steady(name);
        scenario.churn.extend(rejoin);
        run_scenario(small_config(9), Method::Sqlb, &scenario).expect("churn run")
    };

    let resume = run(Some(churn_group(RejoinPolicy::Resume)), "resume");
    let reset = run(Some(churn_group(RejoinPolicy::Reset)), "reset");
    let steady = run(None, "steady");

    // The churn actually happened, identically, under both policies.
    assert!(resume.churn_departures > 0);
    assert_eq!(resume.churn_departures, resume.churn_rejoins);
    assert_eq!(resume.churn_departures, reset.churn_departures);
    assert_eq!(reset.churn_departures, reset.churn_rejoins);
    assert_eq!(steady.churn_departures, 0);

    // The documented answer: satisfaction history resumes by default and
    // is wiped under Reset — so the two policies must diverge after the
    // re-join (the resumed trackers score their next allocations against
    // remembered history; the reset ones start from scratch).
    assert_ne!(
        resume.digest(),
        reset.digest(),
        "Resume and Reset must be observably different runs"
    );
    // And churn is not a behavioral departure: the paper's Table 3
    // accounting stays clean.
    assert_eq!(resume.provider_departures.len(), 0);
    assert_eq!(
        resume.series.active_providers.last_value(),
        steady.series.active_providers.last_value()
    );
}

#[test]
fn a_rejoin_free_churn_group_makes_the_policy_irrelevant() {
    let run = |rejoin: RejoinPolicy| {
        let mut scenario = Scenario::steady("no-rejoin");
        scenario.churn.push(ChurnGroup {
            fraction: 0.25,
            depart_at_secs: 50.0,
            rejoin_at_secs: None,
            rejoin,
        });
        run_scenario(small_config(4), Method::Sqlb, &scenario).expect("churn run")
    };
    let resume = run(RejoinPolicy::Resume);
    let reset = run(RejoinPolicy::Reset);
    assert_eq!(resume.digest(), reset.digest());
    assert!(resume.churn_departures > 0);
    assert_eq!(resume.churn_rejoins, 0);
}

#[test]
fn churn_and_stalls_agree_across_in_process_backends() {
    let mut scenario = Scenario::steady("churn-stall");
    scenario.churn.push(churn_group(RejoinPolicy::Resume));
    scenario.faults.push(TransportFault::StallHost {
        host: 1,
        from_secs: 30.0,
        until_secs: 80.0,
    });
    let run = |mode: MediationMode| {
        run_scenario(
            small_config(3).with_mediation(mode),
            Method::Sqlb,
            &scenario,
        )
        .expect("faulted run")
    };
    let inline = run(MediationMode::Inline);
    let reactor = run(MediationMode::Reactor);
    assert_eq!(
        inline.digest(),
        reactor.digest(),
        "the virtual fault model must be backend-independent"
    );
    assert!(
        inline.indifferent_replies > 0,
        "a stalled host must be accounted as timeout-to-indifference"
    );
    assert_eq!(inline.indifferent_replies, reactor.indifferent_replies);
    assert!(inline.churn_rejoins > 0);
}

#[test]
fn a_stalled_then_dropped_socket_run_degrades_but_terminates() {
    // On the socket backend the faults are real: the stalled host is a
    // silent TCP peer whose replies miss the wave deadline, and the
    // dropped host shuts its connection down mid-wave and stays gone.
    // The run must degrade those endpoints to indifference (counted by
    // the transport, not fabricated) and still terminate.
    let mut scenario = Scenario::steady("hostile-socket");
    scenario.faults.push(TransportFault::StallHost {
        host: 1,
        from_secs: 10.0,
        until_secs: 20.0,
    });
    scenario.faults.push(TransportFault::DropHost {
        host: 0,
        at_secs: 30.0,
    });
    let config = SimulationConfig::scaled(8, 16, 45.0, 7)
        .with_workload(WorkloadPattern::Fixed(0.6))
        .with_mediation(MediationMode::Socket)
        .with_wave_timeout_ms(150);
    let report = run_scenario(config, Method::Sqlb, &scenario).expect("socket faulted run");
    assert!(report.issued_queries > 0);
    assert!(report.completed_queries > 0, "healthy hosts keep serving");
    assert!(
        report.indifferent_replies > 0,
        "wire-level stalls and drops must surface as timed-out requests"
    );
}

#[test]
fn a_flash_crowd_during_a_due_rebalance_round_still_rebalances() {
    // Regression for the load-reactive + burst interaction: the burst
    // lands exactly when periodic Rebalance rounds are due (the scaled
    // 150 s run schedules them every 6 s), and the rounds must keep
    // running on every backend, with bit-identical outcomes.
    let mut scenario = Scenario::steady("flash-rebalance");
    scenario.arrival.push(ArrivalModifier::Burst {
        at_secs: 5.0,
        duration_secs: 15.0,
        multiplier: 4.0,
    });
    let config = small_config(5)
        .with_mediator_shards(2)
        .with_routing(RoutingPolicyKind::LeastLoaded)
        .with_migration(true);
    let run = |mode: MediationMode| {
        run_scenario(config.with_mediation(mode), Method::Sqlb, &scenario).expect("burst run")
    };
    let inline = run(MediationMode::Inline);
    let reactor = run(MediationMode::Reactor);
    let socket = run(MediationMode::Socket);
    assert!(
        inline.rebalance_rounds > 0,
        "due rebalance rounds must run through the burst"
    );
    assert_eq!(inline.digest(), reactor.digest());
    assert_eq!(inline.digest(), socket.digest());
    assert_eq!(inline.rebalance_rounds, socket.rebalance_rounds);
}

#[test]
fn coalesced_waves_stay_bit_identical_through_a_flash_crowd() {
    let mut scenario = Scenario::steady("flash-coalesced");
    scenario.arrival.push(ArrivalModifier::Burst {
        at_secs: 5.0,
        duration_secs: 15.0,
        multiplier: 4.0,
    });
    let config = small_config(6)
        .with_mediator_shards(2)
        .with_migration(true)
        .with_mediation(MediationMode::Socket);
    let run = |coalescing: bool| {
        run_scenario(
            config.with_socket_wave_coalescing(coalescing),
            Method::Sqlb,
            &scenario,
        )
        .expect("coalesced burst run")
    };
    let coalesced = run(true);
    let sequential = run(false);
    assert_eq!(coalesced.digest(), sequential.digest());
    assert!(coalesced.rebalance_rounds > 0);
    assert_eq!(coalesced.rebalance_rounds, sequential.rebalance_rounds);
}
