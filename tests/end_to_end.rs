//! Cross-crate integration tests: the full captive-system pipeline
//! (population → mediator → allocation methods → queueing → metrics),
//! checking the qualitative shapes the paper reports in Section 6.3.1.

use sqlb::sim::engine::run_simulation;
use sqlb::sim::{Method, SimulationConfig, WorkloadPattern};

fn config(workload: f64, duration: f64, seed: u64) -> SimulationConfig {
    SimulationConfig::scaled(24, 48, duration, seed).with_workload(WorkloadPattern::Fixed(workload))
}

#[test]
fn captive_runs_preserve_query_accounting() {
    for method in [Method::Sqlb, Method::CapacityBased, Method::MariposaLike] {
        let report = run_simulation(config(0.6, 400.0, 1), method).unwrap();
        assert!(
            report.issued_queries > 500,
            "{method:?}: {}",
            report.issued_queries
        );
        assert!(report.completed_queries <= report.issued_queries);
        assert_eq!(
            report.unallocated_queries, 0,
            "captive system never drops queries"
        );
        // At 60% workload the vast majority of queries complete within the
        // run; the Mariposa-like broker concentrates queries on the cheapest
        // providers and therefore leaves a longer tail in flight.
        let minimum = if method == Method::MariposaLike {
            0.75
        } else {
            0.9
        };
        assert!(
            report.completion_rate() > minimum,
            "{method:?} completion rate {}",
            report.completion_rate()
        );
        assert_eq!(report.initial_providers, 48);
        assert_eq!(report.initial_consumers, 24);
        assert!(report.provider_departures.is_empty());
        assert!(report.consumer_departures.is_empty());
    }
}

#[test]
fn sqlb_is_the_only_method_that_satisfies_consumers() {
    // Figure 4(e): SQLB's consumer allocation satisfaction is above 1 while
    // the baselines hover around neutrality.
    let sqlb = run_simulation(config(0.6, 500.0, 2), Method::Sqlb).unwrap();
    let capacity = run_simulation(config(0.6, 500.0, 2), Method::CapacityBased).unwrap();
    let mariposa = run_simulation(config(0.6, 500.0, 2), Method::MariposaLike).unwrap();

    let last = |r: &sqlb::sim::SimulationReport| {
        r.series
            .consumer_allocation_satisfaction_mean
            .last_value()
            .unwrap()
    };
    assert!(last(&sqlb) > 1.02, "SQLB consumer δas {}", last(&sqlb));
    assert!(
        (last(&capacity) - 1.0).abs() < 0.1,
        "Capacity based should be roughly neutral, got {}",
        last(&capacity)
    );
    assert!(last(&sqlb) > last(&capacity));
    assert!(last(&sqlb) > last(&mariposa));
}

#[test]
fn capacity_based_punishes_providers_while_sqlb_does_not() {
    // Figure 4(c): Capacity based is the only method whose provider
    // allocation satisfaction (preference-based) falls clearly below the
    // others.
    let sqlb = run_simulation(config(0.6, 500.0, 3), Method::Sqlb).unwrap();
    let capacity = run_simulation(config(0.6, 500.0, 3), Method::CapacityBased).unwrap();
    let last = |r: &sqlb::sim::SimulationReport| {
        r.series
            .provider_allocation_satisfaction_preference_mean
            .last_value()
            .unwrap()
    };
    assert!(
        last(&sqlb) > last(&capacity),
        "SQLB {} should exceed Capacity based {}",
        last(&sqlb),
        last(&capacity)
    );
    // And SQLB's providers end up at least neutral on average.
    assert!(last(&sqlb) >= 0.95, "SQLB provider δas {}", last(&sqlb));
}

#[test]
fn capacity_based_gives_the_best_load_balance_and_response_times() {
    // Figures 4(g)–(i): Capacity based balances the load best and is the
    // fastest with captive participants.
    let sqlb = run_simulation(config(0.8, 500.0, 4), Method::Sqlb).unwrap();
    let capacity = run_simulation(config(0.8, 500.0, 4), Method::CapacityBased).unwrap();
    let mariposa = run_simulation(config(0.8, 500.0, 4), Method::MariposaLike).unwrap();

    let fairness =
        |r: &sqlb::sim::SimulationReport| r.series.utilization_fairness.mean_after(100.0);
    assert!(fairness(&capacity) >= fairness(&sqlb) - 0.02);
    assert!(fairness(&capacity) > fairness(&mariposa));

    let rt_capacity = capacity.mean_response_time();
    let rt_sqlb = sqlb.mean_response_time();
    let rt_mariposa = mariposa.mean_response_time();
    assert!(
        rt_capacity <= rt_sqlb * 1.05 && rt_capacity <= rt_mariposa,
        "Capacity based {rt_capacity}s should be fastest (SQLB {rt_sqlb}s, Mariposa {rt_mariposa}s)"
    );
    // Mariposa-like concentrates queries on the most adapted providers and
    // pays for it in response time.
    assert!(
        rt_mariposa > rt_capacity,
        "Mariposa {rt_mariposa}s vs Capacity {rt_capacity}s"
    );
}

#[test]
fn provider_satisfaction_decreases_with_workload_under_sqlb() {
    // Figure 4(a): as the workload grows, providers' intention-based
    // satisfaction under SQLB decreases (utilization dominates their
    // intentions).
    let low = run_simulation(config(0.3, 500.0, 5), Method::Sqlb).unwrap();
    let high = run_simulation(config(1.0, 500.0, 5), Method::Sqlb).unwrap();
    let last = |r: &sqlb::sim::SimulationReport| {
        r.series
            .provider_satisfaction_intention_mean
            .last_value()
            .unwrap()
    };
    assert!(
        last(&low) > last(&high),
        "satisfaction at 30% ({}) should exceed satisfaction at 100% ({})",
        last(&low),
        last(&high)
    );
}

#[test]
fn mediator_state_and_agent_state_agree_on_what_is_observable() {
    // The mediator tracks intention-based consumer satisfaction; consumers
    // track the same quantity locally (the paper's υ = 1 setting makes
    // intentions equal preferences, observable by both sides). A short run
    // must keep the two views consistent in the aggregate.
    let report = run_simulation(config(0.5, 300.0, 6), Method::Sqlb).unwrap();
    let consumer_mean = report
        .series
        .consumer_satisfaction_mean
        .last_value()
        .unwrap();
    assert!(
        consumer_mean > 0.5,
        "selected providers should please consumers"
    );
    assert!(consumer_mean <= 1.0);
}
