//! Integration test wiring real agent logic (crate `sqlb-agents`) to the
//! concurrent mediation runtime (crate `sqlb-mediation`): consumers and
//! providers computing Definition 7/8 intentions on their own threads,
//! Algorithm 1 running over channels with a timeout.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sqlb::mediation::{ConsumerEndpoint, MediationRuntime, ProviderEndpoint, RuntimeConfig};
use sqlb::prelude::*;

/// A consumer endpoint backed by a real [`ConsumerAgent`].
struct AgentConsumer {
    agent: ConsumerAgent,
    reputation: ReputationStore,
}

impl ConsumerEndpoint for AgentConsumer {
    fn intentions(&mut self, query: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, self.agent.intention_for(query, p, &self.reputation)))
            .collect()
    }
}

/// A provider endpoint backed by a real [`ProviderAgent`], sharing the
/// agent with the test through a mutex so satisfaction updates are visible.
struct AgentProvider {
    agent: Arc<Mutex<ProviderAgent>>,
}

impl ProviderEndpoint for AgentProvider {
    fn intention(&mut self, query: &Query) -> f64 {
        self.agent.lock().intention_for(query, SimTime::ZERO)
    }

    fn bid(&mut self, query: &Query) -> Option<Bid> {
        Some(self.agent.lock().bid_for(query, SimTime::ZERO))
    }

    fn allocation_notice(&mut self, _query: QueryId, selected: bool) {
        // Record the proposal on the provider's own trackers; the shown
        // intention is re-derived from its preference (idle provider).
        let mut agent = self.agent.lock();
        let query = Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let intention = agent.intention_for(&query, SimTime::ZERO);
        agent.record_proposal(&query, intention, selected);
    }
}

/// A provider endpoint wrapping a real agent but answering only after a
/// fixed delay — a stand-in for an overloaded or partitioned participant.
struct SlowAgentProvider {
    agent: Arc<Mutex<ProviderAgent>>,
    delay: Duration,
}

impl ProviderEndpoint for SlowAgentProvider {
    fn intention(&mut self, query: &Query) -> f64 {
        std::thread::sleep(self.delay);
        self.agent.lock().intention_for(query, SimTime::ZERO)
    }
}

fn population() -> Population {
    Population::generate(&PopulationConfig::scaled(4, 8, 123)).unwrap()
}

#[test]
fn agents_mediate_over_threads_and_update_their_satisfaction() {
    let population = population();
    let providers: Vec<Arc<Mutex<ProviderAgent>>> = population
        .providers
        .values()
        .map(|p| Arc::new(Mutex::new(p.clone())))
        .collect();

    let mut runtime = MediationRuntime::new(RuntimeConfig {
        timeout: Duration::from_millis(500),
        request_bids: false,
    });
    let consumer_agent = population.consumers[ConsumerId::new(0)].clone();
    runtime.register_consumer(
        consumer_agent.id(),
        AgentConsumer {
            agent: consumer_agent.clone(),
            reputation: ReputationStore::neutral(),
        },
    );
    for provider in &providers {
        let id = provider.lock().id();
        runtime.register_provider(
            id,
            AgentProvider {
                agent: provider.clone(),
            },
        );
    }

    let candidates: Vec<ProviderId> = providers.iter().map(|p| p.lock().id()).collect();
    let mut method = SqlbAllocator::new();
    let mut state = MediatorState::paper_default();

    let mut selected_counts = vec![0u32; candidates.len()];
    for i in 0..30u32 {
        let query = Query::single(
            QueryId::new(i),
            consumer_agent.id(),
            if i.is_multiple_of(2) {
                QueryClass::Light
            } else {
                QueryClass::Heavy
            },
            SimTime::ZERO,
        );
        let allocation = runtime.mediate(&query, &candidates, &mut method, &mut state);
        assert_eq!(allocation.selected.len(), 1);
        selected_counts[allocation.selected[0].index()] += 1;
    }
    assert_eq!(state.allocations(), 30);

    // The winner must be a provider the consumer likes: its preference for
    // the most-selected provider should not be negative while some other
    // candidate has a strictly higher preference and was never selected
    // with positive provider intention... keep the check simple: the most
    // selected provider has a non-negative consumer preference unless every
    // candidate is disliked.
    let (best_idx, _) = selected_counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .unwrap();
    let best_pref = consumer_agent.preference_for(candidates[best_idx]).value();
    let max_pref = candidates
        .iter()
        .map(|&p| consumer_agent.preference_for(p).value())
        .fold(f64::NEG_INFINITY, f64::max);
    if max_pref > 0.0 {
        assert!(
            best_pref > -0.54,
            "the mediation should not concentrate queries on a low-interest provider \
             (best preference {max_pref}, selected provider preference {best_pref})"
        );
    }

    // Wait for the asynchronous allocation notices to land, then check the
    // selected providers saw their satisfaction move away from the initial
    // value.
    std::thread::sleep(Duration::from_millis(100));
    let any_updated = providers.iter().any(|p| p.lock().proposed_queries() > 0);
    assert!(
        any_updated,
        "allocation notices should reach the provider agents"
    );
}

#[test]
fn mariposa_over_the_runtime_uses_real_bids() {
    let population = population();
    let mut runtime = MediationRuntime::new(RuntimeConfig {
        timeout: Duration::from_millis(500),
        request_bids: true,
    });
    let consumer_agent = population.consumers[ConsumerId::new(0)].clone();
    runtime.register_consumer(
        consumer_agent.id(),
        AgentConsumer {
            agent: consumer_agent.clone(),
            reputation: ReputationStore::neutral(),
        },
    );
    for provider in population.providers.values() {
        runtime.register_provider(
            provider.id(),
            AgentProvider {
                agent: Arc::new(Mutex::new(provider.clone())),
            },
        );
    }
    let candidates: Vec<ProviderId> = population.providers.values().map(|p| p.id()).collect();
    let infos = runtime.gather(
        &Query::single(
            QueryId::new(0),
            consumer_agent.id(),
            QueryClass::Light,
            SimTime::ZERO,
        ),
        &candidates,
    );
    assert!(infos.iter().all(|i| i.bid.is_some()), "every provider bids");

    let mut broker = MariposaLike::new();
    let mut state = MediatorState::paper_default();
    let allocation = runtime.mediate(
        &Query::single(
            QueryId::new(1),
            consumer_agent.id(),
            QueryClass::Light,
            SimTime::ZERO,
        ),
        &candidates,
        &mut broker,
        &mut state,
    );
    assert_eq!(allocation.selected.len(), 1);
}

/// Builds a runtime over real agents where provider 0 is fast and provider
/// 1 is slower than the configured timeout.
fn runtime_with_slow_provider(
    timeout: Duration,
    slow_delay: Duration,
) -> (MediationRuntime, ConsumerAgent, Vec<ProviderId>) {
    let population = population();
    let mut runtime = MediationRuntime::new(RuntimeConfig {
        timeout,
        request_bids: false,
    });
    let consumer_agent = population.consumers[ConsumerId::new(0)].clone();
    runtime.register_consumer(
        consumer_agent.id(),
        AgentConsumer {
            agent: consumer_agent.clone(),
            reputation: ReputationStore::neutral(),
        },
    );
    let candidates: Vec<ProviderId> = population.providers.keys().take(2).collect();
    let fast = population.providers[candidates[0]].clone();
    let slow = population.providers[candidates[1]].clone();
    runtime.register_provider(
        candidates[0],
        AgentProvider {
            agent: Arc::new(Mutex::new(fast)),
        },
    );
    runtime.register_provider(
        candidates[1],
        SlowAgentProvider {
            agent: Arc::new(Mutex::new(slow)),
            delay: slow_delay,
        },
    );
    (runtime, consumer_agent, candidates)
}

#[test]
fn slow_provider_falls_back_to_indifference_on_the_single_query_path() {
    // Algorithm 1, line 5: answers missing at the timeout are treated as
    // indifference (intention 0). The fast provider's real intention and
    // the consumer's intentions must still come through.
    let (runtime, consumer_agent, candidates) =
        runtime_with_slow_provider(Duration::from_millis(80), Duration::from_millis(600));
    let query = Query::single(
        QueryId::new(1),
        consumer_agent.id(),
        QueryClass::Light,
        SimTime::ZERO,
    );
    let infos = runtime.gather(&query, &candidates);
    assert_eq!(infos.len(), 2);
    let expected_fast = {
        let population = population();
        population.providers[candidates[0]]
            .clone()
            .intention_for(&query, SimTime::ZERO)
    };
    assert_eq!(
        infos[0].provider_intention, expected_fast,
        "the fast provider's answer arrives in time"
    );
    assert_eq!(
        infos[1].provider_intention, 0.0,
        "the slow provider's answer missed the deadline and defaults to 0"
    );
    // The consumer answered for both candidates regardless.
    let expected_ci =
        consumer_agent.intention_for(&query, candidates[1], &ReputationStore::neutral());
    assert_eq!(infos[1].consumer_intention, expected_ci);
}

#[test]
fn slow_provider_falls_back_to_indifference_on_the_batched_path() {
    // Same fallback on the batched entry point: one round-trip per
    // participant serves the whole batch, and the slow provider's missing
    // batch reply zeroes its intention for every query of the batch.
    let (runtime, consumer_agent, candidates) =
        runtime_with_slow_provider(Duration::from_millis(80), Duration::from_millis(600));
    let batch: Vec<(Query, Vec<ProviderId>)> = (0..4)
        .map(|i| {
            (
                Query::single(
                    QueryId::new(i),
                    consumer_agent.id(),
                    if i.is_multiple_of(2) {
                        QueryClass::Light
                    } else {
                        QueryClass::Heavy
                    },
                    SimTime::ZERO,
                ),
                candidates.clone(),
            )
        })
        .collect();
    let infos = runtime.gather_batch(&batch);
    assert_eq!(infos.len(), 4);
    for (i, per_query) in infos.iter().enumerate() {
        assert!(
            per_query[0].provider_intention != 0.0,
            "query {i}: the fast provider should answer with a real intention"
        );
        assert_eq!(
            per_query[1].provider_intention, 0.0,
            "query {i}: the slow provider must default to indifference"
        );
        assert!(
            per_query[1].consumer_intention != 0.0,
            "query {i}: the consumer's view of the slow provider still arrives"
        );
    }

    // The whole mediation still goes through and allocates every query.
    let mut method = SqlbAllocator::new();
    let mut state = MediatorState::paper_default();
    let allocations = runtime.mediate_batch(&batch, &mut method, &mut state);
    assert_eq!(allocations.len(), 4);
    for allocation in &allocations {
        assert_eq!(allocation.selected.len(), 1);
    }
    assert_eq!(state.allocations(), 4);
}
