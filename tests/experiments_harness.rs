//! Integration tests of the experiment harness: every figure/table driver
//! must run at the quick scale and produce structurally complete output.

use sqlb::sim::experiments::{
    fig2_provider_intention_surface, fig3_omega_surface, fig4_captive_ramp, table2_parameters,
    table3_departure_breakdown, workload_sweep, AutonomySetting, ExperimentScale, Fig4Panel,
};
use sqlb::sim::SimulationConfig;

#[test]
fn fig2_and_fig3_surfaces_are_complete_grids() {
    let fig2 = fig2_provider_intention_surface(0.5, 21);
    assert_eq!(fig2.len(), 441);
    assert!(fig2.iter().all(|p| p.intention.is_finite()));
    assert!(fig2.iter().any(|p| p.intention > 0.9));
    assert!(fig2.iter().any(|p| p.intention < -1.5));

    let fig3 = fig3_omega_surface(21);
    assert_eq!(fig3.len(), 441);
    assert!(fig3.iter().all(|p| (0.0..=1.0).contains(&p.omega)));
}

#[test]
fn fig4_driver_emits_every_panel_for_every_method() {
    let result = fig4_captive_ramp(ExperimentScale::quick()).unwrap();
    assert_eq!(result.panels.len(), Fig4Panel::ALL.len());
    for panel in Fig4Panel::ALL {
        let table = result.panel_to_text(panel);
        let header = table.lines().nth(1).unwrap_or_default();
        for method in ["SQLB", "Capacity based", "Mariposa-like"] {
            assert!(
                header.contains(method),
                "panel {} misses {method}: {header}",
                panel.letter()
            );
        }
        // At least a handful of sample rows exist.
        assert!(
            table.lines().count() > 5,
            "panel {} too short",
            panel.letter()
        );
    }
}

#[test]
fn workload_sweeps_cover_requested_workloads_in_order() {
    let workloads = [0.3, 0.6, 0.9];
    let result = workload_sweep(
        ExperimentScale::quick(),
        &workloads,
        AutonomySetting::Captive,
    )
    .unwrap();
    let observed: Vec<f64> = result.rows.iter().map(|r| r.workload).collect();
    assert_eq!(observed, workloads.to_vec());
    // Response times grow (weakly) with workload for every method.
    for idx in 0..3 {
        let rts: Vec<f64> = result
            .rows
            .iter()
            .map(|r| r.response_times[idx].1)
            .collect();
        assert!(
            rts[0] <= rts[2] + 0.5,
            "response times should not collapse as workload triples: {rts:?}"
        );
    }
}

#[test]
fn table3_percentages_are_consistent_with_totals() {
    let result = table3_departure_breakdown(ExperimentScale::quick(), 0.8).unwrap();
    // For a given method and reason, every dimension slices the same set of
    // departures, so the three dimension totals must agree.
    for method in ["SQLB", "Capacity based", "Mariposa-like"] {
        for reason in ["dissatisfaction", "starvation", "overutilization"] {
            let totals: Vec<f64> = result
                .rows
                .iter()
                .filter(|r| r.method == method && r.reason.to_string() == reason)
                .map(|r| r.total())
                .collect();
            assert_eq!(totals.len(), 3, "{method}/{reason}");
            assert!(
                (totals[0] - totals[1]).abs() < 1e-9 && (totals[1] - totals[2]).abs() < 1e-9,
                "{method}/{reason}: dimension totals disagree: {totals:?}"
            );
        }
    }
}

#[test]
fn table2_text_reflects_the_configuration_it_is_given() {
    let scaled = table2_parameters(&SimulationConfig::scaled(40, 80, 100.0, 0));
    assert!(scaled.contains("40"));
    assert!(scaled.contains("80"));
    let paper = table2_parameters(&SimulationConfig::paper(0));
    assert!(paper.contains("200"));
    assert!(paper.contains("400"));
    assert!(paper.contains("500"));
}
