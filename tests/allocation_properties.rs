//! Property-based integration tests: invariants every allocation method
//! must uphold, whatever the candidate set looks like.

use proptest::prelude::*;
use sqlb::prelude::*;
use std::collections::HashSet;

fn arbitrary_candidates() -> impl Strategy<Value = Vec<CandidateInfo>> {
    proptest::collection::vec(
        (
            -1.0f64..=1.0,  // consumer intention
            -1.0f64..=1.0,  // provider intention
            0.0f64..=2.5,   // utilization
            1.0f64..=500.0, // bid price
            0.0f64..=30.0,  // bid delay
        ),
        1..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (ci, pi, ut, price, delay))| {
                CandidateInfo::new(ProviderId::new(i as u32))
                    .with_consumer_intention(ci)
                    .with_provider_intention(pi)
                    .with_utilization(ut)
                    .with_bid(Bid::new(price, delay))
            })
            .collect()
    })
}

fn methods() -> Vec<Box<dyn AllocationMethod>> {
    vec![
        Box::new(SqlbAllocator::new()),
        Box::new(CapacityBased::new()),
        Box::new(MariposaLike::new()),
        Box::new(RandomAllocator::new(7)),
        Box::new(RoundRobinAllocator::new()),
    ]
}

fn check_allocation(
    method: &mut dyn AllocationMethod,
    candidates: &[CandidateInfo],
    n: u32,
) -> Result<(), TestCaseError> {
    let mut query = Query::single(
        QueryId::new(1),
        ConsumerId::new(0),
        QueryClass::Light,
        SimTime::ZERO,
    );
    query.n = n;
    let view = UniformView(0.5);
    let allocation = method.allocate(&query, candidates, &view);

    // Exactly min(q.n, N) providers are selected…
    prop_assert_eq!(
        allocation.selected.len(),
        (n as usize).min(candidates.len()),
        "method {} selected the wrong number of providers",
        method.name()
    );
    // …each of them is a candidate…
    let candidate_ids: HashSet<ProviderId> = candidates.iter().map(|c| c.provider).collect();
    for p in &allocation.selected {
        prop_assert!(candidate_ids.contains(p));
    }
    // …with no duplicates…
    let unique: HashSet<ProviderId> = allocation.selected.iter().copied().collect();
    prop_assert_eq!(unique.len(), allocation.selected.len());
    // …and the ranking is a permutation of the candidate set.
    prop_assert_eq!(allocation.ranking.len(), candidates.len());
    let ranked: HashSet<ProviderId> = allocation.ranking.iter().map(|r| r.provider).collect();
    prop_assert_eq!(ranked, candidate_ids);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_method_selects_min_qn_n_distinct_candidates(
        candidates in arbitrary_candidates(),
        n in 1u32..6,
    ) {
        for mut method in methods() {
            check_allocation(method.as_mut(), &candidates, n)?;
        }
    }

    #[test]
    fn sqlb_never_prefers_a_dominated_candidate(
        base in arbitrary_candidates(),
    ) {
        // Add a candidate that dominates every other (maximal intentions on
        // both sides, idle): SQLB must rank it first.
        let mut candidates = base;
        let best_id = candidates.len() as u32;
        candidates.push(
            CandidateInfo::new(ProviderId::new(best_id))
                .with_consumer_intention(1.0)
                .with_provider_intention(1.0)
                .with_utilization(0.0),
        );
        let mut sqlb = SqlbAllocator::new();
        let query = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        let allocation = sqlb.allocate(&query, &candidates, &UniformView(0.5));
        prop_assert_eq!(allocation.selected[0], ProviderId::new(best_id));
    }

    #[test]
    fn mediator_state_satisfactions_stay_in_unit_interval(
        rounds in proptest::collection::vec(
            (proptest::collection::vec((-1.0f64..=1.0, -1.0f64..=1.0), 1..10), 0usize..10),
            1..30,
        ),
    ) {
        let mut state = MediatorState::paper_default();
        for (i, (intentions, winner)) in rounds.iter().enumerate() {
            let query = Query::single(
                QueryId::new(i as u32),
                ConsumerId::new((i % 3) as u32),
                QueryClass::Light,
                SimTime::ZERO,
            );
            let candidates: Vec<CandidateInfo> = intentions
                .iter()
                .enumerate()
                .map(|(j, &(ci, pi))| {
                    CandidateInfo::new(ProviderId::new(j as u32))
                        .with_consumer_intention(ci)
                        .with_provider_intention(pi)
                })
                .collect();
            let winner = winner % candidates.len();
            let allocation = Allocation {
                query: query.id,
                selected: vec![candidates[winner].provider],
                ranking: vec![],
            };
            state.record_allocation(&query, &candidates, &allocation);
        }
        for p in 0..10u32 {
            let s = state.provider_satisfaction(ProviderId::new(p));
            prop_assert!((0.0..=1.0).contains(&s));
        }
        for c in 0..3u32 {
            let s = state.consumer_satisfaction(ConsumerId::new(c));
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(state.consumer_allocation_satisfaction(ConsumerId::new(c)) >= 0.0);
        }
    }
}
