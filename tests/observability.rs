//! Observability is observation-only: turning it on never changes what
//! the engine computes.
//!
//! Two contracts are pinned here:
//!
//! 1. **Digest bit-identity.** Same-seed runs produce bit-identical
//!    report digests with instrumentation enabled and disabled, on every
//!    mediation backend (inline, threaded, reactor, socket). The obs
//!    layer hangs off the engine's existing accounting — it never rolls
//!    the RNG, never touches satisfaction state, and its counters are
//!    resolved once up front — so the digest cannot move.
//! 2. **Snapshot consistency.** When instrumentation is on, the engine's
//!    obs counters agree exactly with the report it returns (issued /
//!    completed / unallocated queries, indifferent replies, degraded
//!    waves), and the response-time histogram saw one sample per
//!    completed query. When it is off (the default), the handle is
//!    disabled and snapshots are empty.

use sqlb::obs::Obs;
use sqlb::sim::engine::{run_simulation, Simulator};
use sqlb::sim::{MediationMode, Method, SimulationConfig};

const BACKENDS: [MediationMode; 4] = [
    MediationMode::Inline,
    MediationMode::Threaded,
    MediationMode::Reactor,
    MediationMode::Socket,
];

fn config(seed: u64) -> SimulationConfig {
    SimulationConfig::scaled(16, 32, 150.0, seed)
}

#[test]
fn instrumentation_never_changes_the_digest_on_any_backend() {
    for seed in [7, 41] {
        for mode in BACKENDS {
            let off = run_simulation(config(seed).with_mediation(mode), Method::Sqlb).unwrap();
            let on = run_simulation(
                config(seed).with_mediation(mode).with_observability(true),
                Method::Sqlb,
            )
            .unwrap();
            assert!(
                off.issued_queries > 0 && off.completed_queries > 0,
                "seed {seed} on {mode:?} must issue and complete work"
            );
            assert_eq!(
                off.digest(),
                on.digest(),
                "obs on/off digests diverged: seed {seed}, backend {mode:?}"
            );
        }
    }
}

#[test]
fn engine_counters_agree_with_the_report() {
    for mode in BACKENDS {
        let sim = Simulator::new(
            config(23).with_mediation(mode).with_observability(true),
            Method::Sqlb,
        )
        .unwrap();
        // Clones share storage, so a handle taken before `run` consumes
        // the simulator still sees everything the run recorded.
        let obs = sim.obs().clone();
        assert!(obs.is_enabled());
        let report = sim.run();

        let snapshot = obs.snapshot();
        let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
        assert_eq!(counter("queries_issued"), report.issued_queries, "{mode:?}");
        assert_eq!(
            counter("queries_completed"),
            report.completed_queries,
            "{mode:?}"
        );
        assert_eq!(
            counter("queries_unallocated"),
            report.unallocated_queries,
            "{mode:?}"
        );
        assert_eq!(
            counter("indifferent_replies"),
            report.indifferent_replies,
            "{mode:?}"
        );
        assert_eq!(counter("degraded_waves"), report.degraded_waves, "{mode:?}");

        let response = snapshot
            .histogram("response_time_seconds")
            .expect("the engine registers a response-time histogram");
        assert_eq!(response.count, report.completed_queries, "{mode:?}");

        // The snapshot renders in both formats without panicking, and
        // the rendered text carries the engine counters.
        let text = snapshot.to_prometheus_text();
        assert!(text.contains("sqlb_queries_issued"));
        let json = snapshot.to_json();
        assert!(json.contains("\"queries_issued\""));
    }
}

#[test]
fn observability_is_off_by_default_and_snapshots_are_empty() {
    let sim = Simulator::new(config(5), Method::Sqlb).unwrap();
    let obs = sim.obs().clone();
    assert!(!obs.is_enabled());
    let report = sim.run();
    assert!(report.completed_queries > 0);

    let snapshot = obs.snapshot();
    assert!(snapshot.counters.is_empty());
    assert!(snapshot.gauges.is_empty());
    assert!(snapshot.histograms.is_empty());
    assert_eq!(snapshot.to_prometheus_text(), "");

    // A disabled handle also records no flight-recorder events.
    assert_eq!(
        Obs::disabled().dump_events_json(),
        "{\"dropped\": 0, \"events\": []}"
    );
}
