//! Integration tests for cross-shard load migration and consumer-routing
//! policies: determinism, history preservation, and the acceptance bar
//! that rebalancing strictly shrinks shard imbalance under a skewed
//! workload.
//!
//! The skew: 14 consumers over K=4 shards route `consumer % 4` under the
//! static policy, so shards 0 and 1 mediate for four consumers each while
//! shards 2 and 3 get three — a third more demand on the low shards, with
//! providers split evenly round-robin.

use sqlb::sim::engine::run_simulation;
use sqlb::sim::experiments::{migration_skew, ExperimentScale};
use sqlb::sim::{Method, RoutingPolicyKind, SimulationConfig, WorkloadPattern};

/// 14 consumers on 4 shards: deliberately not a multiple, so static
/// routing is skewed.
fn skewed_config(seed: u64) -> SimulationConfig {
    SimulationConfig::scaled(14, 24, 600.0, seed)
        .with_workload(WorkloadPattern::Fixed(0.7))
        .with_mediator_shards(4)
}

#[test]
fn k4_migration_smoke() {
    // The CI smoke test: a K=4 run with migration and least-loaded routing
    // completes, keeps its query accounting, actually rebalances, and
    // records the per-shard series that make the rebalancing observable.
    let report = run_simulation(
        skewed_config(11)
            .with_routing(RoutingPolicyKind::LeastLoaded)
            .with_migration(true),
        Method::Sqlb,
    )
    .unwrap();
    assert_eq!(report.mediator_shards, 4);
    assert_eq!(report.routing_policy, "least-loaded");
    assert!(report.issued_queries > 500);
    assert_eq!(report.unallocated_queries, 0);
    assert!(report.completion_rate() > 0.5);
    assert_eq!(
        report.shard_allocations.iter().sum::<u64>(),
        report.issued_queries
    );
    assert!(report.rebalance_rounds > 0, "rebalancing must have run");
    assert!(!report.migrations.is_empty(), "the skew must trigger moves");
    assert_eq!(report.series.shard_utilization.len(), 4);
    assert_eq!(report.series.shard_satisfaction.len(), 4);
    assert_eq!(report.series.shard_allocation_counts.len(), 4);
    assert!(!report.series.shard_utilization_spread.is_empty());
    for migration in &report.migrations {
        assert!(migration.from_shard < 4 && migration.to_shard < 4);
        assert_ne!(migration.from_shard, migration.to_shard);
        assert!(migration.spread_before > 0.0);
    }
}

#[test]
fn migration_log_and_report_are_deterministic_per_seed() {
    let config = skewed_config(23)
        .with_routing(RoutingPolicyKind::LeastLoaded)
        .with_migration(true);
    let a = run_simulation(config, Method::Sqlb).unwrap();
    let b = run_simulation(config, Method::Sqlb).unwrap();
    assert_eq!(a.migrations, b.migrations, "identical migration logs");
    assert!(
        !a.migrations.is_empty(),
        "the comparison must not be vacuous"
    );
    assert_eq!(a.issued_queries, b.issued_queries);
    assert_eq!(a.shard_allocations, b.shard_allocations);
    assert_eq!(a.rebalance_rounds, b.rebalance_rounds);
    // Bit-exact series equality, the strongest determinism statement the
    // report offers.
    assert_eq!(
        a.series.consumer_satisfaction_mean.values(),
        b.series.consumer_satisfaction_mean.values()
    );
    assert_eq!(
        a.series.shard_utilization_spread.values(),
        b.series.shard_utilization_spread.values()
    );
    for shard in 0..4 {
        assert_eq!(
            a.series.shard_utilization[shard].values(),
            b.series.shard_utilization[shard].values()
        );
        assert_eq!(
            a.series.shard_allocation_counts[shard].values(),
            b.series.shard_allocation_counts[shard].values()
        );
    }
    // A different seed produces a different run (the comparison above is
    // not vacuous either).
    let c = run_simulation(
        skewed_config(24)
            .with_routing(RoutingPolicyKind::LeastLoaded)
            .with_migration(true),
        Method::Sqlb,
    )
    .unwrap();
    assert_ne!(a.issued_queries, c.issued_queries);
}

#[test]
fn provider_migration_shrinks_utilization_spread_under_static_routing() {
    // Satellite acceptance: with routing held fixed (static, skewed), the
    // per-shard utilization spread with migration on is strictly below the
    // spread with migration off — capacity followed demand.
    let baseline = run_simulation(skewed_config(31), Method::Sqlb).unwrap();
    let migrated = run_simulation(skewed_config(31).with_migration(true), Method::Sqlb).unwrap();
    assert!(baseline.migrations.is_empty());
    assert!(
        !migrated.migrations.is_empty(),
        "the skew must actually trigger migrations"
    );
    let tail = 200.0;
    let spread_off = baseline.mean_shard_utilization_spread_after(tail);
    let spread_on = migrated.mean_shard_utilization_spread_after(tail);
    assert!(
        spread_on < spread_off,
        "migration must shrink the utilization spread: on={spread_on} off={spread_off}"
    );
    // Static routing is untouched by migration: the same shards mediate
    // the same queries.
    assert_eq!(baseline.shard_allocations, migrated.shard_allocations);
}

#[test]
fn migration_lowers_allocation_imbalance_under_a_skewed_workload() {
    // PR acceptance: at K=4 under a skewed workload, the max/min per-shard
    // allocation ratio with migration enabled is strictly lower than with
    // migration disabled — both against the same least-loaded routing
    // (isolating migration's contribution) and against the untreated
    // static baseline.
    let result = migration_skew(ExperimentScale::quick(), 4, 0.7).unwrap();
    assert!(
        result.adaptive.allocation_imbalance < result.routed.allocation_imbalance,
        "migration on ({}) must beat migration off ({}) under least-loaded routing",
        result.adaptive.allocation_imbalance,
        result.routed.allocation_imbalance
    );
    assert!(
        result.adaptive.allocation_imbalance < result.baseline.allocation_imbalance,
        "adaptive ({}) must beat the static baseline ({})",
        result.adaptive.allocation_imbalance,
        result.baseline.allocation_imbalance
    );
    assert!(
        result.adaptive.migrations > 0,
        "the improvement must come from actual migrations"
    );
    // And the static-routing pair shows migration shrinking the
    // utilization spread without touching mediation counts.
    assert!(
        result.migrated.utilization_spread < result.baseline.utilization_spread,
        "migrated spread {} must beat baseline {}",
        result.migrated.utilization_spread,
        result.baseline.utilization_spread
    );
    assert_eq!(
        result.migrated.shard_allocations,
        result.baseline.shard_allocations
    );
}

#[test]
fn satisfaction_aware_donor_choice_keeps_the_skew_experiment_converging() {
    // Regression pin for the satisfaction-aware donor rule: folding the
    // donor shard's satisfaction reading into the load-adaptive donor
    // score must not cost the committed skew experiment its convergence,
    // and the reading that drove each pick must be recorded in the
    // migration log (in the satisfaction domain, so the preference for
    // under-served donors is observable after the fact).
    let report = run_simulation(
        skewed_config(31)
            .with_routing(RoutingPolicyKind::LeastLoaded)
            .with_migration(true),
        Method::Sqlb,
    )
    .unwrap();
    assert!(
        !report.migrations.is_empty(),
        "the skew must trigger load-adaptive migrations"
    );
    for migration in &report.migrations {
        assert!(
            (0.0..=1.0).contains(&migration.donor_satisfaction),
            "donor satisfaction {} of provider {} is outside the satisfaction domain",
            migration.donor_satisfaction,
            migration.provider
        );
    }
    // The committed skew experiment itself: migration (now satisfaction
    // aware) still strictly beats both no-migration baselines.
    let result = migration_skew(ExperimentScale::quick(), 4, 0.7).unwrap();
    assert!(result.adaptive.allocation_imbalance < result.routed.allocation_imbalance);
    assert!(result.adaptive.allocation_imbalance < result.baseline.allocation_imbalance);
    assert!(result.adaptive.migrations > 0);
}

#[test]
fn k1_ignores_migration_and_routing_knobs() {
    // The bit-identity contract: at K=1 neither knob can change anything.
    let plain = run_simulation(
        SimulationConfig::scaled(16, 32, 300.0, 9).with_workload(WorkloadPattern::Fixed(0.5)),
        Method::Sqlb,
    )
    .unwrap();
    let tuned = run_simulation(
        SimulationConfig::scaled(16, 32, 300.0, 9)
            .with_workload(WorkloadPattern::Fixed(0.5))
            .with_routing(RoutingPolicyKind::LeastLoaded)
            .with_migration(true)
            .with_rebalance_interval(7.0),
        Method::Sqlb,
    )
    .unwrap();
    assert_eq!(plain.issued_queries, tuned.issued_queries);
    assert_eq!(plain.rebalance_rounds, 0);
    assert_eq!(tuned.rebalance_rounds, 0, "K=1 never schedules Rebalance");
    assert!(tuned.migrations.is_empty());
    assert_eq!(
        plain.series.utilization_mean.values(),
        tuned.series.utilization_mean.values()
    );
    assert_eq!(
        plain.series.consumer_satisfaction_mean.values(),
        tuned.series.consumer_satisfaction_mean.values()
    );
    assert_eq!(plain.response_times.mean(), tuned.response_times.mean());
}
